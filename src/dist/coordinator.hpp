#pragma once
/// \file coordinator.hpp
/// \brief `dist::Coordinator` — shard a sweep grid across N `stamp_serve`
///        workers over the `stamp-serve/v1` sweep_chunk op, journaling every
///        completed shard into the PR 5 write-ahead journal.
///
/// The coordinator is the cluster-of-CMPs tier made executable: the model
/// grew `L_net`/`g_net`/`w_net` for inter-node communication, this file
/// grows the matching infrastructure. Its one hard contract is
/// *byte-identity*: the journal it fills, replayed through the normal
/// resume machinery, must produce an artifact `cmp`-identical to a
/// single-node `stamp_sweep` run — at any worker count, after any worker
/// death, and across a coordinator kill + resume. It gets this by
/// construction, not by care: workers' wire points are validated against
/// the coordinator's own grid and re-anchored to its exact doubles
/// (`dist::decode_sweep_chunk`), journaled through `sweep::Journal`'s
/// canonical record encoding, and merged by `Evaluator::sweep` replaying
/// the journal like any resumed run.
///
/// Failure model (the reconnect/resend discipline of `stamp_call`, applied
/// per shard): a worker that times out, EOFs, or errors gets its connection
/// torn down and the request resent after reconnecting; a worker whose
/// reconnect budget runs out is declared dead and its in-flight shard goes
/// back to the queue for the survivors. The run only fails when every
/// worker is dead with shards still outstanding (or a worker returns a
/// non-retryable status: a 400/500 is deterministic and would fail on any
/// worker).

#include "core/cancel.hpp"
#include "sweep/journal.hpp"
#include "sweep/sweep.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace stamp::dist {

/// One contiguous index range of not-yet-completed grid points.
struct ShardPlan {
  std::size_t index = 0;    ///< shard number, 0-based in plan order
  std::uint64_t begin = 0;  ///< first grid index (inclusive)
  std::uint64_t end = 0;    ///< one past the last grid index

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;
};

/// Split the grid's missing points (those without a journaled record in
/// `resume`; all of them when `resume` is null) into contiguous shards of at
/// most `points_per_shard` points. Completed points never reappear in a
/// shard, so a resumed coordinator only dispatches genuinely missing work.
[[nodiscard]] std::vector<ShardPlan> plan_shards(
    const sweep::SweepConfig& cfg, const sweep::ResumeState* resume,
    std::size_t points_per_shard);

struct FleetOptions {
  /// Loopback ports of the stamp_serve workers, one connection per entry.
  std::vector<std::uint16_t> ports;
  /// Shard granularity; clamped to the server's chunk cap (4096).
  std::size_t points_per_shard = 64;
  /// How long to wait for a shard's response before tearing the connection
  /// down and resending.
  int response_timeout_ms = 120000;
  /// Reconnect attempts (spaced `reconnect_delay_ms` apart) before a worker
  /// is declared dead.
  int reconnect_attempts = 40;
  int reconnect_delay_ms = 50;
  /// Cooperative cancellation (the tools' shutdown token).
  const core::CancelToken* cancel = nullptr;
  /// Test/chaos hook, called just before a shard's request is sent:
  /// (shard index, worker slot). The fleet chaos scenario uses it to kill
  /// the targeted worker deterministically by shard index.
  std::function<void(std::size_t shard, std::size_t worker)> on_dispatch;
};

struct FleetStats {
  std::size_t shards = 0;           ///< shards planned for this run
  std::size_t dispatched = 0;       ///< send attempts (>= shards)
  std::size_t completed = 0;        ///< shards journaled
  std::size_t reassigned = 0;       ///< shards returned by a dying worker
  std::size_t worker_failures = 0;  ///< workers declared dead
  std::size_t reconnects = 0;       ///< connection teardown+retry cycles
  std::size_t records = 0;          ///< grid points journaled by this run
  bool cancelled = false;           ///< stopped by the cancel token
};

class Coordinator {
 public:
  Coordinator(sweep::SweepConfig cfg, FleetOptions opts);

  /// Fan the missing points out to the workers, appending every validated
  /// record to `journal`. Throws std::runtime_error when the whole fleet
  /// dies with shards outstanding, or WireError on a protocol violation /
  /// non-retryable worker status. On cancellation, returns early with
  /// `cancelled` set and the journal intact (resume finishes the rest).
  FleetStats run(sweep::Journal& journal, const sweep::ResumeState* resume);

  [[nodiscard]] const sweep::SweepConfig& config() const noexcept {
    return cfg_;
  }

 private:
  struct Shared;

  sweep::SweepConfig cfg_;
  FleetOptions opts_;
};

}  // namespace stamp::dist
