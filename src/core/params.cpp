#include "core/params.hpp"

#include <ostream>
#include <sstream>

namespace stamp {
namespace {

void require(bool cond, const char* what) {
  if (!cond) throw ParamError(what);
}

}  // namespace

void MachineParams::validate() const {
  require(ell_a >= 0 && ell_e >= 0, "shared-memory latencies must be >= 0");
  require(L_a >= 0 && L_e >= 0, "message delays must be >= 0");
  require(g_sh_a >= 0 && g_sh_e >= 0 && g_mp_a >= 0 && g_mp_e >= 0,
          "bandwidth factors must be >= 0");
  require(ell_a <= ell_e,
          "intra-processor shm latency must not exceed inter-processor");
  require(L_a <= L_e,
          "intra-processor message delay must not exceed inter-processor");
  require(g_sh_a <= g_sh_e,
          "intra-processor shm bandwidth factor must not exceed inter-processor");
  require(g_mp_a <= g_mp_e,
          "intra-processor mp bandwidth factor must not exceed inter-processor");
  require(L_net >= 0 && g_net >= 0, "network parameters must be >= 0");
  require(L_e <= L_net,
          "inter-processor message delay must not exceed inter-node");
  require(g_mp_e <= g_net,
          "inter-processor mp bandwidth factor must not exceed inter-node");
}

void EnergyParams::validate() const {
  require(w_fp > 0 && w_int > 0 && w_d_r > 0 && w_d_w > 0 && w_m_s > 0 &&
              w_m_r > 0,
          "per-operation energies must be > 0");
  require(w_net >= 0, "inter-node message energy premium must be >= 0");
}

void Topology::validate() const {
  require(nodes >= 1, "topology needs at least one node");
  require(chips >= 1, "topology needs at least one chip");
  require(processors_per_chip >= 1, "topology needs at least one processor per chip");
  require(threads_per_processor >= 1,
          "topology needs at least one thread per processor");
}

void PowerEnvelope::validate() const {
  require(per_processor >= 0 && per_chip >= 0 && system >= 0,
          "power caps must be >= 0 (0 = unconstrained)");
  if (per_processor > 0 && per_chip > 0)
    require(per_processor <= per_chip, "per-processor cap must fit the chip cap");
  if (per_chip > 0 && system > 0)
    require(per_chip <= system, "per-chip cap must fit the system cap");
}

void MachineModel::validate() const {
  topology.validate();
  params.validate();
  energy.validate();
  envelope.validate();
}

std::ostream& operator<<(std::ostream& os, const Topology& t) {
  if (t.nodes != 1) os << t.nodes << " node(s) x ";
  return os << t.chips << " chip(s) x " << t.processors_per_chip
            << " processor(s) x " << t.threads_per_processor << " thread(s) = "
            << t.total_threads() << " hardware threads";
}

std::ostream& operator<<(std::ostream& os, const MachineParams& p) {
  return os << "shm{ell_a=" << p.ell_a << " ell_e=" << p.ell_e
            << " g_a=" << p.g_sh_a << " g_e=" << p.g_sh_e << "} mp{L_a=" << p.L_a
            << " L_e=" << p.L_e << " g_a=" << p.g_mp_a << " g_e=" << p.g_mp_e
            << "} net{L=" << p.L_net << " g=" << p.g_net << '}';
}

std::ostream& operator<<(std::ostream& os, const EnergyParams& e) {
  return os << "w{fp=" << e.w_fp << " int=" << e.w_int << " d_r=" << e.w_d_r
            << " d_w=" << e.w_d_w << " m_s=" << e.w_m_s << " m_r=" << e.w_m_r
            << " net=" << e.w_net << '}';
}

std::ostream& operator<<(std::ostream& os, const PowerEnvelope& e) {
  return os << "cap{proc=" << e.per_processor << " chip=" << e.per_chip
            << " system=" << e.system << '}';
}

std::ostream& operator<<(std::ostream& os, const MachineModel& m) {
  return os << m.name << ": " << m.topology << "; " << m.params << "; "
            << m.energy << "; " << m.envelope;
}

namespace presets {

MachineModel niagara() {
  MachineModel m;
  m.name = "niagara";
  m.topology = {.chips = 1, .processors_per_chip = 8, .threads_per_processor = 4};
  // Simple in-order cores sharing an L1 among 4 threads; L2 shared over the
  // crossbar. Intra = L1-speed, inter = L2/crossbar-speed.
  m.params = {.ell_a = 2,
              .ell_e = 12,
              .g_sh_a = 0.25,
              .g_sh_e = 2,
              .L_a = 4,
              .L_e = 24,
              .g_mp_a = 0.5,
              .g_mp_e = 4};
  m.energy = {.w_fp = 4, .w_int = 1, .w_d_r = 2, .w_d_w = 2.5, .w_m_s = 6, .w_m_r = 5};
  // Throughput part: each of the 8 cores has a modest cap; chip cap below
  // 8x the core cap so not every core can run hot simultaneously.
  m.envelope = {.per_processor = 18, .per_chip = 120, .system = 120};
  m.validate();
  return m;
}

MachineModel desktop() {
  MachineModel m;
  m.name = "desktop";
  m.topology = {.chips = 1, .processors_per_chip = 4, .threads_per_processor = 2};
  m.params = {.ell_a = 3,
              .ell_e = 30,
              .g_sh_a = 0.5,
              .g_sh_e = 5,
              .L_a = 6,
              .L_e = 60,
              .g_mp_a = 1,
              .g_mp_e = 10};
  m.energy = {.w_fp = 6, .w_int = 1, .w_d_r = 3, .w_d_w = 3.5, .w_m_s = 10, .w_m_r = 8};
  m.envelope = {.per_processor = 60, .per_chip = 200, .system = 200};
  m.validate();
  return m;
}

MachineModel embedded() {
  MachineModel m;
  m.name = "embedded";
  m.topology = {.chips = 1, .processors_per_chip = 2, .threads_per_processor = 1};
  m.params = {.ell_a = 2,
              .ell_e = 16,
              .g_sh_a = 0.5,
              .g_sh_e = 4,
              .L_a = 5,
              .L_e = 40,
              .g_mp_a = 1,
              .g_mp_e = 8};
  // Communication energy dominates on energy-limited parts.
  m.energy = {.w_fp = 5, .w_int = 1, .w_d_r = 4, .w_d_w = 5, .w_m_s = 16, .w_m_r = 12};
  m.envelope = {.per_processor = 6, .per_chip = 10, .system = 10};
  m.validate();
  return m;
}

MachineModel server() {
  MachineModel m;
  m.name = "server";
  m.topology = {.chips = 4, .processors_per_chip = 8, .threads_per_processor = 4};
  m.params = {.ell_a = 2,
              .ell_e = 40,
              .g_sh_a = 0.25,
              .g_sh_e = 6,
              .L_a = 4,
              .L_e = 120,
              .g_mp_a = 0.5,
              .g_mp_e = 12};
  m.energy = {.w_fp = 4, .w_int = 1, .w_d_r = 2, .w_d_w = 2.5, .w_m_s = 8, .w_m_r = 7};
  m.envelope = {.per_processor = 25, .per_chip = 160, .system = 640};
  m.validate();
  return m;
}

}  // namespace presets
}  // namespace stamp
