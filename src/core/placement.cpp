#include "core/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace stamp {

Cost process_cost_in_group(const ProcessProfile& prof, int group_size,
                           int total, const MachineModel& machine) noexcept {
  const int peers = total - 1;
  const double intra_fraction =
      peers > 0 ? static_cast<double>(group_size - 1) / peers : 0.0;
  const CostCounters per_unit = prof.split(intra_fraction);
  ProcessCounts pc;
  pc.intra = group_size - 1;
  pc.inter = total - group_size;
  return s_round_cost(per_unit, machine.params, machine.energy, pc)
      .scaled(prof.units);
}

namespace {

/// Shorthand for the public kernel (kept: the call sites below predate it).
Cost cost_in_group(const ProcessProfile& prof, int group_size, int total,
                   const MachineModel& machine) {
  return process_cost_in_group(prof, group_size, total, machine);
}

PlacementResult finish(std::span<const ProcessProfile> profiles,
                       Placement placement, const MachineModel& machine,
                       Objective objective, std::string strategy,
                       long long examined) {
  PlacementResult r;
  r.eval = evaluate_placement(profiles, placement, machine, objective);
  r.strategy = std::move(strategy);
  r.placements_examined = examined;
  return r;
}

bool uniform(std::span<const ProcessProfile> profiles) {
  if (profiles.empty()) return true;
  const ProcessProfile& p0 = profiles.front();
  return std::all_of(profiles.begin(), profiles.end(),
                     [&](const ProcessProfile& p) {
                       return p.c_fp == p0.c_fp && p.c_int == p0.c_int &&
                              p.d_r == p0.d_r && p.d_w == p0.d_w &&
                              p.m_s == p0.m_s && p.m_r == p0.m_r &&
                              p.kappa == p0.kappa && p.units == p0.units;
                     });
}

}  // namespace

CostCounters ProcessProfile::split(double intra_fraction) const noexcept {
  const double f = std::clamp(intra_fraction, 0.0, 1.0);
  CostCounters c;
  c.c_fp = c_fp;
  c.c_int = c_int;
  c.d_r_a = d_r * f;
  c.d_r_e = d_r * (1 - f);
  c.d_w_a = d_w * f;
  c.d_w_e = d_w * (1 - f);
  c.m_s_a = m_s * f;
  c.m_s_e = m_s * (1 - f);
  c.m_r_a = m_r * f;
  c.m_r_e = m_r * (1 - f);
  c.kappa = kappa;
  return c;
}

int Placement::group_size(int processor) const noexcept {
  return static_cast<int>(
      std::count(processor_of.begin(), processor_of.end(), processor));
}

int Placement::processors_used() const noexcept {
  std::vector<int> sorted = processor_of;
  std::sort(sorted.begin(), sorted.end());
  return static_cast<int>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

PlacementEvaluation evaluate_placement(std::span<const ProcessProfile> profiles,
                                       const Placement& placement,
                                       const MachineModel& machine,
                                       Objective objective) {
  if (profiles.size() != placement.processor_of.size())
    throw std::invalid_argument("evaluate_placement: size mismatch");

  const int total = static_cast<int>(profiles.size());
  const int procs = machine.topology.total_processors();

  std::vector<int> group_sizes(static_cast<std::size_t>(procs), 0);
  for (int p : placement.processor_of) {
    if (p < 0 || p >= procs)
      throw std::invalid_argument("evaluate_placement: processor out of range");
    ++group_sizes[static_cast<std::size_t>(p)];
  }
  if (machine.topology.threads_per_processor > 0) {
    for (int g : group_sizes)
      if (g > machine.topology.threads_per_processor)
        throw std::invalid_argument(
            "evaluate_placement: group exceeds hardware threads per processor");
  }

  PlacementEvaluation eval;
  eval.placement = placement;
  eval.process_costs.reserve(profiles.size());

  std::vector<double> powers;
  powers.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const int g =
        group_sizes[static_cast<std::size_t>(placement.processor_of[i])];
    const Cost c = cost_in_group(profiles[i], g, total, machine);
    eval.process_costs.push_back(c);
    powers.push_back(c.power());
    eval.total.time = std::max(eval.total.time, c.time);
    eval.total.energy += c.energy;
  }
  eval.objective = metric_value(eval.total, objective);
  eval.envelope = check_system(powers, placement.processor_of, machine.topology,
                               machine.envelope);
  eval.feasible = eval.envelope.feasible;
  return eval;
}

PlacementResult place_fill_first(std::span<const ProcessProfile> profiles,
                                 const MachineModel& machine,
                                 Objective objective) {
  const int tpp = machine.topology.threads_per_processor;
  if (static_cast<int>(profiles.size()) >
      machine.topology.total_processors() * tpp)
    throw ParamError("place_fill_first: more processes than hardware threads");
  Placement pl;
  pl.processor_of.resize(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i)
    pl.processor_of[i] = static_cast<int>(i) / tpp;
  return finish(profiles, std::move(pl), machine, objective, "fill-first", 1);
}

PlacementResult place_round_robin(std::span<const ProcessProfile> profiles,
                                  const MachineModel& machine,
                                  Objective objective) {
  const int procs = machine.topology.total_processors();
  const int tpp = machine.topology.threads_per_processor;
  if (static_cast<int>(profiles.size()) > procs * tpp)
    throw ParamError("place_round_robin: more processes than hardware threads");
  Placement pl;
  pl.processor_of.resize(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i)
    pl.processor_of[i] = static_cast<int>(i) % procs;
  return finish(profiles, std::move(pl), machine, objective, "round-robin", 1);
}

PlacementResult place_greedy(std::span<const ProcessProfile> profiles,
                             const MachineModel& machine, Objective objective) {
  const int total = static_cast<int>(profiles.size());
  const int procs = machine.topology.total_processors();
  const int tpp = machine.topology.threads_per_processor;
  if (total > procs * tpp)
    throw ParamError("place_greedy: more processes than hardware threads");

  // First-fit by descending solo power; adding a process to a group changes
  // every member's power (co-location raises the intra fraction), so each
  // candidate addition re-evaluates the whole group.
  std::vector<std::size_t> order(profiles.size());
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> solo_power(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i)
    solo_power[i] = cost_in_group(profiles[i], 1, total, machine).power();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return solo_power[a] > solo_power[b];
  });

  std::vector<std::vector<std::size_t>> groups(static_cast<std::size_t>(procs));
  std::vector<int> proc_of(profiles.size(), -1);
  long long examined = 0;

  auto group_feasible = [&](const std::vector<std::size_t>& members) {
    if (machine.envelope.per_processor <= 0) return true;
    double demand = 0;
    for (std::size_t m : members)
      demand += cost_in_group(profiles[m], static_cast<int>(members.size()),
                              total, machine)
                    .power();
    return demand <= machine.envelope.per_processor;
  };

  for (std::size_t idx : order) {
    bool placed = false;
    for (int p = 0; p < procs && !placed; ++p) {
      auto& g = groups[static_cast<std::size_t>(p)];
      if (static_cast<int>(g.size()) >= tpp) continue;
      g.push_back(idx);
      ++examined;
      if (group_feasible(g)) {
        proc_of[idx] = p;
        placed = true;
      } else {
        g.pop_back();
      }
    }
    if (!placed) {
      // No feasible slot: drop it on the emptiest processor with room so the
      // caller still gets a placement (marked infeasible by evaluation).
      int best = -1;
      for (int p = 0; p < procs; ++p) {
        const auto sz = groups[static_cast<std::size_t>(p)].size();
        if (static_cast<int>(sz) < tpp &&
            (best < 0 || sz < groups[static_cast<std::size_t>(best)].size()))
          best = p;
      }
      groups[static_cast<std::size_t>(best)].push_back(idx);
      proc_of[idx] = best;
    }
  }

  Placement pl;
  pl.processor_of = std::move(proc_of);
  return finish(profiles, std::move(pl), machine, objective, "greedy", examined);
}

PlacementResult place_exact_uniform(std::span<const ProcessProfile> profiles,
                                    const MachineModel& machine,
                                    Objective objective, int max_processes) {
  const int total = static_cast<int>(profiles.size());
  if (total == 0) {
    return finish(profiles, Placement{}, machine, objective, "exact-uniform", 0);
  }
  if (total > max_processes)
    throw ParamError("place_exact_uniform: too many processes for exact search");
  if (!uniform(profiles))
    throw ParamError("place_exact_uniform: profiles must be identical");

  const int procs = machine.topology.total_processors();
  const int tpp = machine.topology.threads_per_processor;
  if (total > procs * tpp)
    throw ParamError("place_exact_uniform: more processes than hardware threads");

  const ProcessProfile& prof = profiles.front();

  // Cache per-group-size cost; group sizes range 1..tpp.
  std::vector<Cost> by_size(static_cast<std::size_t>(tpp) + 1);
  for (int g = 1; g <= tpp; ++g)
    by_size[static_cast<std::size_t>(g)] = cost_in_group(prof, g, total, machine);

  // Enumerate partitions of `total` into at most `procs` parts, each <= tpp,
  // parts non-increasing. For each partition: time = max over parts (same as
  // part with max per-process time), energy = sum over parts of g * E(g).
  std::vector<int> parts;
  std::vector<int> best_parts;
  double best_objective = std::numeric_limits<double>::infinity();
  bool best_feasible = false;
  long long examined = 0;

  auto partition_metrics = [&](const std::vector<int>& ps) {
    Cost totalc;
    bool feasible = true;
    for (int g : ps) {
      const Cost& c = by_size[static_cast<std::size_t>(g)];
      totalc.time = std::max(totalc.time, c.time);
      totalc.energy += c.energy * g;
      if (machine.envelope.per_processor > 0 &&
          c.power() * g > machine.envelope.per_processor)
        feasible = false;
    }
    // Chip/system caps need an assignment; groups go to processors in order.
    if (feasible &&
        (machine.envelope.per_chip > 0 || machine.envelope.system > 0)) {
      double system = 0;
      std::vector<double> chip(static_cast<std::size_t>(machine.topology.chips),
                               0.0);
      for (std::size_t i = 0; i < ps.size(); ++i) {
        const Cost& c = by_size[static_cast<std::size_t>(ps[i])];
        const double demand = c.power() * ps[i];
        system += demand;
        chip[i / static_cast<std::size_t>(machine.topology.processors_per_chip)] +=
            demand;
      }
      if (machine.envelope.system > 0 && system > machine.envelope.system)
        feasible = false;
      if (machine.envelope.per_chip > 0)
        for (double d : chip)
          if (d > machine.envelope.per_chip) feasible = false;
    }
    return std::pair<Cost, bool>(totalc, feasible);
  };

  auto consider = [&]() {
    ++examined;
    auto [cost, feasible] = partition_metrics(parts);
    const double obj = metric_value(cost, objective);
    // Prefer feasible placements; among equals, the better objective.
    if ((feasible && !best_feasible) ||
        (feasible == best_feasible && obj < best_objective)) {
      best_feasible = feasible;
      best_objective = obj;
      best_parts = parts;
    }
  };

  // Recursive partition enumeration with non-increasing parts.
  auto recurse = [&](auto&& self, int remaining, int max_part) -> void {
    if (remaining == 0) {
      consider();
      return;
    }
    if (static_cast<int>(parts.size()) >= procs) return;
    const int slots_left = procs - static_cast<int>(parts.size());
    for (int g = std::min(max_part, remaining); g >= 1; --g) {
      // Prune: even filling every remaining slot with g can't cover remaining.
      if (static_cast<long long>(g) * slots_left < remaining) break;
      parts.push_back(g);
      self(self, remaining - g, g);
      parts.pop_back();
    }
  };
  recurse(recurse, total, tpp);

  Placement pl;
  pl.processor_of.resize(profiles.size());
  std::size_t next = 0;
  for (std::size_t part = 0; part < best_parts.size(); ++part)
    for (int k = 0; k < best_parts[part]; ++k)
      pl.processor_of[next++] = static_cast<int>(part);

  return finish(profiles, std::move(pl), machine, objective, "exact-uniform",
                examined);
}

PlacementResult place_best(std::span<const ProcessProfile> profiles,
                           const MachineModel& machine, Objective objective) {
  std::vector<PlacementResult> candidates;
  candidates.push_back(place_fill_first(profiles, machine, objective));
  candidates.push_back(place_round_robin(profiles, machine, objective));
  candidates.push_back(place_greedy(profiles, machine, objective));
  if (uniform(profiles) && static_cast<int>(profiles.size()) <= 64)
    candidates.push_back(place_exact_uniform(profiles, machine, objective));

  PlacementResult* best = &candidates.front();
  for (PlacementResult& c : candidates) {
    const bool better_feasibility = c.eval.feasible && !best->eval.feasible;
    const bool same_feasibility = c.eval.feasible == best->eval.feasible;
    if (better_feasibility ||
        (same_feasibility && c.eval.objective < best->eval.objective))
      best = &c;
  }
  PlacementResult result = std::move(*best);
  long long examined = 0;
  for (const PlacementResult& c : candidates) examined += c.placements_examined;
  result.placements_examined = examined;
  return result;
}

}  // namespace stamp
