#include "core/analysis.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

namespace stamp::analysis {

CostCounters jacobi_round_counters(int n) noexcept {
  CostCounters c;
  // n-1 multiplications, n-2 additions, 1 subtraction, 1 multiplication:
  // 2n - 1 floating-point operations; the assignment counts as 1 integer op
  // (the paper counts "2n local operations" total).
  c.c_fp = 2.0 * n - 1;
  c.c_int = 1;
  c.m_s_a = 0;  // the analysis does not split intra/inter; use the _e columns
  c.m_r_a = 0;  // and a MachineParams with L_e = L, g_mp_e = g to evaluate.
  c.m_s_e = n - 1;
  c.m_r_e = n - 1;
  return c;
}

JacobiAnalysis jacobi(int n, const JacobiParams& p, const EnergyParams& e) noexcept {
  JacobiAnalysis a;
  a.n = n;
  a.round_counters = jacobi_round_counters(n);

  // T_S-round = c + L + g (m_s + m_r) = 2n + L + 2 g n - 2 g.
  a.T_s_round = 2.0 * n + p.L + 2.0 * p.g * n - 2.0 * p.g;

  // E_S-round = w_fp (2n-1) + w_int + (w_mr + w_ms)(n-1)
  //           = (2 w_fp + w_mr + w_ms) n - w_fp + w_int - w_mr - w_ms.
  a.E_s_round = (2.0 * e.w_fp + e.w_m_r + e.w_m_s) * n - e.w_fp + e.w_int -
                e.w_m_r - e.w_m_s;

  // Outside the S-round: while-condition check and termination test/set.
  a.T_c_lower = 2;
  a.E_c_upper = e.w_fp + 2.0 * e.w_int;

  a.T_s_unit_lower = a.T_s_round + a.T_c_lower;
  a.E_s_unit_upper = a.E_s_round + a.E_c_upper;
  a.P_s_unit_upper =
      a.T_s_unit_lower > 0 ? a.E_s_unit_upper / a.T_s_unit_lower : 0;
  return a;
}

JacobiParams jacobi_lower_bound_params(int n) noexcept {
  JacobiParams p;
  p.L = 5;  // lock-step rounds + unit-time barrier: >= 5 time units
  // Smallest bandwidth factor: 3 local ops per round of interest vs the
  // n (n-1) messages the network delivers in the same time.
  p.g = n > 1 ? 3.0 / (static_cast<double>(n) * (n - 1)) : 0.0;
  return p;
}

double jacobi_T_s_unit_lower_bound(int n) noexcept {
  // 2n + 5 + 2n*3/(n(n-1)) - 2*3/(n(n-1)) + 2 = 2n + 6/n + 7.
  return 2.0 * n + 6.0 / n + 7.0;
}

double jacobi_power_upper_bound(double x, double y, double w_int) noexcept {
  return (x + y) * w_int;
}

int jacobi_max_threads_per_processor(double x, double y, double w_int,
                                     double cap,
                                     int threads_per_processor) noexcept {
  const double per_thread = jacobi_power_upper_bound(x, y, w_int);
  int thread_cap = threads_per_processor > 0 ? threads_per_processor : INT_MAX;
  if (cap <= 0 || per_thread <= 0) return thread_cap;
  const int by_power = static_cast<int>(std::floor(cap / per_thread + 1e-12));
  return std::min(by_power, thread_cap);
}

CostCounters apsp_round_counters(int n) noexcept {
  CostCounters c;
  const double dn = n;
  // read x: n^2 shared reads; for each of the n row entries, n additions and
  // n-1 comparisons; write the row: n shared writes. Additions of weights are
  // fp; comparisons and the assignment are integer ops.
  c.d_r_e = dn * dn;
  c.d_w_e = dn;
  c.c_fp = dn * dn;             // x_ik + x_kj additions
  c.c_int = dn * (dn - 1) + dn; // min comparisons + row assignments
  return c;
}

Cost apsp_process_cost(int n, int rounds, const MachineParams& mp,
                       const EnergyParams& e) noexcept {
  const CostCounters per_round = apsp_round_counters(n);
  ProcessCounts pc;
  pc.inter = n - 1;  // every peer is on another processor (inter_proc)
  Cost round_cost = s_round_cost(per_round, mp, e, pc);
  // Outside the round: loop-condition check + termination test (integer ops).
  Cost outside{2.0, 2.0 * e.w_int};
  return (round_cost + outside).scaled(rounds);
}

CostCounters cluster_apsp_round_counters(int n, int nodes) noexcept {
  CostCounters c;
  const double dn = n;
  const double per_node = dn / nodes;  // processes co-resident on one machine
  // Same min-plus work as the shared-memory APSP round...
  c.c_fp = dn * dn;
  c.c_int = dn * (dn - 1) + dn;
  // ...but the matrix travels by explicit row exchange: each process sends
  // its n-entry row to all n-1 peers and receives their rows, split by tier.
  c.m_s_e = dn * (per_node - 1);
  c.m_r_e = dn * (per_node - 1);
  c.m_s_n = dn * (dn - per_node);
  c.m_r_n = dn * (dn - per_node);
  return c;
}

ProcessCounts cluster_apsp_process_counts(int n, int nodes) noexcept {
  ProcessCounts pc;
  const int per_node = n / nodes;
  pc.inter = per_node - 1;   // co-resident peers, each on its own processor
  pc.node = n - per_node;    // peers on the other nodes of the cluster
  return pc;
}

Cost cluster_apsp_process_cost(int n, int nodes, int rounds,
                               const MachineParams& mp,
                               const EnergyParams& e) noexcept {
  const CostCounters per_round = cluster_apsp_round_counters(n, nodes);
  const ProcessCounts pc = cluster_apsp_process_counts(n, nodes);
  const Cost round_cost = s_round_cost(per_round, mp, e, pc);
  // Outside the round: loop-condition check + termination test (integer ops).
  const Cost outside{2.0, 2.0 * e.w_int};
  return (round_cost + outside).scaled(rounds);
}

CostCounters transfer_counters(double rollbacks, bool intra) noexcept {
  CostCounters c;
  // Each subtransaction (withdraw / deposit): read balance, adjust, write
  // balance, plus commit-flag bookkeeping. The and-decision adds integer ops.
  const double attempts = 1.0 + rollbacks;
  const double reads = 2.0 * attempts;   // one per subtransaction per attempt
  const double writes = 2.0 * attempts;
  if (intra) {
    c.d_r_a = reads;
    c.d_w_a = writes;
  } else {
    c.d_r_e = reads;
    c.d_w_e = writes;
  }
  c.c_int = (2.0 * 3.0 + 3.0) * attempts;  // adjust+flags per sub + decision
  c.kappa = rollbacks;
  return c;
}

CostCounters reserve_counters(double rollbacks) noexcept {
  CostCounters c;
  const double attempts = 1.0 + rollbacks;
  c.d_r_e = 3.0 * attempts;  // one seat-count read per leg (async_comm/inter)
  c.d_w_e = 3.0 * attempts;  // one seat-count write per leg
  c.c_int = (3.0 * 3.0 + 4.0) * attempts;  // per-leg bookkeeping + decision tree
  c.kappa = rollbacks;
  return c;
}

}  // namespace stamp::analysis
