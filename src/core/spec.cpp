#include "core/spec.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace stamp::spec {
namespace {

/// Re-split a round's communication by the achieved intra fraction.
CostCounters resplit(const CostCounters& c, double intra_fraction) {
  const double f = std::clamp(intra_fraction, 0.0, 1.0);
  CostCounters out;
  out.c_fp = c.c_fp;
  out.c_int = c.c_int;
  out.kappa = c.kappa;
  const double d_r = c.d_r_a + c.d_r_e;
  const double d_w = c.d_w_a + c.d_w_e;
  const double m_s = c.m_s_a + c.m_s_e;
  const double m_r = c.m_r_a + c.m_r_e;
  out.d_r_a = d_r * f;
  out.d_r_e = d_r * (1 - f);
  out.d_w_a = d_w * f;
  out.d_w_e = d_w * (1 - f);
  out.m_s_a = m_s * f;
  out.m_s_e = m_s * (1 - f);
  out.m_r_a = m_r * f;
  out.m_r_e = m_r * (1 - f);
  return out;
}

/// Cost of one replica that shares its processor with `group - 1` peers, out
/// of `replicas` total replicas of the spec.
Cost replica_cost(const ProcessSpec& spec, int group, int replicas,
                  const MachineModel& machine) {
  const int peers = replicas - 1;
  const double intra_fraction =
      peers > 0 ? static_cast<double>(group - 1) / peers : 0.0;
  ProcessCounts pc;
  pc.intra = group - 1;
  pc.inter = replicas - group;

  Cost total;
  for (const UnitSpec& u : spec.units) {
    Cost unit{u.outside_fp + u.outside_int,
              u.outside_fp * machine.energy.w_fp +
                  u.outside_int * machine.energy.w_int};
    if (u.has_round) {
      const CostCounters round = resplit(u.round, intra_fraction);
      unit += s_round_cost(round, machine.params, machine.energy, pc);
    }
    total += unit.scaled(static_cast<double>(u.repetitions));
  }
  return total;
}

}  // namespace

CostCounters ProcessSpec::total_counters() const {
  CostCounters total;
  for (const UnitSpec& u : units) {
    CostCounters c = u.has_round ? u.round : CostCounters{};
    c.c_fp += u.outside_fp;
    c.c_int += u.outside_int;
    total += c.scaled(static_cast<double>(u.repetitions));
  }
  return total;
}

ProcessBuilder& ProcessBuilder::replicas(int n) {
  if (n < 1) throw ParamError("ProcessBuilder: replicas < 1");
  spec_.replicas = n;
  return *this;
}

ProcessBuilder& ProcessBuilder::loop(CostCounters round,
                                     std::size_t repetitions, double outside_fp,
                                     double outside_int) {
  spec_.units.push_back(
      UnitSpec{round, true, outside_fp, outside_int, repetitions});
  return *this;
}

ProcessBuilder& ProcessBuilder::unit(CostCounters round, double outside_fp,
                                     double outside_int) {
  spec_.units.push_back(UnitSpec{round, true, outside_fp, outside_int, 1});
  return *this;
}

ProcessBuilder& ProcessBuilder::local(double fp, double integer) {
  spec_.units.push_back(UnitSpec{CostCounters{}, false, fp, integer, 1});
  return *this;
}

Program& Program::add(ProcessSpec spec) {
  if (spec.replicas < 1) throw ParamError("Program: replicas < 1");
  specs_.push_back(std::move(spec));
  return *this;
}

int Program::total_replicas() const noexcept {
  int n = 0;
  for (const ProcessSpec& s : specs_) n += s.replicas;
  return n;
}

Evaluation Program::evaluate(const MachineModel& machine) const {
  machine.validate();
  const int procs = machine.topology.total_processors();
  const int tpp = machine.topology.threads_per_processor;

  Evaluation eval;
  std::vector<double> replica_powers;
  std::vector<int> replica_processor;

  int next_processor = 0;
  for (const ProcessSpec& spec : specs_) {
    SpecCost sc;
    sc.name = spec.name;
    sc.replicas = spec.replicas;
    sc.first_processor = next_processor;

    // Group sizes under the derived placement.
    std::vector<int> groups;
    if (spec.attributes.distribution == Distribution::IntraProc) {
      int remaining = spec.replicas;
      while (remaining > 0) {
        groups.push_back(std::min(remaining, tpp));
        remaining -= groups.back();
      }
    } else {
      groups.assign(static_cast<std::size_t>(spec.replicas), 1);
    }
    sc.processors_spanned = static_cast<int>(groups.size());
    next_processor += sc.processors_spanned;
    if (next_processor > procs)
      throw ParamError("Program::evaluate: machine has too few processors (" +
                       std::to_string(procs) + ") for this program");

    Cost worst;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const int g = groups[gi];
      const Cost c = replica_cost(spec, g, spec.replicas, machine);
      if (c.time > worst.time) worst = c;
      for (int k = 0; k < g; ++k) {
        eval.total.energy += c.energy;
        eval.total.time = std::max(eval.total.time, c.time);
        replica_powers.push_back(c.power());
        replica_processor.push_back(sc.first_processor + static_cast<int>(gi));
      }
    }
    sc.per_replica = worst;
    sc.power = worst.power();
    eval.specs.push_back(std::move(sc));
  }

  eval.metrics = metrics_from(eval.total);
  eval.envelope = check_system(replica_powers, replica_processor,
                               machine.topology, machine.envelope);
  eval.fits_envelope = eval.envelope.feasible;
  eval.hardware_threads_used = static_cast<int>(replica_powers.size());
  eval.processors_used = next_processor;
  return eval;
}

void Program::describe(std::ostream& os) const {
  for (const ProcessSpec& spec : specs_) {
    os << spec.name << " [" << keyword(spec.attributes.distribution) << ", "
       << keyword(spec.attributes.exec) << ", "
       << keyword(spec.attributes.comm) << "]";
    if (spec.replicas > 1) os << " x" << spec.replicas;
    os << '\n';
    for (const UnitSpec& u : spec.units) {
      os << "  ";
      if (u.repetitions > 1) os << "repeat " << u.repetitions << ": ";
      if (u.has_round) {
        os << "S-round " << u.round;
      } else {
        os << "local(fp=" << u.outside_fp << ", int=" << u.outside_int << ')';
      }
      if (u.has_round && (u.outside_fp > 0 || u.outside_int > 0))
        os << " + local(fp=" << u.outside_fp << ", int=" << u.outside_int << ')';
      os << '\n';
    }
  }
}

}  // namespace stamp::spec
