#pragma once
/// \file envelope.hpp
/// \brief Power-envelope feasibility checks and the paper's "how many threads
///        per processor" admission rule.
///
/// Section 4's Jacobi example closes with: a per-core power cap of
/// `3(x+y) w_int` and a per-thread power bound of `(x+y) w_int` mean at most
/// three of the core's four hardware threads may run the algorithm. This
/// module generalizes that computation: given per-process power estimates and
/// hierarchical caps, decide feasibility and the maximum admissible
/// co-location.

#include "core/cost_model.hpp"
#include "core/params.hpp"

#include <span>
#include <vector>

namespace stamp {

/// Result of checking a set of co-located processes against one cap.
struct EnvelopeCheck {
  bool feasible = true;   ///< all caps respected
  double demand = 0;      ///< total power demanded at the binding level
  double cap = 0;         ///< the cap it was checked against (0 = none)
  double slack = 0;       ///< cap - demand (meaningless when cap == 0)
};

/// Check a single processor: total power of the processes placed on it vs the
/// per-processor cap. Unconstrained (cap == 0) is always feasible.
[[nodiscard]] EnvelopeCheck check_processor(std::span<const double> process_powers,
                                            const PowerEnvelope& env) noexcept;

/// Maximum number of processes of power `per_process_power` that one
/// processor may host under `env` (the paper's admission rule). Also capped
/// by `threads_per_processor` when positive. A zero-power process is admitted
/// up to the thread cap (or INT_MAX if uncapped).
[[nodiscard]] int max_processes_per_processor(double per_process_power,
                                              const PowerEnvelope& env,
                                              int threads_per_processor) noexcept;

/// System-level feasibility of an assignment: `processor_of[i]` gives the
/// processor hosting process i (processors are numbered chip-major:
/// processor p lives on chip p / processors_per_chip). Checks per-processor,
/// per-chip and system caps.
struct SystemCheck {
  bool feasible = true;
  std::vector<EnvelopeCheck> processors;  ///< one per occupied processor id
  EnvelopeCheck system;
  int first_violation_processor = -1;  ///< -1 when feasible (or chip/system-level)
};

[[nodiscard]] SystemCheck check_system(std::span<const double> process_powers,
                                       std::span<const int> processor_of,
                                       const Topology& topo,
                                       const PowerEnvelope& env);

}  // namespace stamp
