#include "core/envelope.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <stdexcept>

namespace stamp {

EnvelopeCheck check_processor(std::span<const double> process_powers,
                              const PowerEnvelope& env) noexcept {
  EnvelopeCheck c;
  for (double p : process_powers) c.demand += p;
  c.cap = env.per_processor;
  if (c.cap > 0) {
    c.slack = c.cap - c.demand;
    c.feasible = c.demand <= c.cap;
  }
  return c;
}

int max_processes_per_processor(double per_process_power,
                                const PowerEnvelope& env,
                                int threads_per_processor) noexcept {
  int thread_cap = threads_per_processor > 0 ? threads_per_processor : INT_MAX;
  if (env.per_processor <= 0 || per_process_power <= 0) return thread_cap;
  // Largest k with k * p <= cap; guard against floating-point edge where
  // (cap/p) floors just below an exact integer ratio.
  double ratio = env.per_processor / per_process_power;
  int k = static_cast<int>(std::floor(ratio + 1e-12));
  return std::min(k, thread_cap);
}

SystemCheck check_system(std::span<const double> process_powers,
                         std::span<const int> processor_of, const Topology& topo,
                         const PowerEnvelope& env) {
  if (process_powers.size() != processor_of.size())
    throw std::invalid_argument("check_system: size mismatch");

  const int procs = topo.total_processors();
  std::vector<double> per_proc(static_cast<std::size_t>(procs), 0.0);
  double total = 0;
  for (std::size_t i = 0; i < process_powers.size(); ++i) {
    const int p = processor_of[i];
    if (p < 0 || p >= procs)
      throw std::invalid_argument("check_system: processor id out of range");
    per_proc[static_cast<std::size_t>(p)] += process_powers[i];
    total += process_powers[i];
  }

  SystemCheck result;
  result.processors.resize(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    EnvelopeCheck& c = result.processors[static_cast<std::size_t>(p)];
    c.demand = per_proc[static_cast<std::size_t>(p)];
    c.cap = env.per_processor;
    if (c.cap > 0) {
      c.slack = c.cap - c.demand;
      c.feasible = c.demand <= c.cap;
      if (!c.feasible && result.first_violation_processor < 0)
        result.first_violation_processor = p;
    }
  }

  bool chips_ok = true;
  if (env.per_chip > 0) {
    for (int chip = 0; chip < topo.chips; ++chip) {
      double chip_demand = 0;
      for (int p = 0; p < topo.processors_per_chip; ++p)
        chip_demand += per_proc[static_cast<std::size_t>(
            chip * topo.processors_per_chip + p)];
      if (chip_demand > env.per_chip) chips_ok = false;
    }
  }

  result.system.demand = total;
  result.system.cap = env.system;
  if (env.system > 0) {
    result.system.slack = env.system - total;
    result.system.feasible = total <= env.system;
  }

  result.feasible = chips_ok && result.system.feasible &&
                    std::all_of(result.processors.begin(), result.processors.end(),
                                [](const EnvelopeCheck& c) { return c.feasible; });
  return result;
}

}  // namespace stamp
