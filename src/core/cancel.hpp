#pragma once
/// \file cancel.hpp
/// \brief `core::CancelToken` — a cooperative, async-signal-safe cancellation
///        flag shared between a controller and the workers it may stop.
///
/// The token is one lock-free atomic flag. Workers poll `cancelled()` (one
/// relaxed-ish load, the same disabled-is-free discipline as `obs` and
/// `fault`) at natural preemption points — a sweep checks per grid point, the
/// pool checks per claimed index — and wind down *cooperatively*: work that
/// already started is finished and accounted (and, in a journaled sweep,
/// persisted) rather than abandoned half-done. Nothing is ever interrupted
/// mid-evaluation, so cancellation can never corrupt an artifact or a
/// journal.
///
/// `request_cancel()` is a single lock-free atomic store, which makes it
/// legal to call from a POSIX signal handler — `stamp_sweep` trips the token
/// from SIGINT/SIGTERM, drains in-flight points, fsyncs the journal, and
/// exits with a distinct code. A token can be reused across runs via
/// `reset()` (not signal-safe; call between runs, not during them).

#include <atomic>

namespace stamp::core {

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cooperative cancellation. Async-signal-safe (one lock-free
  /// atomic store, see the static_assert below) and idempotent.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  /// True once cancellation has been requested. The acquire pairs with
  /// `request_cancel`'s release, so any state the controller wrote before
  /// tripping the token is visible to a worker that observes the trip.
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Re-arm the token for another run. NOT async-signal-safe by contract:
  /// only reset between runs, never while workers may still poll it.
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

// request_cancel is documented as callable from a signal handler; that is
// only sound when the store cannot take a lock.
static_assert(std::atomic<bool>::is_always_lock_free,
              "CancelToken requires a lock-free atomic<bool> for "
              "async-signal-safety");

}  // namespace stamp::core
