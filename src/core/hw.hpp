#pragma once
/// \file hw.hpp
/// \brief Detection of the parallelism actually available to this process.
///
/// `std::thread::hardware_concurrency()` answers the wrong question for a
/// scaling bench twice over: it may return 0 ("unknown"), and it reports the
/// machine-wide thread count even when the process is pinned (taskset,
/// cgroup cpusets, CI runners) to a fraction of it. A bench that gates
/// "speedup at N threads" against either number compares apples to oranges.
/// `usable_hardware_threads` reports the CPU-affinity mask size where the
/// platform exposes one, falling back to `hardware_concurrency`, and never
/// returns less than 1.

namespace stamp::core {

/// Hardware threads this process can actually run on: the scheduling
/// affinity mask size on Linux (a process pinned to 4 of 64 cores reports
/// 4), `std::thread::hardware_concurrency()` elsewhere or when the mask is
/// unavailable, and at least 1 always.
[[nodiscard]] int usable_hardware_threads() noexcept;

}  // namespace stamp::core
