#include "core/hw.hpp"

#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace stamp::core {

int usable_hardware_threads() noexcept {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int n = CPU_COUNT(&mask);
    if (n > 0) return n;
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace stamp::core
