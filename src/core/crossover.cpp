#include "core/crossover.hpp"

#include <stdexcept>

namespace stamp {
namespace {

/// -1: f wins, +1: g wins, 0: tie.
int winner(const CostFn& f, const CostFn& g, long long x) {
  const double fv = f(x);
  const double gv = g(x);
  if (fv < gv) return -1;
  if (gv < fv) return 1;
  return 0;
}

}  // namespace

std::optional<Crossover> find_crossover(const CostFn& f, const CostFn& g,
                                        long long lo, long long hi) {
  if (lo >= hi) throw std::invalid_argument("find_crossover: need lo < hi");
  const int w_lo = winner(f, g, lo);
  const int w_hi = winner(f, g, hi);
  if (w_hi == w_lo || w_hi == 0) {
    // Same winner at both ends (or tie at hi): scan coarsely for an interior
    // change; without one, report none.
    bool change = false;
    long long probe_hi = hi;
    const long long span = hi - lo;
    for (int step = 1; step <= 64 && !change; ++step) {
      const long long x = lo + span * step / 64;
      if (x <= lo || x > hi) continue;
      const int w = winner(f, g, x);
      if (w != 0 && w != w_lo) {
        probe_hi = x;
        change = true;
      }
    }
    if (!change) return std::nullopt;
    hi = probe_hi;
  }

  // Invariant: winner(lo) == w_lo, winner(hi) != w_lo (and != 0).
  long long a = lo;
  long long b = hi;
  while (b - a > 1) {
    const long long mid = a + (b - a) / 2;
    const int w = winner(f, g, mid);
    if (w == w_lo || w == 0) {
      a = mid;
    } else {
      b = mid;
    }
  }

  Crossover c;
  c.at = b;
  c.f_before = f(a);
  c.g_before = g(a);
  c.f_after = f(b);
  c.g_after = g(b);
  return c;
}

std::optional<long long> first_win(const CostFn& f, const CostFn& g,
                                   long long lo, long long hi) {
  if (f(lo) < g(lo)) return std::nullopt;  // already winning
  const auto cross = find_crossover(f, g, lo, hi);
  if (!cross || cross->f_after >= cross->g_after) return std::nullopt;
  return cross->at;
}

}  // namespace stamp
