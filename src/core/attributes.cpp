#include "core/attributes.hpp"

#include <ostream>

namespace stamp {

const std::array<ModeCombination, 4>& table1_combinations() noexcept {
  static const std::array<ModeCombination, 4> kCombos = {{
      {ExecMode::Transactional, CommMode::Synchronous, "trans_exec", "synch_comm"},
      {ExecMode::Asynchronous, CommMode::Synchronous, "async_exec", "synch_comm"},
      {ExecMode::Transactional, CommMode::Asynchronous, "trans_exec", "async_comm"},
      {ExecMode::Asynchronous, CommMode::Asynchronous, "async_exec", "async_comm"},
  }};
  return kCombos;
}

std::string_view keyword(Distribution d) noexcept {
  switch (d) {
    case Distribution::IntraProc: return "intra_proc";
    case Distribution::InterProc: return "inter_proc";
    case Distribution::InterNode: return "inter_node";
  }
  return "?";
}

std::string_view keyword(ExecMode e) noexcept {
  return e == ExecMode::Transactional ? "trans_exec" : "async_exec";
}

std::string_view keyword(CommMode c) noexcept {
  return c == CommMode::Synchronous ? "synch_comm" : "async_comm";
}

std::string_view to_string(CommSubstrate s) noexcept {
  switch (s) {
    case CommSubstrate::None: return "none";
    case CommSubstrate::SharedMemory: return "shared_memory";
    case CommSubstrate::MessagePassing: return "message_passing";
    case CommSubstrate::Both: return "both";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Distribution d) { return os << keyword(d); }
std::ostream& operator<<(std::ostream& os, ExecMode e) { return os << keyword(e); }
std::ostream& operator<<(std::ostream& os, CommMode c) { return os << keyword(c); }
std::ostream& operator<<(std::ostream& os, CommSubstrate s) { return os << to_string(s); }

std::ostream& operator<<(std::ostream& os, const Attributes& a) {
  return os << '[' << keyword(a.distribution) << ", " << keyword(a.exec) << ", "
            << keyword(a.comm) << ']';
}

}  // namespace stamp
