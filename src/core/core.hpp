#pragma once
/// \file core.hpp
/// \brief Umbrella header for the STAMP core model.

#include "core/analysis.hpp"
#include "core/attributes.hpp"
#include "core/cost_model.hpp"
#include "core/crossover.hpp"
#include "core/counters.hpp"
#include "core/envelope.hpp"
#include "core/function_ref.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/placement.hpp"
#include "core/process.hpp"
#include "core/spec.hpp"
