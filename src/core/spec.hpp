#pragma once
/// \file spec.hpp
/// \brief Declarative STAMP program specifications — the paper's annotated
///        pseudocode as a first-class object.
///
/// The paper writes algorithms as attributed processes:
///
///     Jacobi(A, b, x) [intra_proc, async_exec, synch_comm]
///       while not terminated
///         ... one S-round ...
///
/// `spec::Program` captures exactly that: named process specs with attribute
/// triples, replica counts, and S-unit/S-round structure with *symbolic*
/// counters. Evaluation derives a placement from each spec's distribution
/// attribute, splits every round's communication intra/inter accordingly,
/// prices all replicas, composes in parallel, computes the four metrics, and
/// checks the hierarchical power envelope — the full Section 3 workflow in
/// one call, without executing anything.
///
/// Communication counters in a spec are distribution-agnostic: intra and
/// inter columns are summed and re-split by the *actual* co-location the
/// derived placement achieves (a spec whose replicas span several processors
/// cannot be all-intra no matter its keyword).

#include "core/attributes.hpp"
#include "core/cost_model.hpp"
#include "core/envelope.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace stamp::spec {

/// One S-unit of a spec: an optional S-round plus outside-of-round local
/// work, repeated `repetitions` times.
struct UnitSpec {
  CostCounters round;      ///< communication + in-round local work
  bool has_round = true;   ///< false = purely local unit
  double outside_fp = 0;   ///< local fp ops outside the round
  double outside_int = 0;  ///< local int ops outside the round
  std::size_t repetitions = 1;
};

/// One attributed process spec, possibly replicated (the paper's
/// "executed by n threads").
struct ProcessSpec {
  std::string name;
  Attributes attributes{};
  int replicas = 1;
  std::vector<UnitSpec> units;

  /// Aggregate counters of one replica.
  [[nodiscard]] CostCounters total_counters() const;
};

/// Fluent builder for a ProcessSpec.
class ProcessBuilder {
 public:
  ProcessBuilder(std::string name, Attributes attrs) {
    spec_.name = std::move(name);
    spec_.attributes = attrs;
  }

  /// Number of replicas of this process (default 1).
  ProcessBuilder& replicas(int n);

  /// Appends a while-loop: one S-round per iteration plus the paper's
  /// loop-condition / termination checks outside the round.
  ProcessBuilder& loop(CostCounters round, std::size_t repetitions,
                       double outside_fp = 0, double outside_int = 3);

  /// Appends a one-off S-unit with the given round.
  ProcessBuilder& unit(CostCounters round, double outside_fp = 0,
                       double outside_int = 0);

  /// Appends pure local computation (an S-unit with no round).
  ProcessBuilder& local(double fp, double integer);

  [[nodiscard]] const ProcessSpec& build() const { return spec_; }

 private:
  ProcessSpec spec_;
};

/// Per-spec evaluation detail.
struct SpecCost {
  std::string name;
  int replicas = 1;
  Cost per_replica;         ///< worst replica under the derived placement
  double power = 0;         ///< per-replica power (worst group)
  int first_processor = 0;  ///< where this spec's processors start
  int processors_spanned = 0;
};

/// Whole-program evaluation: parallel composition + metrics + envelope.
struct Evaluation {
  std::vector<SpecCost> specs;
  Cost total;         ///< max time over all replicas, total energy
  Metrics metrics{};  ///< of `total`
  SystemCheck envelope;
  bool fits_envelope = false;
  int hardware_threads_used = 0;
  int processors_used = 0;
};

/// A program: parallel composition of attributed process specs.
class Program {
 public:
  Program& add(ProcessSpec spec);
  Program& add(const ProcessBuilder& builder) { return add(builder.build()); }

  [[nodiscard]] const std::vector<ProcessSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] int total_replicas() const noexcept;

  /// Evaluate on `machine`. Placement is derived spec by spec over disjoint
  /// processors: intra_proc specs pack replicas onto consecutive processors
  /// (filling each one's hardware threads), inter_proc specs place one
  /// replica per processor. Throws ParamError if the machine is too small.
  [[nodiscard]] Evaluation evaluate(const MachineModel& machine) const;

  /// Pretty-print the program in the paper's annotation style.
  void describe(std::ostream& os) const;

 private:
  std::vector<ProcessSpec> specs_;
};

}  // namespace stamp::spec
