#include "core/metrics.hpp"

#include <ostream>

namespace stamp {

std::string_view to_string(Objective o) noexcept {
  switch (o) {
    case Objective::D: return "D";
    case Objective::PDP: return "PDP";
    case Objective::EDP: return "EDP";
    case Objective::ED2P: return "ED2P";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Objective o) { return os << to_string(o); }

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  return os << "{D=" << m.D << " PDP=" << m.PDP << " EDP=" << m.EDP
            << " ED2P=" << m.ED2P << '}';
}

Metrics metrics_from(const Cost& c) noexcept {
  Metrics m;
  m.D = c.time;
  m.PDP = c.energy;              // P*D = (E/D)*D = E
  m.EDP = c.energy * c.time;     // E*D
  m.ED2P = m.EDP * c.time;       // E*D^2
  return m;
}

double metric_value(const Metrics& m, Objective o) noexcept {
  switch (o) {
    case Objective::D: return m.D;
    case Objective::PDP: return m.PDP;
    case Objective::EDP: return m.EDP;
    case Objective::ED2P: return m.ED2P;
  }
  return 0;
}

double metric_value(const Cost& c, Objective o) noexcept {
  return metric_value(metrics_from(c), o);
}

int select_best(std::span<const Cost> candidates, Objective o) noexcept {
  int best = -1;
  double best_value = 0;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const double v = metric_value(candidates[i], o);
    if (best < 0 || v < best_value) {
      best = i;
      best_value = v;
    }
  }
  return best;
}

}  // namespace stamp
