#include "core/process.hpp"

#include <algorithm>
#include <utility>

namespace stamp {

SUnit& SUnit::add_round(SRound round) {
  rounds_.push_back(std::move(round));
  return *this;
}

SUnit& SUnit::add_local(double fp, double integer) {
  outside_.c_fp += fp;
  outside_.c_int += integer;
  return *this;
}

CostCounters SUnit::total_counters() const noexcept {
  CostCounters total = outside_;
  for (const SRound& r : rounds_) total += r.counters();
  return total;
}

Cost SUnit::cost(const MachineParams& mp, const EnergyParams& ep,
                 const ProcessCounts& pc) const noexcept {
  Cost total{outside_.local_ops(),
             outside_.c_fp * ep.w_fp + outside_.c_int * ep.w_int};
  for (const SRound& r : rounds_) total += r.cost(mp, ep, pc);
  return total;
}

StampProcess& StampProcess::add_unit(SUnit unit) {
  units_.push_back({std::move(unit), 1});
  return *this;
}

StampProcess& StampProcess::add_repeated(SUnit unit, std::size_t repetitions) {
  if (repetitions > 0) units_.push_back({std::move(unit), repetitions});
  return *this;
}

std::size_t StampProcess::unit_count() const noexcept {
  std::size_t n = 0;
  for (const RepeatedUnit& u : units_) n += u.repetitions;
  return n;
}

Cost StampProcess::cost(const MachineParams& mp, const EnergyParams& ep,
                        const ProcessCounts& pc) const noexcept {
  Cost total;
  for (const RepeatedUnit& u : units_)
    total += u.unit.cost(mp, ep, pc).scaled(static_cast<double>(u.repetitions));
  return total;
}

CostCounters StampProcess::total_counters() const noexcept {
  CostCounters total;
  for (const RepeatedUnit& u : units_)
    total += u.unit.total_counters().scaled(static_cast<double>(u.repetitions));
  return total;
}

Cost parallel_cost(std::span<const StampProcess> processes,
                   const MachineParams& mp, const EnergyParams& ep,
                   const ProcessCounts& pc) noexcept {
  Cost total;
  for (const StampProcess& p : processes) {
    const Cost c = p.cost(mp, ep, pc);
    total.time = std::max(total.time, c.time);
    total.energy += c.energy;
  }
  return total;
}

CostExpr CostExpr::round(CostCounters counters) {
  CostExpr e;
  e.kind_ = Kind::Round;
  e.counters_ = counters;
  return e;
}

CostExpr CostExpr::local(double fp, double integer) {
  return round(counters::local(fp, integer));
}

CostExpr CostExpr::fixed(Cost cost) {
  CostExpr e;
  e.kind_ = Kind::Fixed;
  e.fixed_ = cost;
  return e;
}

CostExpr CostExpr::seq(std::vector<CostExpr> children) {
  CostExpr e;
  e.kind_ = Kind::Seq;
  e.children_ = std::move(children);
  return e;
}

CostExpr CostExpr::par(std::vector<CostExpr> children) {
  CostExpr e;
  e.kind_ = Kind::Par;
  e.children_ = std::move(children);
  return e;
}

CostExpr CostExpr::repeat(CostExpr body, std::size_t n) {
  CostExpr e;
  e.kind_ = Kind::Repeat;
  e.children_.push_back(std::move(body));
  e.repetitions_ = n;
  return e;
}

Cost CostExpr::evaluate(const MachineParams& mp, const EnergyParams& ep,
                        const ProcessCounts& pc) const {
  switch (kind_) {
    case Kind::Round:
      return s_round_cost(counters_, mp, ep, pc);
    case Kind::Fixed:
      return fixed_;
    case Kind::Seq: {
      Cost total;
      for (const CostExpr& c : children_) total += c.evaluate(mp, ep, pc);
      return total;
    }
    case Kind::Par: {
      Cost total;
      for (const CostExpr& c : children_) {
        const Cost part = c.evaluate(mp, ep, pc);
        total.time = std::max(total.time, part.time);
        total.energy += part.energy;
      }
      return total;
    }
    case Kind::Repeat:
      return children_.front()
          .evaluate(mp, ep, pc)
          .scaled(static_cast<double>(repetitions_));
  }
  return {};
}

std::size_t CostExpr::leaf_count() const noexcept {
  if (kind_ == Kind::Round || kind_ == Kind::Fixed) return 1;
  std::size_t n = 0;
  for (const CostExpr& c : children_) n += c.leaf_count();
  return n;
}

std::size_t CostExpr::height() const noexcept {
  if (children_.empty()) return 1;
  std::size_t h = 0;
  for (const CostExpr& c : children_) h = std::max(h, c.height());
  return h + 1;
}

}  // namespace stamp
