#pragma once
/// \file attributes.hpp
/// \brief The three orthogonal STAMP process attributes (distribution,
///        execution, communication) and the Table-1 mode combinations.
///
/// A STAMP process is annotated with keywords that drive both how the runtime
/// executes it and how the cost model charges it:
///
///  * distribution:  `intra_proc` | `inter_proc`
///  * execution:     `trans_exec` | `async_exec`
///  * communication: `synch_comm` | `async_comm`
///
/// Table 1 of the paper enumerates the four legal combinations of execution
/// and communication mode; distribution is orthogonal to both.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace stamp {

/// Where the STAMP processes of a program are placed relative to each other.
///
/// `IntraProc` requests that processes share one processor (hardware threads
/// of one core): communication is fast but the per-processor power envelope
/// constrains how many processes may be co-located. `InterProc` spreads
/// processes over distinct processors: communication is slower but power is
/// spread over many envelopes. `InterNode` spreads processes over distinct
/// machines of a cluster (the third tier of arXiv:0810.2150): communication
/// pays the network parameters L_net/g_net/w_net, but each process gets a
/// whole node's power envelope to itself.
enum class Distribution : std::uint8_t {
  IntraProc,  ///< keyword `intra_proc`
  InterProc,  ///< keyword `inter_proc`
  InterNode,  ///< keyword `inter_node` (cluster-of-CMPs tier)
};

/// How the body of a STAMP process executes.
enum class ExecMode : std::uint8_t {
  Transactional,  ///< keyword `trans_exec`: optimistic/atomic, may roll back
  Asynchronous,   ///< keyword `async_exec`: unrestricted progress
};

/// How communication operations behave.
enum class CommMode : std::uint8_t {
  Synchronous,   ///< keyword `synch_comm`: serialized shared-memory access or
                 ///  blocking message passing
  Asynchronous,  ///< keyword `async_comm`: unrestricted; designer supplies
                 ///  explicit synchronization where needed
};

/// Which communication substrate a process (or an individual S-round) uses.
/// The cost model charges shared-memory and message-passing terms separately
/// (the Knuth–Iverson brackets in the T_S-round formula).
enum class CommSubstrate : std::uint8_t {
  None,          ///< purely local S-round
  SharedMemory,  ///< reads/writes of shared memory
  MessagePassing,///< explicit sends/receives
  Both,          ///< uses both in one S-round
};

/// Full attribute triple attached to a STAMP process.
struct Attributes {
  Distribution distribution = Distribution::IntraProc;
  ExecMode exec = ExecMode::Asynchronous;
  CommMode comm = CommMode::Synchronous;

  friend constexpr bool operator==(const Attributes&, const Attributes&) = default;
};

/// One cell of the paper's Table 1: a legal (execution, communication) pair.
struct ModeCombination {
  ExecMode exec;
  CommMode comm;
  std::string_view exec_keyword;  ///< e.g. "trans_exec"
  std::string_view comm_keyword;  ///< e.g. "synch_comm"

  friend constexpr bool operator==(const ModeCombination&,
                                   const ModeCombination&) = default;
};

/// The four combinations of Table 1, in row-major order of the paper's table
/// (synchronous-comm row first, transactional-exec column first).
[[nodiscard]] const std::array<ModeCombination, 4>& table1_combinations() noexcept;

/// Keyword spellings used throughout the paper (and our pretty-printers).
[[nodiscard]] std::string_view keyword(Distribution d) noexcept;
[[nodiscard]] std::string_view keyword(ExecMode e) noexcept;
[[nodiscard]] std::string_view keyword(CommMode c) noexcept;
[[nodiscard]] std::string_view to_string(CommSubstrate s) noexcept;

std::ostream& operator<<(std::ostream& os, Distribution d);
std::ostream& operator<<(std::ostream& os, ExecMode e);
std::ostream& operator<<(std::ostream& os, CommMode c);
std::ostream& operator<<(std::ostream& os, CommSubstrate s);
std::ostream& operator<<(std::ostream& os, const Attributes& a);

}  // namespace stamp
