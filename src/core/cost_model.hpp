#pragma once
/// \file cost_model.hpp
/// \brief The STAMP execution-time / energy / power complexity formulas
///        (Section 3.1 of the paper).
///
/// The model assumes one local operation on locally-available data takes one
/// time unit. For each S-round it charges local computation plus, when the
/// round communicates, latency, serialization (kappa) and bandwidth terms;
/// energy is the gated per-operation sum. S-units sum their rounds; a STAMP
/// process sums its S-units; parallel/distributed compositions take the
/// worst-case time and the total energy.

#include "core/counters.hpp"
#include "core/params.hpp"

#include <iosfwd>
#include <span>
#include <vector>

namespace stamp {

/// The process-count context in which an S-round executes: how many STAMP
/// processes are placed intra-processor (P_a) and inter-processor (P_e).
/// These drive the Knuth–Iverson latency brackets `[P_a >= 1]` / `[P_e >= 1]`.
struct ProcessCounts {
  int intra = 0;  ///< P_a: number of intra-processor STAMP processes
  int inter = 0;  ///< P_e: number of inter-processor STAMP processes
  int node = 0;   ///< P_n: number of processes placed on *other* nodes
                  ///  (cluster-of-CMPs tier; 0 = single-node, the paper's case)

  friend bool operator==(const ProcessCounts&, const ProcessCounts&) = default;
};

/// A (time, energy) pair in model units. Power is derived, never stored, so
/// the aggregation rules (sum of energies / max or sum of times) stay exact.
struct Cost {
  double time = 0;    ///< execution time T, in unit local operations
  double energy = 0;  ///< energy E, in energy units

  /// Dissipated power P = E / T; zero-time cost has zero power by convention.
  [[nodiscard]] double power() const noexcept {
    return time > 0 ? energy / time : 0.0;
  }

  Cost& operator+=(const Cost& o) noexcept {
    time += o.time;
    energy += o.energy;
    return *this;
  }
  [[nodiscard]] friend Cost operator+(Cost a, const Cost& b) noexcept {
    a += b;
    return a;
  }
  [[nodiscard]] Cost scaled(double k) const noexcept { return {time * k, energy * k}; }

  friend bool operator==(const Cost&, const Cost&) = default;
};

std::ostream& operator<<(std::ostream& os, const Cost& c);

/// T_S-round: the paper's Equation (1).
///
///   T = c + [shm]( kappa + [P_e>=1] ell_e + [P_a>=1] ell_a
///                  + g_sh_a (d_r_a + d_w_a) + g_sh_e (d_r_e + d_w_e) )
///       + [mp]( [P_e>=1] L_e + [P_a>=1] L_a
///               + g_mp_a (m_s_a + m_r_a) + g_mp_e (m_s_e + m_r_e) )
///       + [net]( [P_n>=1] L_net + g_net (m_s_n + m_r_n) )
///
/// The substrate brackets [shm] / [mp] / [net] are inferred from the counters:
/// a round with no shared-memory accesses pays no shared-memory latency, and
/// likewise for message passing and the inter-node network tier (the cluster
/// extension of arXiv:0810.2150 — zero node-tier counters reproduce the
/// paper's single-node formula exactly).
[[nodiscard]] double s_round_time(const CostCounters& c, const MachineParams& mp,
                                  const ProcessCounts& pc) noexcept;

/// E_S-round: the paper's Equation (2) — per-operation gated energy.
///
///   E = c_fp w_fp + c_int w_int + w_d_r (d_r_a + d_r_e) + w_d_w (d_w_a + d_w_e)
///       + w_m_r (m_r_a + m_r_e + m_r_n) + w_m_s (m_s_a + m_s_e + m_s_n)
///       + w_net (m_s_n + m_r_n)
///
/// Inter-node messages are still sends/receives (they pay w_m_s / w_m_r like
/// any other) plus the NIC/link premium w_net per operation.
[[nodiscard]] double s_round_energy(const CostCounters& c,
                                    const EnergyParams& ep) noexcept;

/// Both at once.
[[nodiscard]] Cost s_round_cost(const CostCounters& c, const MachineParams& mp,
                                const EnergyParams& ep,
                                const ProcessCounts& pc) noexcept;

/// Cost of local computation outside S-rounds: T_c = c_fp + c_int,
/// E_c = c_fp w_fp + c_int w_int. Communication counters must be zero.
[[nodiscard]] Cost local_cost(const CostCounters& c, const EnergyParams& ep);

/// Sequential composition (an S-unit over its S-rounds, a STAMP process over
/// its S-units): times and energies both add.
[[nodiscard]] Cost sequential(std::span<const Cost> parts) noexcept;

/// Parallel/distributed composition: T = max over parts (worst case),
/// E = sum over parts. (Rule 5 of Section 3.1.)
[[nodiscard]] Cost parallel(std::span<const Cost> parts) noexcept;

/// Convenience overloads.
[[nodiscard]] Cost sequential(std::initializer_list<Cost> parts) noexcept;
[[nodiscard]] Cost parallel(std::initializer_list<Cost> parts) noexcept;

}  // namespace stamp
