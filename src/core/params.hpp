#pragma once
/// \file params.hpp
/// \brief Machine, energy, and topology parameters of the STAMP model, with
///        validated construction and presets for representative platforms.
///
/// These are the symbolic parameters of Section 3.1 of the paper. Time-like
/// parameters are in *unit local operations* (the paper assumes one local
/// operation on local data takes one time unit); energy parameters are in an
/// arbitrary energy unit (conventionally multiples of w_int).

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace stamp {

/// Thrown when a parameter set fails validation.
class ParamError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Latency/bandwidth parameters of the target machine.
///
/// Bandwidth factors g follow the paper's (BSP-inherited) convention: the
/// ratio of local operations performed per time unit to communication
/// operations delivered per time unit — so the *time* charged for k
/// communication operations is `g * k`. Larger g = slower communication.
struct MachineParams {
  // -- shared-memory access --------------------------------------------------
  double ell_a = 2;     ///< latency bound, intra-processor shm access (ℓ_a)
  double ell_e = 20;    ///< latency bound, inter-processor shm access (ℓ_e)
  double g_sh_a = 0.5;  ///< bandwidth factor, intra-processor shm (g_sh_a)
  double g_sh_e = 4;    ///< bandwidth factor, inter-processor shm (g_sh_e)

  // -- message passing ---------------------------------------------------------
  double L_a = 5;       ///< message delay bound, intra-processor (L_a)
  double L_e = 50;      ///< message delay bound, inter-processor (L_e)
  double g_mp_a = 1;    ///< bandwidth factor, intra-processor messages (g_mp_a)
  double g_mp_e = 8;    ///< bandwidth factor, inter-processor messages (g_mp_e)

  // -- inter-node network (cluster-of-CMPs third layer) ------------------------
  // Extends the paper's two on-chip tiers with the cluster tier of
  // arXiv:0810.2150: messages that leave the node pay the network delay
  // bound L_net and the network bandwidth factor g_net. Both default to
  // "slower than anything on-chip" and are only ever charged when a round's
  // node-tier message counters are nonzero, so single-node results are
  // unchanged by their presence.
  double L_net = 400;   ///< message delay bound, inter-node (L_net)
  double g_net = 32;    ///< bandwidth factor, inter-node messages (g_net)

  /// Validate invariants: all values nonnegative; intra must not be slower
  /// than inter for the same kind (the premise of the distribution trade-off:
  /// "intra-processor communication is faster than inter-processor"), and
  /// the node boundary must not be faster than the chip boundary.
  void validate() const;

  friend bool operator==(const MachineParams&, const MachineParams&) = default;
};

/// Per-operation dynamic energy parameters (functional units are assumed
/// perfectly clock-gated when idle — the paper's first-order model).
struct EnergyParams {
  double w_fp = 4;   ///< energy per floating-point operation (w_fp)
  double w_int = 1;  ///< energy per integer operation (w_int)
  double w_d_r = 2;  ///< energy per shared-memory read (w_{d_r})
  double w_d_w = 2;  ///< energy per shared-memory write (w_{d_w})
  double w_m_s = 6;  ///< energy per message send (w_{m_s})
  double w_m_r = 6;  ///< energy per message receive (w_{m_r})
  /// Extra energy per inter-node message operation (NIC/link premium, on top
  /// of the w_m_s/w_m_r already charged for the send/receive itself).
  double w_net = 24;

  /// Validate: all strictly positive.
  void validate() const;

  friend bool operator==(const EnergyParams&, const EnergyParams&) = default;
};

/// Logical CMP/CMT topology: chips x processors x hardware threads.
/// Figure 1 of the paper (Sun Niagara) is `{1, 8, 4}`.
struct Topology {
  int nodes = 1;  ///< machines in the cluster (1 = the paper's single node)
  int chips = 1;
  int processors_per_chip = 8;  ///< cores per chip
  int threads_per_processor = 4;  ///< hardware threads per core (CMT)

  [[nodiscard]] int total_processors() const noexcept {
    return nodes * chips * processors_per_chip;
  }
  [[nodiscard]] int total_threads() const noexcept {
    return total_processors() * threads_per_processor;
  }

  void validate() const;

  friend bool operator==(const Topology&, const Topology&) = default;
};

/// Power caps at each level of the hierarchy, in the same unit as
/// EnergyParams-per-time-unit. A cap of 0 means "unconstrained".
struct PowerEnvelope {
  double per_processor = 0;  ///< max sustained power per core
  double per_chip = 0;       ///< max sustained power per chip
  double system = 0;         ///< max sustained power over everything

  void validate() const;

  friend bool operator==(const PowerEnvelope&, const PowerEnvelope&) = default;
};

/// A complete machine description: one object to pass around.
struct MachineModel {
  std::string name = "generic";
  Topology topology{};
  MachineParams params{};
  EnergyParams energy{};
  PowerEnvelope envelope{};

  void validate() const;

  friend bool operator==(const MachineModel&, const MachineModel&) = default;
};

std::ostream& operator<<(std::ostream& os, const Topology& t);
std::ostream& operator<<(std::ostream& os, const MachineParams& p);
std::ostream& operator<<(std::ostream& os, const EnergyParams& e);
std::ostream& operator<<(std::ostream& os, const PowerEnvelope& e);
std::ostream& operator<<(std::ostream& os, const MachineModel& m);

/// Machine presets. All are *model inputs*, not measurements: they pick
/// plausible relative magnitudes for the symbolic parameters.
namespace presets {

/// Sun Niagara-like chip of Figure 1: 8 simple cores x 4 threads, shared L2,
/// crossbar; modest per-core power envelope (the chip was designed for
/// throughput-per-watt).
[[nodiscard]] MachineModel niagara();

/// Generic desktop CMP: 4 cores x 2 threads, deeper cache hierarchy
/// (larger inter/intra latency gap), generous power envelope.
[[nodiscard]] MachineModel desktop();

/// Embedded/energy-limited device: 2 cores x 1 thread, tight envelope,
/// expensive communication energy.
[[nodiscard]] MachineModel embedded();

/// Multi-chip server: 4 chips x 8 cores x 4 threads, large inter-processor
/// latencies, effectively unconstrained power.
[[nodiscard]] MachineModel server();

}  // namespace presets
}  // namespace stamp
