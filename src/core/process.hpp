#pragma once
/// \file process.hpp
/// \brief Structural model of STAMP programs: S-rounds, S-units, STAMP
///        processes, and parallel / nested compositions, with cost evaluation.
///
/// The structure mirrors Section 3 of the paper:
///   * An **S-round** is receive/read -> local compute -> send/write; its cost
///     is the closed-form of Section 3.1.
///   * An **S-unit** is a minimal sequential process: a collection of S-rounds
///     plus local computation outside the rounds. Costs add.
///   * A **STAMP process** is a sequence of S-units (e.g. loop iterations).
///     Costs add.
///   * **Parallel/distributed STAMPs** compose by worst-case time and total
///     energy.
///   * **Nested STAMPs** are expressed with `CostExpr`, a general composition
///     tree, since rule 4 of the paper says nested cost is estimated per
///     problem/algorithm class.

#include "core/attributes.hpp"
#include "core/cost_model.hpp"

#include <memory>
#include <string>
#include <vector>

namespace stamp {

/// One S-round: a counters record plus cost evaluation.
class SRound {
 public:
  SRound() = default;
  explicit SRound(CostCounters counters) : counters_(counters) {}

  [[nodiscard]] const CostCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] CostCounters& counters() noexcept { return counters_; }

  [[nodiscard]] Cost cost(const MachineParams& mp, const EnergyParams& ep,
                          const ProcessCounts& pc) const noexcept {
    return s_round_cost(counters_, mp, ep, pc);
  }

 private:
  CostCounters counters_{};
};

/// One S-unit: rounds + local computation outside the rounds.
class SUnit {
 public:
  SUnit() = default;

  /// Appends an S-round; returns *this for chaining.
  SUnit& add_round(SRound round);
  SUnit& add_round(const CostCounters& counters) { return add_round(SRound(counters)); }

  /// Adds local computation outside any round (e.g. loop-condition checks).
  SUnit& add_local(double fp, double integer);

  [[nodiscard]] const std::vector<SRound>& rounds() const noexcept { return rounds_; }
  [[nodiscard]] const CostCounters& outside() const noexcept { return outside_; }

  /// Aggregate counters of the whole unit (rounds + outside work).
  [[nodiscard]] CostCounters total_counters() const noexcept;

  /// T_S-unit = sum of round times + T_c; E_S-unit likewise.
  [[nodiscard]] Cost cost(const MachineParams& mp, const EnergyParams& ep,
                          const ProcessCounts& pc) const noexcept;

 private:
  std::vector<SRound> rounds_;
  CostCounters outside_{};  // local-only; communication fields stay zero
};

/// A STAMP process: an attributed sequence of S-units.
class StampProcess {
 public:
  StampProcess() = default;
  explicit StampProcess(Attributes attrs, std::string name = {})
      : attrs_(attrs), name_(std::move(name)) {}

  StampProcess& add_unit(SUnit unit);

  /// Appends `repetitions` copies of `unit` (a loop of identical iterations)
  /// without storing each copy.
  StampProcess& add_repeated(SUnit unit, std::size_t repetitions);

  [[nodiscard]] const Attributes& attributes() const noexcept { return attrs_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t unit_count() const noexcept;

  /// T = sum over S-units, E = sum over S-units (rule 3).
  [[nodiscard]] Cost cost(const MachineParams& mp, const EnergyParams& ep,
                          const ProcessCounts& pc) const noexcept;

  [[nodiscard]] CostCounters total_counters() const noexcept;

 private:
  struct RepeatedUnit {
    SUnit unit;
    std::size_t repetitions = 1;
  };
  Attributes attrs_{};
  std::string name_;
  std::vector<RepeatedUnit> units_;
};

/// Parallel/distributed composition of STAMP processes.
/// T = max over processes; E = sum over processes (rule 5).
[[nodiscard]] Cost parallel_cost(std::span<const StampProcess> processes,
                                 const MachineParams& mp, const EnergyParams& ep,
                                 const ProcessCounts& pc) noexcept;

// ---------------------------------------------------------------------------
// CostExpr: general composition tree for nested STAMPs.
// ---------------------------------------------------------------------------

/// A composition tree over costs: leaves are S-units (or opaque pre-computed
/// costs), inner nodes compose sequentially, in parallel, or by repetition.
/// This is how "nested STAMPs" (rule 4) are estimated once the problem class
/// fixes the structure.
class CostExpr {
 public:
  /// Leaf carrying explicit counters charged as one S-round.
  [[nodiscard]] static CostExpr round(CostCounters counters);
  /// Leaf carrying local-only work.
  [[nodiscard]] static CostExpr local(double fp, double integer);
  /// Leaf carrying an already-evaluated cost (e.g. from a measurement).
  [[nodiscard]] static CostExpr fixed(Cost cost);
  /// Sequential composition: times and energies add.
  [[nodiscard]] static CostExpr seq(std::vector<CostExpr> children);
  /// Parallel composition: max time, total energy.
  [[nodiscard]] static CostExpr par(std::vector<CostExpr> children);
  /// `body` repeated `n` times sequentially.
  [[nodiscard]] static CostExpr repeat(CostExpr body, std::size_t n);

  [[nodiscard]] Cost evaluate(const MachineParams& mp, const EnergyParams& ep,
                              const ProcessCounts& pc) const;

  /// Number of leaves in the tree (repeat counts once).
  [[nodiscard]] std::size_t leaf_count() const noexcept;
  /// Height of the tree (a leaf has height 1).
  [[nodiscard]] std::size_t height() const noexcept;

 private:
  enum class Kind { Round, Fixed, Seq, Par, Repeat };

  CostExpr() = default;

  Kind kind_ = Kind::Round;
  CostCounters counters_{};                // Round
  Cost fixed_{};                           // Fixed
  std::vector<CostExpr> children_;         // Seq / Par / Repeat (1 child)
  std::size_t repetitions_ = 1;            // Repeat
};

}  // namespace stamp
