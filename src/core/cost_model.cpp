#include "core/cost_model.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace stamp {

std::ostream& operator<<(std::ostream& os, const Cost& c) {
  return os << "{T=" << c.time << " E=" << c.energy << " P=" << c.power() << '}';
}

double s_round_time(const CostCounters& c, const MachineParams& mp,
                    const ProcessCounts& pc) noexcept {
  double t = c.local_ops();
  if (c.uses_shared_memory()) {
    t += c.kappa;
    if (pc.inter >= 1) t += mp.ell_e;
    if (pc.intra >= 1) t += mp.ell_a;
    t += mp.g_sh_a * (c.d_r_a + c.d_w_a);
    t += mp.g_sh_e * (c.d_r_e + c.d_w_e);
  }
  if (c.uses_message_passing()) {
    if (pc.inter >= 1) t += mp.L_e;
    if (pc.intra >= 1) t += mp.L_a;
    t += mp.g_mp_a * (c.m_s_a + c.m_r_a);
    t += mp.g_mp_e * (c.m_s_e + c.m_r_e);
  }
  if (c.uses_network()) {
    if (pc.node >= 1) t += mp.L_net;
    t += mp.g_net * (c.m_s_n + c.m_r_n);
  }
  return t;
}

double s_round_energy(const CostCounters& c, const EnergyParams& ep) noexcept {
  return c.c_fp * ep.w_fp + c.c_int * ep.w_int +
         ep.w_d_r * (c.d_r_a + c.d_r_e) + ep.w_d_w * (c.d_w_a + c.d_w_e) +
         ep.w_m_r * (c.m_r_a + c.m_r_e + c.m_r_n) +
         ep.w_m_s * (c.m_s_a + c.m_s_e + c.m_s_n) +
         ep.w_net * (c.m_s_n + c.m_r_n);
}

Cost s_round_cost(const CostCounters& c, const MachineParams& mp,
                  const EnergyParams& ep, const ProcessCounts& pc) noexcept {
  return {s_round_time(c, mp, pc), s_round_energy(c, ep)};
}

Cost local_cost(const CostCounters& c, const EnergyParams& ep) {
  if (c.uses_shared_memory() || c.uses_message_passing())
    throw std::invalid_argument(
        "local_cost: counters contain communication operations");
  return {c.local_ops(), c.c_fp * ep.w_fp + c.c_int * ep.w_int};
}

Cost sequential(std::span<const Cost> parts) noexcept {
  Cost total;
  for (const Cost& p : parts) total += p;
  return total;
}

Cost parallel(std::span<const Cost> parts) noexcept {
  Cost total;
  for (const Cost& p : parts) {
    total.time = std::max(total.time, p.time);
    total.energy += p.energy;
  }
  return total;
}

Cost sequential(std::initializer_list<Cost> parts) noexcept {
  return sequential(std::span<const Cost>(parts.begin(), parts.size()));
}

Cost parallel(std::initializer_list<Cost> parts) noexcept {
  return parallel(std::span<const Cost>(parts.begin(), parts.size()));
}

}  // namespace stamp
