#pragma once
/// \file compat.hpp
/// \brief Deprecation markers for pre-`stamp::Evaluator` entry points.
///
/// Superseded entry points stay available as thin shims so downstream code
/// keeps compiling, but carry a `STAMP_DEPRECATED` note pointing at the
/// facade replacement. The attribute is opt-in (define `STAMP_WARN_DEPRECATED`
/// or configure with `-DSTAMP_WARN_DEPRECATED=ON`) so the in-tree substrates
/// and tests, which still exercise the old surface directly, build quietly by
/// default.

#if defined(STAMP_WARN_DEPRECATED)
#define STAMP_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define STAMP_DEPRECATED(msg)
#endif
