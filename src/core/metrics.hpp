#pragma once
/// \file metrics.hpp
/// \brief The four classical performance/power selection metrics of
///        Section 2.1: D, PDP, EDP, and ED²P, plus objective-driven selection.
///
/// Algorithms should be selected according to one of these metrics depending
/// on deployment environment: energy-limited devices care about PDP (= E),
/// workstations about EDP, servers/supercomputers about ED²P or raw D.

#include "core/cost_model.hpp"

#include <iosfwd>
#include <span>
#include <string_view>

namespace stamp {

/// All four metrics computed from one (time, energy) pair.
struct Metrics {
  double D = 0;     ///< delay (execution time)
  double PDP = 0;   ///< power-delay product = E
  double EDP = 0;   ///< energy-delay product = E * D
  double ED2P = 0;  ///< energy-delay-squared product = E * D^2

  friend bool operator==(const Metrics&, const Metrics&) = default;
};

/// Which metric an algorithm-selection decision optimizes.
enum class Objective : int { D = 0, PDP = 1, EDP = 2, ED2P = 3 };

[[nodiscard]] std::string_view to_string(Objective o) noexcept;
std::ostream& operator<<(std::ostream& os, Objective o);
std::ostream& operator<<(std::ostream& os, const Metrics& m);

/// Compute all four metrics from a cost. (PDP = P*D = (E/D)*D = E.)
[[nodiscard]] Metrics metrics_from(const Cost& c) noexcept;

/// Extract one metric value.
[[nodiscard]] double metric_value(const Metrics& m, Objective o) noexcept;
[[nodiscard]] double metric_value(const Cost& c, Objective o) noexcept;

/// Index of the candidate minimizing the objective; ties resolve to the first.
/// Returns -1 for an empty span.
[[nodiscard]] int select_best(std::span<const Cost> candidates, Objective o) noexcept;

}  // namespace stamp
