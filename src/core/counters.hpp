#pragma once
/// \file counters.hpp
/// \brief Operation counters — the per-S-round inputs of the STAMP cost model.
///
/// The complexity formulas of Section 3.1 of the paper take, for each S-round,
/// the *numbers* of local floating-point and integer operations, shared-memory
/// reads/writes, and message sends/receives, split by intra- vs
/// inter-processor communication, plus the serialization/rollback bound kappa.
/// `CostCounters` carries exactly those quantities. Instances are produced
/// either analytically (by a closed-form analysis) or empirically (by the
/// instrumented runtime), and are consumed by `cost_model.hpp`.

#include <cstdint>
#include <iosfwd>

namespace stamp {

/// Counts of the operations the cost model charges for one S-round (or, by
/// summation, a whole S-unit or process). Values are doubles so analytic
/// expressions (e.g. `2n - 1`) and averages over repetitions are exact.
struct CostCounters {
  // -- local computation ----------------------------------------------------
  double c_fp = 0;   ///< floating-point operations (c_fp)
  double c_int = 0;  ///< integer operations (c_int)

  // -- shared-memory communication ------------------------------------------
  double d_r_a = 0;  ///< intra-processor shared-memory reads (d_{r,a})
  double d_w_a = 0;  ///< intra-processor shared-memory writes (d_{w,a})
  double d_r_e = 0;  ///< inter-processor shared-memory reads (d_{r,e})
  double d_w_e = 0;  ///< inter-processor shared-memory writes (d_{w,e})

  // -- message-passing communication -----------------------------------------
  double m_s_a = 0;  ///< intra-processor message sends (m_{s,a})
  double m_r_a = 0;  ///< intra-processor message receives (m_{r,a})
  double m_s_e = 0;  ///< inter-processor message sends (m_{s,e})
  double m_r_e = 0;  ///< inter-processor message receives (m_{r,e})
  double m_s_n = 0;  ///< inter-node message sends (m_{s,n}, cluster tier)
  double m_r_n = 0;  ///< inter-node message receives (m_{r,n}, cluster tier)

  // -- serialization / rollback ----------------------------------------------
  /// kappa: maximum number of accesses to any one shared-memory location — in
  /// the worst case the length of serialization, or the number of rollbacks a
  /// transactional execution suffered.
  double kappa = 0;

  /// Total local operations `c = c_fp + c_int` (the paper's parameter c, in
  /// unit-time local operations).
  [[nodiscard]] double local_ops() const noexcept { return c_fp + c_int; }

  /// Total shared-memory accesses, both distributions.
  [[nodiscard]] double shm_accesses() const noexcept {
    return d_r_a + d_w_a + d_r_e + d_w_e;
  }

  /// Total message operations, all three distributions.
  [[nodiscard]] double msg_ops() const noexcept {
    return m_s_a + m_r_a + m_s_e + m_r_e + m_s_n + m_r_n;
  }

  /// Total inter-node (cluster-tier) message operations.
  [[nodiscard]] double net_ops() const noexcept { return m_s_n + m_r_n; }

  /// True iff this round sends messages across the node boundary (drives the
  /// bracket [inter-node comm] of the cluster extension).
  [[nodiscard]] bool uses_network() const noexcept { return net_ops() > 0; }

  /// True iff this round touches shared memory at all (drives the
  /// Knuth–Iverson bracket [shared memory comm]).
  [[nodiscard]] bool uses_shared_memory() const noexcept {
    return shm_accesses() > 0;
  }

  /// True iff this round performs message passing at all (drives the bracket
  /// [message passing comm]).
  [[nodiscard]] bool uses_message_passing() const noexcept {
    return msg_ops() > 0;
  }

  /// Component-wise sum; kappa combines by max (it is a per-location bound,
  /// not an additive count — summing S-rounds keeps the worst round's bound).
  CostCounters& operator+=(const CostCounters& o) noexcept;
  [[nodiscard]] friend CostCounters operator+(CostCounters a,
                                              const CostCounters& b) noexcept {
    a += b;
    return a;
  }

  /// Component-wise scaling of all additive counters (kappa unchanged);
  /// used when an S-round repeats k identical times.
  [[nodiscard]] CostCounters scaled(double k) const noexcept;

  /// Component-wise maximum (including kappa).
  [[nodiscard]] static CostCounters max(const CostCounters& a,
                                        const CostCounters& b) noexcept;

  friend bool operator==(const CostCounters&, const CostCounters&) = default;
};

std::ostream& operator<<(std::ostream& os, const CostCounters& c);

/// Convenience builders for the common shapes.
namespace counters {

/// Purely local work.
[[nodiscard]] CostCounters local(double fp, double integer) noexcept;

/// Shared-memory round: `reads`/`writes` split by distribution.
[[nodiscard]] CostCounters shared_memory(double reads_a, double writes_a,
                                         double reads_e, double writes_e,
                                         double kappa = 0) noexcept;

/// Message-passing round: `sends`/`receives` split by distribution.
[[nodiscard]] CostCounters message_passing(double sends_a, double recvs_a,
                                           double sends_e, double recvs_e) noexcept;

/// Inter-node round: `sends`/`receives` that cross the node boundary
/// (cluster-of-CMPs tier; charged L_net/g_net/w_net by the cost model).
[[nodiscard]] CostCounters inter_node(double sends_n, double recvs_n) noexcept;

}  // namespace counters
}  // namespace stamp
