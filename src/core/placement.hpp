#pragma once
/// \file placement.hpp
/// \brief Thread-placement optimization under power envelopes — the
///        "systematic way of optimizing the overall performance ... based on
///        the complexity estimates" the paper names as the model's purpose.
///
/// The distribution attribute trades time against power: co-locating STAMP
/// processes on one processor makes their mutual communication intra-processor
/// (cheap in time) but stacks their power against the per-processor cap;
/// spreading them makes communication inter-processor (expensive in time) but
/// spreads power over many envelopes.
///
/// We model a process by *distribution-agnostic* per-S-unit counters: total
/// shared-memory reads/writes and message sends/receives, without committing
/// them to the `_a` or `_e` columns. Under a concrete placement, assuming a
/// uniform communication pattern among the N processes, the fraction of a
/// process's communication that is intra-processor equals the fraction of its
/// peers co-located with it; the counters split accordingly and the standard
/// cost formulas apply.

#include "core/compat.hpp"
#include "core/cost_model.hpp"
#include "core/envelope.hpp"
#include "core/metrics.hpp"

#include <span>
#include <string>
#include <vector>

namespace stamp {

/// Distribution-agnostic communication profile of one STAMP process.
struct ProcessProfile {
  double c_fp = 0;    ///< local fp ops per S-unit
  double c_int = 0;   ///< local int ops per S-unit
  double d_r = 0;     ///< shared-memory reads per S-unit (total, both dists)
  double d_w = 0;     ///< shared-memory writes per S-unit
  double m_s = 0;     ///< message sends per S-unit
  double m_r = 0;     ///< message receives per S-unit
  double kappa = 0;   ///< serialization/rollback bound per S-unit
  double units = 1;   ///< number of S-units the process executes

  /// Split the agnostic counters into intra/inter columns given the fraction
  /// of this process's communication that is intra-processor.
  [[nodiscard]] CostCounters split(double intra_fraction) const noexcept;
};

/// A concrete placement: processor id per process, processors numbered
/// chip-major over the machine topology.
struct Placement {
  std::vector<int> processor_of;

  [[nodiscard]] int group_size(int processor) const noexcept;
  [[nodiscard]] int processors_used() const noexcept;
};

/// Full evaluation of a placement: per-process costs, the parallel
/// composition, the chosen objective value, and envelope feasibility.
struct PlacementEvaluation {
  Placement placement;
  std::vector<Cost> process_costs;
  Cost total;            ///< parallel composition: max time, total energy
  double objective = 0;  ///< metric_value(total, objective)
  SystemCheck envelope;  ///< hierarchical power feasibility
  bool feasible = false;
};

/// Per-process cost when the process sits in a group of `group_size` out of
/// `total` processes under the uniform communication pattern assumption: the
/// intra fraction is (group_size - 1) / (total - 1), the counters split
/// accordingly, and the closed forms price one S-round scaled by the
/// profile's units. This is the kernel every placement evaluation reduces
/// to; the sweep's batch evaluator calls it directly to price uniform
/// placements without materializing per-process profile vectors.
[[nodiscard]] Cost process_cost_in_group(const ProcessProfile& prof,
                                         int group_size, int total,
                                         const MachineModel& machine) noexcept;

/// Evaluate `placement` of `profiles` on `machine` under `objective`.
/// Each process's intra fraction is (co-located peers)/(all peers).
[[nodiscard]] PlacementEvaluation evaluate_placement(
    std::span<const ProcessProfile> profiles, const Placement& placement,
    const MachineModel& machine, Objective objective);

/// Placement strategies. All return an evaluated placement; `feasible` is
/// false when no power-feasible assignment was found (the returned placement
/// is then the least-violating one examined).
struct PlacementResult {
  PlacementEvaluation eval;
  std::string strategy;
  long long placements_examined = 0;
};

/// Baseline: pack processes onto processor 0, 1, ... filling each to its
/// hardware thread count regardless of power.
[[nodiscard]] PlacementResult place_fill_first(
    std::span<const ProcessProfile> profiles, const MachineModel& machine,
    Objective objective);

/// Baseline: deal processes round-robin over all processors.
[[nodiscard]] PlacementResult place_round_robin(
    std::span<const ProcessProfile> profiles, const MachineModel& machine,
    Objective objective);

/// Greedy power-aware packing: fill processors with as many processes as the
/// per-processor envelope admits (re-evaluating power as co-location changes
/// communication costs), then spill to the next processor.
[[nodiscard]] PlacementResult place_greedy(
    std::span<const ProcessProfile> profiles, const MachineModel& machine,
    Objective objective);

/// Exact search over group-size compositions (valid when all profiles are
/// identical, which makes placements exchangeable). Throws ParamError for
/// heterogeneous profiles or more than `max_processes` (default 64) processes.
[[nodiscard]] PlacementResult place_exact_uniform(
    std::span<const ProcessProfile> profiles, const MachineModel& machine,
    Objective objective, int max_processes = 64);

/// Convenience: best of {fill-first, round-robin, greedy, exact-if-uniform}.
/// \deprecated Scheduled for removal once the last in-tree caller migrates;
/// new code must go through the facade.
STAMP_DEPRECATED(
    "use stamp::Evaluator::best_placement (api/stamp.hpp); place_best will "
    "be removed in a future release")
[[nodiscard]] PlacementResult place_best(std::span<const ProcessProfile> profiles,
                                         const MachineModel& machine,
                                         Objective objective);

}  // namespace stamp
