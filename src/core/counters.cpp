#include "core/counters.hpp"

#include <algorithm>
#include <ostream>

namespace stamp {

CostCounters& CostCounters::operator+=(const CostCounters& o) noexcept {
  c_fp += o.c_fp;
  c_int += o.c_int;
  d_r_a += o.d_r_a;
  d_w_a += o.d_w_a;
  d_r_e += o.d_r_e;
  d_w_e += o.d_w_e;
  m_s_a += o.m_s_a;
  m_r_a += o.m_r_a;
  m_s_e += o.m_s_e;
  m_r_e += o.m_r_e;
  m_s_n += o.m_s_n;
  m_r_n += o.m_r_n;
  kappa = std::max(kappa, o.kappa);
  return *this;
}

CostCounters CostCounters::scaled(double k) const noexcept {
  CostCounters r = *this;
  r.c_fp *= k;
  r.c_int *= k;
  r.d_r_a *= k;
  r.d_w_a *= k;
  r.d_r_e *= k;
  r.d_w_e *= k;
  r.m_s_a *= k;
  r.m_r_a *= k;
  r.m_s_e *= k;
  r.m_r_e *= k;
  r.m_s_n *= k;
  r.m_r_n *= k;
  return r;
}

CostCounters CostCounters::max(const CostCounters& a,
                               const CostCounters& b) noexcept {
  CostCounters r;
  r.c_fp = std::max(a.c_fp, b.c_fp);
  r.c_int = std::max(a.c_int, b.c_int);
  r.d_r_a = std::max(a.d_r_a, b.d_r_a);
  r.d_w_a = std::max(a.d_w_a, b.d_w_a);
  r.d_r_e = std::max(a.d_r_e, b.d_r_e);
  r.d_w_e = std::max(a.d_w_e, b.d_w_e);
  r.m_s_a = std::max(a.m_s_a, b.m_s_a);
  r.m_r_a = std::max(a.m_r_a, b.m_r_a);
  r.m_s_e = std::max(a.m_s_e, b.m_s_e);
  r.m_r_e = std::max(a.m_r_e, b.m_r_e);
  r.m_s_n = std::max(a.m_s_n, b.m_s_n);
  r.m_r_n = std::max(a.m_r_n, b.m_r_n);
  r.kappa = std::max(a.kappa, b.kappa);
  return r;
}

std::ostream& operator<<(std::ostream& os, const CostCounters& c) {
  os << "{c_fp=" << c.c_fp << " c_int=" << c.c_int;
  if (c.uses_shared_memory()) {
    os << " d_r_a=" << c.d_r_a << " d_w_a=" << c.d_w_a << " d_r_e=" << c.d_r_e
       << " d_w_e=" << c.d_w_e;
  }
  if (c.uses_message_passing()) {
    os << " m_s_a=" << c.m_s_a << " m_r_a=" << c.m_r_a << " m_s_e=" << c.m_s_e
       << " m_r_e=" << c.m_r_e;
  }
  if (c.uses_network()) os << " m_s_n=" << c.m_s_n << " m_r_n=" << c.m_r_n;
  if (c.kappa > 0) os << " kappa=" << c.kappa;
  return os << '}';
}

namespace counters {

CostCounters local(double fp, double integer) noexcept {
  CostCounters c;
  c.c_fp = fp;
  c.c_int = integer;
  return c;
}

CostCounters shared_memory(double reads_a, double writes_a, double reads_e,
                           double writes_e, double kappa) noexcept {
  CostCounters c;
  c.d_r_a = reads_a;
  c.d_w_a = writes_a;
  c.d_r_e = reads_e;
  c.d_w_e = writes_e;
  c.kappa = kappa;
  return c;
}

CostCounters message_passing(double sends_a, double recvs_a, double sends_e,
                             double recvs_e) noexcept {
  CostCounters c;
  c.m_s_a = sends_a;
  c.m_r_a = recvs_a;
  c.m_s_e = sends_e;
  c.m_r_e = recvs_e;
  return c;
}

CostCounters inter_node(double sends_n, double recvs_n) noexcept {
  CostCounters c;
  c.m_s_n = sends_n;
  c.m_r_n = recvs_n;
  return c;
}

}  // namespace counters
}  // namespace stamp
