#pragma once
/// \file crossover.hpp
/// \brief Crossover analysis: find where one algorithm/configuration starts
///        beating another as a parameter grows.
///
/// The model's purpose is comparative ("algorithmic approaches can be quickly
/// compared"); comparisons flip at crossover points — problem sizes where the
/// cheaper option changes. This module finds such points for arbitrary cost
/// functions by scanning + bisection, with no smoothness assumptions beyond
/// a single sign change of the difference in the bracket.

#include <functional>
#include <optional>

namespace stamp {

/// A detected crossover of f vs g over an integer parameter.
struct Crossover {
  long long at = 0;       ///< smallest x in (lo, hi] where the sign differs
                          ///  from the sign at lo
  double f_before = 0;    ///< f(at - 1)
  double g_before = 0;
  double f_after = 0;     ///< f(at)
  double g_after = 0;
};

/// Cost of an option at integer parameter x (usually a problem size or a
/// process count).
using CostFn = std::function<double(long long)>;

/// Finds the smallest x in (lo, hi] where the winner between f and g changes
/// relative to the winner at lo. Exact ties are treated as "no change".
/// Returns nullopt if the same option wins over the whole range.
///
/// Requires lo < hi. Runs in O(log(hi - lo)) evaluations when the winner
/// function changes once in the bracket; if it changes multiple times this
/// finds one change point (bisection invariant: the returned point is a true
/// winner change between adjacent integers).
[[nodiscard]] std::optional<Crossover> find_crossover(const CostFn& f,
                                                      const CostFn& g,
                                                      long long lo,
                                                      long long hi);

/// Convenience: first x in (lo, hi] where f(x) < g(x), given f(lo) >= g(lo)
/// (i.e. "when does f start winning?"). Returns nullopt if it never does, or
/// if f already wins at lo (nothing to find).
[[nodiscard]] std::optional<long long> first_win(const CostFn& f, const CostFn& g,
                                                 long long lo, long long hi);

}  // namespace stamp
