#pragma once
/// \file analysis.hpp
/// \brief Closed-form STAMP analyses of the paper's worked examples
///        (Section 4): Jacobi, banking transfer, airline reservation, APSP.
///
/// These are the symbolic derivations of the paper turned into code, so the
/// benches can print paper-formula values next to runtime-measured and
/// simulator-measured ones.

#include "core/cost_model.hpp"
#include "core/params.hpp"

namespace stamp::analysis {

// ---------------------------------------------------------------------------
// Jacobi (intra_proc, async_exec, synch_comm), message-passing realization.
// ---------------------------------------------------------------------------

/// Machine abstraction used in the paper's Jacobi analysis: it deliberately
/// does not distinguish intra from inter (single L and g).
struct JacobiParams {
  double L = 5;  ///< message delay bound
  double g = 0;  ///< bandwidth factor
};

/// All quantities the paper derives for one Jacobi process of problem size n.
struct JacobiAnalysis {
  double n = 0;

  // Counters per S-round (per process): 2n local fp/assignment ops,
  // n-1 sends, n-1 receives.
  CostCounters round_counters;

  double T_s_round = 0;  ///< 2n + L + 2gn - 2g
  double E_s_round = 0;  ///< (2 w_fp + w_mr + w_ms) n - w_fp + w_int - w_mr - w_ms
  double T_c_lower = 0;  ///< >= 2 (loop/termination checks)
  double E_c_upper = 0;  ///< <= w_fp + 2 w_int
  double T_s_unit_lower = 0;  ///< T_s_round + T_c_lower
  double E_s_unit_upper = 0;  ///< E_s_round + E_c_upper
  double P_s_unit_upper = 0;  ///< E_s_unit_upper / T_s_unit_lower
};

/// Counters of one Jacobi S-round for problem size n (per the paper's count:
/// n-1 multiplications, n-2 additions, 1 subtraction, 1 multiplication and
/// 1 assignment = 2n local operations, of which 2n-1 are floating point;
/// n-1 sends and n-1 receives).
[[nodiscard]] CostCounters jacobi_round_counters(int n) noexcept;

/// Full closed-form analysis with explicit L, g and energy parameters.
[[nodiscard]] JacobiAnalysis jacobi(int n, const JacobiParams& p,
                                    const EnergyParams& e) noexcept;

/// The paper's lower-bound instantiation: lock-step execution and unit-time
/// barrier give L >= 5; the minimum bandwidth factor is g = 3 / (n (n-1)).
/// Then T_S-unit >= 2n + 6/n + 7 >= 2n.
[[nodiscard]] JacobiParams jacobi_lower_bound_params(int n) noexcept;

/// T_S-unit lower bound at the lower-bound parameters: 2n + 6/n + 7.
[[nodiscard]] double jacobi_T_s_unit_lower_bound(int n) noexcept;

/// The paper's simplified power bound: with w_fp = x w_int and
/// w_mr = w_ms = y w_int (x, y >= 2), P_S-unit <= (x + y) w_int.
[[nodiscard]] double jacobi_power_upper_bound(double x, double y,
                                              double w_int) noexcept;

/// Admission count of the paper's envelope example: per-processor power cap
/// `cap`, per-thread bound (x+y) w_int; returns the maximum number of Jacobi
/// threads one processor may host (also limited by threads_per_processor).
/// For cap = 3 (x+y) w_int on a 4-thread Niagara core this returns 3.
[[nodiscard]] int jacobi_max_threads_per_processor(double x, double y,
                                                   double w_int, double cap,
                                                   int threads_per_processor) noexcept;

// ---------------------------------------------------------------------------
// APSP (inter_proc, async_exec, async_comm), shared-memory realization.
// ---------------------------------------------------------------------------

/// Counters of one APSP S-round for process i on an n-vertex graph:
/// reads the full n x n shared matrix, computes min-plus over its row
/// (n additions and n-1 comparisons per entry, n entries), writes its row.
[[nodiscard]] CostCounters apsp_round_counters(int n) noexcept;

/// Closed-form per-round cost for one APSP process with all communication
/// inter-processor (the inter_proc attribute), for R rounds.
[[nodiscard]] Cost apsp_process_cost(int n, int rounds, const MachineParams& mp,
                                     const EnergyParams& e) noexcept;

// ---------------------------------------------------------------------------
// Cluster APSP (inter_node distribution), message-passing realization — the
// third-tier extension of arXiv:0810.2150. n processes are spread evenly over
// `nodes` machines; per round each process exchanges its n-entry row with
// every peer. Rows to co-resident peers travel the chip tier (L_e/g_mp_e),
// rows to peers on other nodes travel the network tier (L_net/g_net/w_net).
// With nodes = 1 the node-tier counters are zero and the analysis collapses
// to the paper's single-node message-passing form exactly.
// ---------------------------------------------------------------------------

/// Counters of one cluster-APSP S-round for one of n processes spread over
/// `nodes` machines (local min-plus work identical to apsp_round_counters;
/// the n^2 shared accesses become row exchanges split by tier).
[[nodiscard]] CostCounters cluster_apsp_round_counters(int n, int nodes) noexcept;

/// Process-count context of the cluster placement: per-node peers are
/// inter-processor, off-node peers are inter-node.
[[nodiscard]] ProcessCounts cluster_apsp_process_counts(int n, int nodes) noexcept;

/// Closed-form per-process cost for R rounds of cluster APSP.
[[nodiscard]] Cost cluster_apsp_process_cost(int n, int nodes, int rounds,
                                             const MachineParams& mp,
                                             const EnergyParams& e) noexcept;

// ---------------------------------------------------------------------------
// Transactional examples (trans_exec): banking transfer, airline reserve.
// ---------------------------------------------------------------------------

/// Counters of one `transfer` attempt: two subtransactions (withdraw,
/// deposit), each one shared read + one shared write + a few integer ops,
/// plus the commit decision. `rollbacks` is the measured/assumed number of
/// aborts before success; it enters kappa and multiplies the attempted work.
[[nodiscard]] CostCounters transfer_counters(double rollbacks,
                                             bool intra) noexcept;

/// Counters of one `reserve` attempt: three leg subtransactions, each a
/// shared read + write + integer ops, plus the partial-commit decision logic.
[[nodiscard]] CostCounters reserve_counters(double rollbacks) noexcept;

}  // namespace stamp::analysis
