#pragma once
/// \file function_ref.hpp
/// \brief `core::function_ref` — a non-owning, trivially copyable reference
///        to a callable (two words: storage union + trampoline pointer).
///
/// `std::function` type-erases by *owning* a copy of the callable, which
/// costs an allocation for captures beyond the small-buffer size and an
/// indirect call through a vtable-like dispatch on every invocation. Hot
/// paths that only need to *borrow* a callable for the duration of one call
/// (`Pool::parallel_for`, `CostCache::get_or_compute`) pay for none of that
/// with a `function_ref`: construction is two pointer stores, invocation is
/// one indirect call, and nothing is ever allocated.
///
/// The referenced callable must outlive every invocation. Binding a
/// temporary lambda in a call expression is fine — the temporary lives until
/// the full expression (the call) ends — but *storing* a `function_ref`
/// built from a temporary is a dangling reference, exactly like
/// `std::string_view`.

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace stamp::core {

template <class Signature>
class function_ref;  // undefined; only the R(Args...) partial spec exists

template <class R, class... Args>
class function_ref<R(Args...)> {
 public:
  function_ref() = delete;  // there is no "empty" reference

  /// Bind any callable invocable as R(Args...). Intentionally implicit so
  /// lambdas convert at call sites, mirroring std::function.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, function_ref> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  function_ref(F&& f) noexcept {
    using Callable = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<Callable>) {
      // A function lvalue: store the function pointer in the union's
      // function-pointer member. Converting between function-pointer types
      // and back is fully defined ([expr.reinterpret.cast]), unlike the
      // conditionally-supported round-trip through void*.
      storage_.fn = reinterpret_cast<void (*)()>(std::addressof(f));
      call_ = [](Storage s, Args... args) -> R {
        return std::invoke(reinterpret_cast<Callable*>(s.fn),
                           std::forward<Args>(args)...);
      };
    } else {
      storage_.obj =
          const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      call_ = [](Storage s, Args... args) -> R {
        return std::invoke(*static_cast<Callable*>(s.obj),
                           std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return call_(storage_, std::forward<Args>(args)...);
  }

 private:
  /// Object pointers and function pointers need not share a representation,
  /// so each kind lives in its own union member; the trampoline knows which
  /// member it stored.
  union Storage {
    void* obj;
    void (*fn)();
  };
  Storage storage_;
  R (*call_)(Storage, Args...);
};

}  // namespace stamp::core
