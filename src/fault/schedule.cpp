#include "fault/schedule.hpp"

#include "report/json.hpp"
#include "report/json_parse.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace stamp::fault {

bool schedule_entry_less(const ScheduleEntry& a,
                         const ScheduleEntry& b) noexcept {
  if (site_index(a.site) != site_index(b.site))
    return site_index(a.site) < site_index(b.site);
  if (a.key != b.key) return a.key < b.key;
  if (a.decision != b.decision) return a.decision < b.decision;
  return a.magnitude < b.magnitude;
}

void Schedule::canonicalize() {
  std::sort(entries.begin(), entries.end(), schedule_entry_less);
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const ScheduleEntry& a, const ScheduleEntry& b) {
                              return a.site == b.site && a.key == b.key &&
                                     a.decision == b.decision;
                            }),
                entries.end());
}

std::string Schedule::to_json() const {
  std::ostringstream os;
  report::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "stamp-schedule/v1");
  w.key("entries").begin_array();
  for (const ScheduleEntry& e : entries) {
    w.begin_object();
    w.kv("site", site_name(e.site));
    w.kv("key", static_cast<long long>(e.key));
    w.kv("decision", static_cast<long long>(e.decision));
    w.kv("magnitude", e.magnitude);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

namespace {

[[nodiscard]] const report::JsonValue& require(const report::JsonValue& obj,
                                               std::string_view key) {
  const report::JsonValue* v = obj.find(key);
  if (v == nullptr)
    throw std::invalid_argument("schedule: missing field \"" +
                                std::string(key) + "\"");
  return *v;
}

[[nodiscard]] std::uint64_t require_u64(const report::JsonValue& obj,
                                        std::string_view key) {
  const double n = require(obj, key).as_number();
  if (n < 0)
    throw std::invalid_argument("schedule: negative \"" + std::string(key) +
                                "\"");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

Schedule Schedule::from_json(std::string_view text) {
  const report::JsonValue root = report::JsonValue::parse(text);
  const std::string& schema = require(root, "schema").as_string();
  if (schema != "stamp-schedule/v1")
    throw std::invalid_argument("schedule: unsupported schema \"" + schema +
                                "\" (want stamp-schedule/v1)");
  Schedule out;
  for (const report::JsonValue& item : require(root, "entries").items()) {
    ScheduleEntry e;
    const std::string& name = require(item, "site").as_string();
    const std::optional<FaultSite> site = site_from_name(name);
    if (!site)
      throw std::invalid_argument("schedule: unknown fault site \"" + name +
                                  "\"");
    e.site = *site;
    e.key = require_u64(item, "key");
    e.decision = require_u64(item, "decision");
    e.magnitude = require(item, "magnitude").as_number();
    if (e.magnitude < 0)
      throw std::invalid_argument("schedule: negative magnitude for site \"" +
                                  name + "\"");
    out.entries.push_back(e);
  }
  out.canonicalize();
  return out;
}

Schedule merge_schedules(const Schedule& a, const Schedule& b) {
  Schedule out = a;
  out.entries.insert(out.entries.end(), b.entries.begin(), b.entries.end());
  out.canonicalize();
  return out;
}

}  // namespace stamp::fault
