#pragma once
/// \file fault.hpp
/// \brief Umbrella header for the deterministic fault-injection and
///        resilience layer: plans, the injector, retry policies.
///
/// Disabled by default; arming a `FaultPlan` on `Injector::global()` (or via
/// `stamp::Evaluator::with_faults`) flips one atomic flag. Hook sites live in
/// the STM commit path, the mailboxes, the executor, and the machine
/// simulator; each pays one relaxed load when injection is off.

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/prng.hpp"
#include "fault/retry.hpp"
#include "fault/schedule.hpp"
