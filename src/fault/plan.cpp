#include "fault/plan.hpp"

#include <stdexcept>
#include <string>

namespace stamp::fault {

const char* site_name(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::StmAbort: return "stm_abort";
    case FaultSite::MsgDrop: return "msg_drop";
    case FaultSite::MsgDelay: return "msg_delay";
    case FaultSite::MsgDuplicate: return "msg_duplicate";
    case FaultSite::ProcStall: return "proc_stall";
    case FaultSite::ProcFailStop: return "proc_fail_stop";
    case FaultSite::SimLatencySpike: return "sim_latency_spike";
    case FaultSite::SimCoreFail: return "sim_core_fail";
    case FaultSite::SweepPointFail: return "sweep_point_fail";
    case FaultSite::ServeWorkerFail: return "serve_worker_fail";
    case FaultSite::FleetWorkerKill: return "fleet_worker_kill";
    case FaultSite::TestProbe: return "test_probe";
  }
  return "unknown";
}

std::optional<FaultSite> site_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == site_name(site)) return site;
  }
  return std::nullopt;
}

FaultPlan& FaultPlan::with(FaultSite site, double probability, double magnitude,
                           std::uint64_t max_per_key, std::int64_t only_key) {
  SiteSpec& s = sites[site_index(site)];
  s.probability = probability;
  s.magnitude = magnitude;
  s.max_per_key = max_per_key;
  s.only_key = only_key;
  return *this;
}

bool FaultPlan::any_armed() const noexcept {
  for (const SiteSpec& s : sites)
    if (s.armed()) return true;
  return false;
}

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const SiteSpec& s = sites[i];
    if (s.probability < 0 || s.probability > 1)
      throw std::invalid_argument(
          std::string("FaultPlan: probability outside [0,1] for site ") +
          site_name(static_cast<FaultSite>(i)));
    if (s.magnitude < 0)
      throw std::invalid_argument(
          std::string("FaultPlan: negative magnitude for site ") +
          site_name(static_cast<FaultSite>(i)));
  }
}

}  // namespace stamp::fault
