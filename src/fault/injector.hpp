#pragma once
/// \file injector.hpp
/// \brief The process-wide fault injector: deterministic, seeded decisions
///        behind one relaxed atomic branch (the same disabled-is-free pattern
///        as `src/obs/`).
///
/// Instrumented subsystems ask `injection_enabled()` (one relaxed load) and,
/// only when armed, call `Injector::global().decide(site, key)`. A decision
/// is a pure function of (plan seed, site, key, per-(site,key) decision
/// index): per-key counters make the schedule independent of thread
/// interleaving as long as each actor's own decision sequence is
/// deterministic — which it is, because an actor's decisions follow its
/// program order. Same seed => same fault schedule at any worker count.
///
/// Every injection emits an `obs` instant event (when tracing is on) and a
/// `fault.<site>` metrics counter (when metrics are on), plus always-on
/// internal counters the chaos report reads.

#include "fault/plan.hpp"
#include "fault/prng.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stamp::fault {

/// Thrown by a fail-stop injection inside an executor process body; the
/// supervised executor catches it and re-runs on the surviving placement.
class ProcessFailure : public std::runtime_error {
 public:
  explicit ProcessFailure(int process)
      : std::runtime_error("injected fail-stop in process " +
                           std::to_string(process)),
        process_(process) {}

  [[nodiscard]] int process() const noexcept { return process_; }

 private:
  int process_;
};

/// Thrown by the machine simulator when a SimCoreFail decision fires for an
/// occupied core: the replay cannot continue on the dead core. Callers
/// re-place around the core (PlacementMap::fill_first_excluding) and replay
/// again — the simulated twin of the supervised executor's failover.
class CoreFailure : public std::runtime_error {
 public:
  explicit CoreFailure(int core)
      : std::runtime_error("injected core failure on core " +
                           std::to_string(core)),
        core_(core) {}

  [[nodiscard]] int core() const noexcept { return core_; }

 private:
  int core_;
};

/// Thrown by the sweep engine when a SweepPointFail decision fires for a grid
/// point (key = grid index). The pool records it as the loop's first error
/// and rethrows after draining, so every other in-flight point still
/// completes (and journals) before the sweep fails — which is what makes the
/// kill-and-resume loop deterministic.
class SweepPointFailure : public std::runtime_error {
 public:
  explicit SweepPointFailure(std::size_t index)
      : std::runtime_error("injected failure at sweep grid point " +
                           std::to_string(index)),
        index_(index) {}

  [[nodiscard]] std::size_t index() const noexcept { return index_; }

 private:
  std::size_t index_;
};

/// What a fired decision tells the hook site.
struct Injection {
  double magnitude = 0;  ///< the site spec's magnitude, verbatim
};

namespace detail {
extern std::atomic<bool> g_injection_enabled;
}  // namespace detail

/// The branch every hook site takes: one relaxed load. True iff a plan is
/// armed on the process-wide injector.
[[nodiscard]] inline bool injection_enabled() noexcept {
  return detail::g_injection_enabled.load(std::memory_order_relaxed);
}

class Injector {
 public:
  Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Install `plan` and reset all decision state. Not thread-safe against
  /// in-flight decisions: arm/disarm between workloads, not during them.
  void arm(const FaultPlan& plan);

  /// Stop injecting (the fast flag goes false); decision state is kept so
  /// reports can still be read, and cleared by the next `arm`.
  void disarm() noexcept;

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// One decision for `key`'s stream at `site`. Returns the injection (with
  /// the site's magnitude) when it fires, nullopt otherwise. Deterministic in
  /// (seed, site, key, decision index); never fires when disarmed.
  std::optional<Injection> decide(FaultSite site, std::uint64_t key);

  /// Like `decide`, keyed by the calling thread's actor key (see ActorScope).
  /// Hook sites with no process/task id at hand use this.
  std::optional<Injection> decide_here(FaultSite site);

  /// Always-on counters since the last `arm` (deterministic under the same
  /// guarantee as the decisions themselves).
  [[nodiscard]] std::uint64_t injected(FaultSite site) const noexcept;
  [[nodiscard]] std::uint64_t decisions(FaultSite site) const noexcept;

  /// (site name, injected count) for every site with a non-zero count, in
  /// site declaration order — the chaos report's "faults" object.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  injected_by_site() const;

  /// The process-wide injector all hook sites consult.
  [[nodiscard]] static Injector& global();

 private:
  struct KeyState {
    std::uint64_t decisions = 0;
    std::uint64_t injected = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, KeyState> keys;
  };

  static constexpr std::size_t kShardCount = 16;

  [[nodiscard]] Shard& shard_for(std::uint64_t stream) noexcept;

  FaultPlan plan_{};
  bool armed_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> decisions_{};
};

/// RAII thread-local actor key for `decide_here`. The executor scopes each
/// process thread to its process id; the chaos harness scopes each logical
/// task to its task id — which is what makes mailbox-level decisions
/// deterministic at any worker count.
class ActorScope {
 public:
  explicit ActorScope(std::uint64_t key) noexcept;
  ~ActorScope();

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  std::uint64_t previous_;
};

/// The calling thread's actor key (0 when no ActorScope is active).
[[nodiscard]] std::uint64_t current_actor() noexcept;

}  // namespace stamp::fault
