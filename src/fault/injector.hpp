#pragma once
/// \file injector.hpp
/// \brief The fault injector: deterministic, seeded decisions behind one
///        relaxed atomic branch (the same disabled-is-free pattern as
///        `src/obs/`).
///
/// Instrumented subsystems ask `injection_enabled()` (one relaxed load) and,
/// only when armed, call `Injector::current().decide(site, key)`. A decision
/// is a pure function of (plan seed, site, key, per-(site,key) decision
/// index): per-key counters make the schedule independent of thread
/// interleaving as long as each actor's own decision sequence is
/// deterministic — which it is, because an actor's decisions follow its
/// program order. Same seed => same fault schedule at any worker count.
///
/// `Injector::current()` resolves to a thread-local override installed by
/// `InjectorScope` (how chaos-campaign trials run concurrently with private
/// injectors) and falls back to the process-wide `Injector::global()` that
/// `Evaluator::with_faults` and the classic chaos scenarios arm.
///
/// Two modes:
///  - probabilistic (`arm`): a `FaultPlan` draws per-decision from the
///    counter PRNG; every fired injection is recorded into a
///    `fault::Schedule` readable via `recorded()`.
///  - replay (`arm_replay`): a schedule is replayed verbatim — injections
///    fire at exactly the recorded (site, key, decision) triples, carrying
///    the recorded magnitudes, and nowhere else. An empty schedule is
///    "observe" mode: every decision stream is counted (see
///    `observed_streams()`) but nothing fires.
///
/// Every injection emits an `obs` instant event (when tracing is on) and a
/// `fault.<site>` metrics counter (when metrics are on), plus always-on
/// internal counters the chaos report reads. Suppressed injections (armed
/// site filtered by `only_key` or capped by `max_per_key`) are counted too,
/// so a campaign can tell "site never reached" from "reached but capped".

#include "fault/plan.hpp"
#include "fault/prng.hpp"
#include "fault/schedule.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stamp::fault {

/// Thrown by a fail-stop injection inside an executor process body; the
/// supervised executor catches it and re-runs on the surviving placement.
class ProcessFailure : public std::runtime_error {
 public:
  explicit ProcessFailure(int process)
      : std::runtime_error("injected fail-stop in process " +
                           std::to_string(process)),
        process_(process) {}

  [[nodiscard]] int process() const noexcept { return process_; }

 private:
  int process_;
};

/// Thrown by the machine simulator when a SimCoreFail decision fires for an
/// occupied core: the replay cannot continue on the dead core. Callers
/// re-place around the core (PlacementMap::fill_first_excluding) and replay
/// again — the simulated twin of the supervised executor's failover.
class CoreFailure : public std::runtime_error {
 public:
  explicit CoreFailure(int core)
      : std::runtime_error("injected core failure on core " +
                           std::to_string(core)),
        core_(core) {}

  [[nodiscard]] int core() const noexcept { return core_; }

 private:
  int core_;
};

/// Thrown by the sweep engine when a SweepPointFail decision fires for a grid
/// point (key = grid index). The pool records it as the loop's first error
/// and rethrows after draining, so every other in-flight point still
/// completes (and journals) before the sweep fails — which is what makes the
/// kill-and-resume loop deterministic.
class SweepPointFailure : public std::runtime_error {
 public:
  explicit SweepPointFailure(std::size_t index)
      : std::runtime_error("injected failure at sweep grid point " +
                           std::to_string(index)),
        index_(index) {}

  [[nodiscard]] std::size_t index() const noexcept { return index_; }

 private:
  std::size_t index_;
};

/// What a fired decision tells the hook site.
struct Injection {
  double magnitude = 0;  ///< the site spec's (or replayed entry's) magnitude
};

/// One observed (site, key) decision stream — the census `observe` mode (an
/// empty replay) produces, which is what the campaign enumerates over.
struct StreamStats {
  FaultSite site = FaultSite::StmAbort;
  std::uint64_t key = 0;
  std::uint64_t decisions = 0;  ///< decisions taken on this stream
  std::uint64_t injected = 0;   ///< injections fired on this stream
};

namespace detail {
/// Count of armed injectors in the process (global + per-trial overrides).
/// Hook sites only pay more than one relaxed load when it is non-zero.
extern std::atomic<int> g_armed_injectors;
}  // namespace detail

/// The branch every hook site takes: one relaxed load. True iff at least one
/// injector in the process is armed (replay/observe mode counts: observation
/// needs the decision streams walked even when nothing fires).
[[nodiscard]] inline bool injection_enabled() noexcept {
  return detail::g_armed_injectors.load(std::memory_order_relaxed) > 0;
}

class Injector {
 public:
  enum class Mode : std::uint8_t { Probabilistic, Replay };

  Injector();
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Install `plan` and reset all decision state. Not thread-safe against
  /// in-flight decisions: arm/disarm between workloads, not during them.
  void arm(const FaultPlan& plan);

  /// Install `schedule` for verbatim replay and reset all decision state.
  /// Only the recorded (site, key, decision) triples fire, carrying their
  /// recorded magnitudes; plan gating (probability, only_key, max_per_key)
  /// does not apply. An empty schedule observes: streams are counted,
  /// nothing fires.
  void arm_replay(const Schedule& schedule);

  /// Stop injecting; decision state is kept so reports can still be read,
  /// and cleared by the next `arm`/`arm_replay`.
  void disarm() noexcept;

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// One decision for `key`'s stream at `site`. Returns the injection (with
  /// its magnitude) when it fires, nullopt otherwise. Deterministic in
  /// (seed, site, key, decision index); never fires when disarmed.
  std::optional<Injection> decide(FaultSite site, std::uint64_t key);

  /// Like `decide`, keyed by the calling thread's actor key (see ActorScope).
  /// Hook sites with no process/task id at hand use this.
  std::optional<Injection> decide_here(FaultSite site);

  /// Always-on counters since the last arm (deterministic under the same
  /// guarantee as the decisions themselves).
  [[nodiscard]] std::uint64_t injected(FaultSite site) const noexcept;
  [[nodiscard]] std::uint64_t decisions(FaultSite site) const noexcept;

  /// Injections an armed site wanted to fire but could not: the decision was
  /// filtered by `only_key` or the per-key `max_per_key` budget was already
  /// spent. Distinguishes "site never reached" (decisions == 0) from
  /// "reached but capped" (suppressed > 0).
  [[nodiscard]] std::uint64_t suppressed(FaultSite site) const noexcept;

  /// (site name, injected count) for every site with a non-zero count, in
  /// site declaration order — the chaos report's "faults" object.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  injected_by_site() const;

  /// Every injection fired since the last arm, as a canonical Schedule —
  /// the replayable record of what actually happened.
  [[nodiscard]] Schedule recorded() const;

  /// Every (site, key) stream touched since the last arm, sorted by
  /// (site declaration index, key) — the census campaign enumeration uses.
  [[nodiscard]] std::vector<StreamStats> observed_streams() const;

  /// The process-wide injector `Evaluator::with_faults` arms.
  [[nodiscard]] static Injector& global();

  /// The injector hook sites consult: the calling thread's `InjectorScope`
  /// override when one is active, else `global()`.
  [[nodiscard]] static Injector& current() noexcept;

 private:
  struct KeyState {
    FaultSite site = FaultSite::StmAbort;
    std::uint64_t key = 0;
    std::uint64_t decisions = 0;
    std::uint64_t injected = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, KeyState> keys;
    std::vector<ScheduleEntry> fired;  ///< record of this shard's injections
  };

  static constexpr std::size_t kShardCount = 16;

  [[nodiscard]] Shard& shard_for(std::uint64_t stream) noexcept;
  void reset_state();
  void set_enabled_contribution(bool on) noexcept;
  void note_suppressed(FaultSite site);

  FaultPlan plan_{};
  Mode mode_ = Mode::Probabilistic;
  bool armed_ = false;
  bool contributing_ = false;  ///< counted in detail::g_armed_injectors
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Replay mode: stream hash -> (decision index -> magnitude), built once
  /// at arm_replay and read without locks during decide.
  std::unordered_map<std::uint64_t, std::map<std::uint64_t, double>> replay_;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> decisions_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> suppressed_{};
};

/// RAII thread-local override for `Injector::current()`. A chaos-campaign
/// trial installs its private injector on the trial thread (and the executor
/// propagates the override into the process threads it spawns), so
/// concurrent trials never share decision state.
class InjectorScope {
 public:
  explicit InjectorScope(Injector& injector) noexcept;
  ~InjectorScope();

  InjectorScope(const InjectorScope&) = delete;
  InjectorScope& operator=(const InjectorScope&) = delete;

 private:
  Injector* previous_;
};

/// RAII thread-local actor key for `decide_here`. The executor scopes each
/// process thread to its process id; the chaos harness scopes each logical
/// task to its task id — which is what makes mailbox-level decisions
/// deterministic at any worker count.
class ActorScope {
 public:
  explicit ActorScope(std::uint64_t key) noexcept;
  ~ActorScope();

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  std::uint64_t previous_;
};

/// The calling thread's actor key (0 when no ActorScope is active).
[[nodiscard]] std::uint64_t current_actor() noexcept;

}  // namespace stamp::fault
