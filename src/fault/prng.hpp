#pragma once
/// \file prng.hpp
/// \brief Counter-based splittable pseudo-randomness for deterministic fault
///        injection.
///
/// Every injection decision is a pure function of (seed, stream, counter):
/// there is no sequential generator state shared between threads, so the
/// fault schedule cannot depend on OS scheduling. A "stream" identifies one
/// logical actor (a STAMP process id, a chaos task id, a simulated core);
/// the counter is that actor's decision index. Two runs with the same seed
/// visit the same (stream, counter) pairs and therefore draw the same bits —
/// the determinism guarantee the chaos harness is built on.
///
/// The mixer is the SplitMix64 finalizer (Steele, Lea & Flood), chained once
/// per input word; it passes avalanche tests and is a handful of arithmetic
/// ops, cheap enough to sit on an armed hot path.

#include <cstdint>

namespace stamp::fault {

/// SplitMix64 finalizer: a bijective mix with full avalanche.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The draw for decision `counter` of `stream` under `seed`. Stateless.
[[nodiscard]] constexpr std::uint64_t counter_draw(
    std::uint64_t seed, std::uint64_t stream, std::uint64_t counter) noexcept {
  return mix64(mix64(mix64(seed) ^ stream) ^ counter);
}

/// Map 64 random bits to a double in [0, 1).
[[nodiscard]] constexpr double u01(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// A tiny sequential SplitMix64 generator for places that want a plain
/// stream of numbers (plan derivation, tests). Not used on injection paths —
/// those are counter-based by design.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept { return mix64(state_++); }
  constexpr double next_u01() noexcept { return u01(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace stamp::fault
