#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace stamp::fault {

std::chrono::nanoseconds RetryPolicy::backoff_for(int attempt,
                                                  std::uint64_t stream) const {
  if (base_backoff.count() <= 0 || attempt < 1)
    return std::chrono::nanoseconds{0};
  const double base = static_cast<double>(base_backoff.count());
  const double cap = static_cast<double>(max_backoff.count());
  double ns = base * std::pow(multiplier, attempt - 1);
  ns = std::min(ns, cap);
  if (jitter > 0) {
    const double draw = u01(counter_draw(
        jitter_seed, stream, static_cast<std::uint64_t>(attempt)));
    ns *= (1.0 - jitter) + jitter * draw;
  }
  return std::chrono::nanoseconds(static_cast<std::int64_t>(ns));
}

void RetryPolicy::validate() const {
  if (base_backoff.count() < 0 || max_backoff.count() < 0)
    throw std::invalid_argument("RetryPolicy: negative backoff");
  if (multiplier < 1.0)
    throw std::invalid_argument("RetryPolicy: multiplier must be >= 1");
  if (jitter < 0 || jitter > 1)
    throw std::invalid_argument("RetryPolicy: jitter outside [0,1]");
  if (deadline.count() < 0)
    throw std::invalid_argument("RetryPolicy: negative deadline");
}

void RetryState::backoff() const {
  const std::chrono::nanoseconds ns = policy_.backoff_for(retries_, stream_);
  if (ns.count() > 0) std::this_thread::sleep_for(ns);
}

}  // namespace stamp::fault
