#include "fault/injector.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace stamp::fault {

namespace detail {
std::atomic<bool> g_injection_enabled{false};
}  // namespace detail

namespace {

thread_local std::uint64_t t_actor_key = 0;

/// One stream per (site, key): full-avalanche so shard selection and draws
/// are uncorrelated across sites sharing a numeric key.
[[nodiscard]] std::uint64_t stream_of(FaultSite site,
                                      std::uint64_t key) noexcept {
  return mix64(key ^ (0x517CC1B727220A95ull * (site_index(site) + 1)));
}

}  // namespace

Injector::Injector() {
  shards_.reserve(kShardCount);
  for (std::size_t i = 0; i < kShardCount; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

void Injector::arm(const FaultPlan& plan) {
  plan.validate();
  plan_ = plan;
  for (auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    shard->keys.clear();
  }
  for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
  for (auto& c : decisions_) c.store(0, std::memory_order_relaxed);
  armed_ = true;
  detail::g_injection_enabled.store(plan_.any_armed(),
                                    std::memory_order_relaxed);
}

void Injector::disarm() noexcept {
  armed_ = false;
  detail::g_injection_enabled.store(false, std::memory_order_relaxed);
}

Injector::Shard& Injector::shard_for(std::uint64_t stream) noexcept {
  return *shards_[static_cast<std::size_t>(stream % kShardCount)];
}

std::optional<Injection> Injector::decide(FaultSite site, std::uint64_t key) {
  if (!injection_enabled()) return std::nullopt;
  const SiteSpec& spec = plan_.spec(site);
  if (!spec.armed()) return std::nullopt;
  // A key filter rejects without touching the stream: the filtered key's
  // schedule is identical whether or not other keys exist.
  if (spec.only_key >= 0 && key != static_cast<std::uint64_t>(spec.only_key))
    return std::nullopt;

  decisions_[site_index(site)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t stream = stream_of(site, key);
  bool fire = false;
  {
    Shard& shard = shard_for(stream);
    const std::scoped_lock lock(shard.mutex);
    KeyState& state = shard.keys[stream];
    const std::uint64_t n = state.decisions++;
    fire = state.injected < spec.max_per_key &&
           u01(counter_draw(plan_.seed, stream, n)) < spec.probability;
    if (fire) ++state.injected;
  }
  if (!fire) return std::nullopt;

  injected_[site_index(site)].fetch_add(1, std::memory_order_relaxed);
  if (obs::tracing_enabled())
    obs::TraceRecorder::global().instant(
        std::string("fault.") + site_name(site), "fault");
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global()
        .counter(std::string("fault.") + site_name(site))
        .add();
  return Injection{spec.magnitude};
}

std::optional<Injection> Injector::decide_here(FaultSite site) {
  return decide(site, t_actor_key);
}

std::uint64_t Injector::injected(FaultSite site) const noexcept {
  return injected_[site_index(site)].load(std::memory_order_relaxed);
}

std::uint64_t Injector::decisions(FaultSite site) const noexcept {
  return decisions_[site_index(site)].load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> Injector::injected_by_site()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const std::uint64_t n = injected(site);
    if (n > 0) out.emplace_back(site_name(site), n);
  }
  return out;
}

Injector& Injector::global() {
  static Injector instance;
  return instance;
}

ActorScope::ActorScope(std::uint64_t key) noexcept : previous_(t_actor_key) {
  t_actor_key = key;
}

ActorScope::~ActorScope() { t_actor_key = previous_; }

std::uint64_t current_actor() noexcept { return t_actor_key; }

}  // namespace stamp::fault
