#include "fault/injector.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <algorithm>

namespace stamp::fault {

namespace detail {
std::atomic<int> g_armed_injectors{0};
}  // namespace detail

namespace {

thread_local std::uint64_t t_actor_key = 0;
thread_local Injector* t_injector_override = nullptr;

/// One stream per (site, key): full-avalanche so shard selection and draws
/// are uncorrelated across sites sharing a numeric key.
[[nodiscard]] std::uint64_t stream_of(FaultSite site,
                                      std::uint64_t key) noexcept {
  return mix64(key ^ (0x517CC1B727220A95ull * (site_index(site) + 1)));
}

}  // namespace

Injector::Injector() {
  shards_.reserve(kShardCount);
  for (std::size_t i = 0; i < kShardCount; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

Injector::~Injector() { set_enabled_contribution(false); }

void Injector::set_enabled_contribution(bool on) noexcept {
  if (on == contributing_) return;
  contributing_ = on;
  if (on)
    detail::g_armed_injectors.fetch_add(1, std::memory_order_relaxed);
  else
    detail::g_armed_injectors.fetch_sub(1, std::memory_order_relaxed);
}

void Injector::reset_state() {
  for (auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    shard->keys.clear();
    shard->fired.clear();
  }
  for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
  for (auto& c : decisions_) c.store(0, std::memory_order_relaxed);
  for (auto& c : suppressed_) c.store(0, std::memory_order_relaxed);
}

void Injector::arm(const FaultPlan& plan) {
  plan.validate();
  plan_ = plan;
  mode_ = Mode::Probabilistic;
  replay_.clear();
  reset_state();
  armed_ = true;
  // A plan with no armed site contributes nothing: decide() would never fire
  // and nothing needs counting, so hook sites keep the one-load fast path.
  set_enabled_contribution(plan_.any_armed());
}

void Injector::arm_replay(const Schedule& schedule) {
  plan_ = FaultPlan{};
  mode_ = Mode::Replay;
  replay_.clear();
  for (const ScheduleEntry& e : schedule.entries)
    replay_[stream_of(e.site, e.key)][e.decision] = e.magnitude;
  reset_state();
  armed_ = true;
  // Replay always contributes — even an empty schedule: observe mode needs
  // every decision stream counted for the campaign census.
  set_enabled_contribution(true);
}

void Injector::disarm() noexcept {
  armed_ = false;
  set_enabled_contribution(false);
}

Injector::Shard& Injector::shard_for(std::uint64_t stream) noexcept {
  return *shards_[static_cast<std::size_t>(stream % kShardCount)];
}

void Injector::note_suppressed(FaultSite site) {
  suppressed_[site_index(site)].fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global()
        .counter(std::string("fault.") + site_name(site) + ".suppressed")
        .add();
}

std::optional<Injection> Injector::decide(FaultSite site, std::uint64_t key) {
  if (!injection_enabled()) return std::nullopt;
  if (!armed_) return std::nullopt;
  const SiteSpec& spec = plan_.spec(site);
  if (mode_ == Mode::Probabilistic) {
    if (!spec.armed()) return std::nullopt;
    // A key filter rejects without touching the stream: the filtered key's
    // schedule is identical whether or not other keys exist.
    if (spec.only_key >= 0 &&
        key != static_cast<std::uint64_t>(spec.only_key)) {
      note_suppressed(site);
      return std::nullopt;
    }
  }

  decisions_[site_index(site)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t stream = stream_of(site, key);
  bool fire = false;
  bool capped = false;
  double magnitude = spec.magnitude;
  {
    Shard& shard = shard_for(stream);
    const std::scoped_lock lock(shard.mutex);
    KeyState& state = shard.keys[stream];
    state.site = site;
    state.key = key;
    const std::uint64_t n = state.decisions++;
    if (mode_ == Mode::Probabilistic) {
      const bool drawn = u01(counter_draw(plan_.seed, stream, n)) <
                         spec.probability;
      if (drawn && state.injected < spec.max_per_key)
        fire = true;
      else if (drawn)
        capped = true;
    } else {
      const auto per_stream = replay_.find(stream);
      if (per_stream != replay_.end()) {
        const auto entry = per_stream->second.find(n);
        if (entry != per_stream->second.end()) {
          fire = true;
          magnitude = entry->second;
        }
      }
    }
    if (fire) {
      ++state.injected;
      shard.fired.push_back(ScheduleEntry{site, key, n, magnitude});
    }
  }
  if (capped) note_suppressed(site);
  if (!fire) return std::nullopt;

  injected_[site_index(site)].fetch_add(1, std::memory_order_relaxed);
  if (obs::tracing_enabled())
    obs::TraceRecorder::global().instant(
        std::string("fault.") + site_name(site), "fault");
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global()
        .counter(std::string("fault.") + site_name(site))
        .add();
  return Injection{magnitude};
}

std::optional<Injection> Injector::decide_here(FaultSite site) {
  return decide(site, t_actor_key);
}

std::uint64_t Injector::injected(FaultSite site) const noexcept {
  return injected_[site_index(site)].load(std::memory_order_relaxed);
}

std::uint64_t Injector::decisions(FaultSite site) const noexcept {
  return decisions_[site_index(site)].load(std::memory_order_relaxed);
}

std::uint64_t Injector::suppressed(FaultSite site) const noexcept {
  return suppressed_[site_index(site)].load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> Injector::injected_by_site()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const std::uint64_t n = injected(site);
    if (n > 0) out.emplace_back(site_name(site), n);
  }
  return out;
}

Schedule Injector::recorded() const {
  Schedule out;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    out.entries.insert(out.entries.end(), shard->fired.begin(),
                       shard->fired.end());
  }
  out.canonicalize();
  return out;
}

std::vector<StreamStats> Injector::observed_streams() const {
  std::vector<StreamStats> out;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    for (const auto& [stream, state] : shard->keys)
      out.push_back(
          StreamStats{state.site, state.key, state.decisions, state.injected});
  }
  std::sort(out.begin(), out.end(),
            [](const StreamStats& a, const StreamStats& b) {
              if (site_index(a.site) != site_index(b.site))
                return site_index(a.site) < site_index(b.site);
              return a.key < b.key;
            });
  return out;
}

Injector& Injector::global() {
  static Injector instance;
  return instance;
}

Injector& Injector::current() noexcept {
  return t_injector_override != nullptr ? *t_injector_override
                                        : Injector::global();
}

InjectorScope::InjectorScope(Injector& injector) noexcept
    : previous_(t_injector_override) {
  t_injector_override = &injector;
}

InjectorScope::~InjectorScope() { t_injector_override = previous_; }

ActorScope::ActorScope(std::uint64_t key) noexcept : previous_(t_actor_key) {
  t_actor_key = key;
}

ActorScope::~ActorScope() { t_actor_key = previous_; }

std::uint64_t current_actor() noexcept { return t_actor_key; }

}  // namespace stamp::fault
