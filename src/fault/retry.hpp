#pragma once
/// \file retry.hpp
/// \brief `RetryPolicy` — bounded retries, exponential backoff with
///        deterministic jitter, and deadline support.
///
/// One policy object serves every retry loop in the stack: the STM
/// `atomically` loop consults it between attempts, mailbox timeout helpers
/// use its deadline arithmetic, and callers can wrap arbitrary flaky
/// operations with `retry_call`. Jitter is derived from the counter-based
/// PRNG — (jitter_seed, stream, attempt) — so a seeded run backs off by the
/// same amounts every time, on every machine.
///
/// The default-constructed policy is "retry forever, no backoff, no
/// deadline", which is exactly the pre-existing behaviour of the STM loop —
/// adopting the policy is a no-op until someone tightens it.

#include "fault/prng.hpp"

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace stamp::fault {

/// Thrown when a retry loop exhausts its attempt budget.
class RetryExhausted : public std::runtime_error {
 public:
  explicit RetryExhausted(int retries)
      : std::runtime_error("retry budget exhausted after " +
                           std::to_string(retries) + " retries"),
        retries_(retries) {}

  [[nodiscard]] int retries() const noexcept { return retries_; }

 private:
  int retries_;
};

/// Thrown when a retry loop runs past its deadline.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("deadline exceeded") {}
};

struct RetryPolicy {
  /// Retries allowed after the first attempt; negative = unbounded.
  int max_retries = -1;
  /// Backoff before retry k is `base_backoff * multiplier^(k-1)`, capped at
  /// `max_backoff`, then jittered. Zero base = no sleeping (spin retry).
  std::chrono::nanoseconds base_backoff{0};
  double multiplier = 2.0;
  std::chrono::nanoseconds max_backoff{std::chrono::milliseconds(10)};
  /// Fraction of the backoff replaced by a deterministic draw in [0, 1):
  /// sleep = backoff * (1 - jitter + jitter * u01(draw)). Zero = no jitter.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0;
  /// Total wall-clock budget measured from RetryState construction; zero =
  /// no deadline.
  std::chrono::nanoseconds deadline{0};

  [[nodiscard]] static RetryPolicy unbounded() noexcept { return {}; }
  [[nodiscard]] static RetryPolicy bounded(int retries) noexcept {
    RetryPolicy p;
    p.max_retries = retries;
    return p;
  }

  /// The (jittered) backoff before retry `attempt` (1-based) on `stream`.
  [[nodiscard]] std::chrono::nanoseconds backoff_for(
      int attempt, std::uint64_t stream) const;

  /// Throws std::invalid_argument on nonsensical fields.
  void validate() const;
};

/// Per-loop retry bookkeeping: counts attempts against the policy's budget
/// and clock. Construct when the operation starts (the deadline is measured
/// from construction).
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy, std::uint64_t stream = 0)
      : policy_(policy),
        stream_(stream),
        start_(std::chrono::steady_clock::now()) {}

  /// Account one failed attempt. Returns false when the retry budget or the
  /// deadline is exhausted (the caller should stop retrying).
  [[nodiscard]] bool allow_retry() {
    ++retries_;
    if (policy_.max_retries >= 0 && retries_ > policy_.max_retries)
      return false;
    return !deadline_passed();
  }

  /// True once the policy's deadline has passed (never with no deadline).
  [[nodiscard]] bool deadline_passed() const {
    if (policy_.deadline.count() <= 0) return false;
    return std::chrono::steady_clock::now() - start_ >= policy_.deadline;
  }

  /// Sleep this retry's deterministic backoff (no-op for zero base).
  void backoff() const;

  [[nodiscard]] int retries() const noexcept { return retries_; }

 private:
  RetryPolicy policy_;
  std::uint64_t stream_;
  std::chrono::steady_clock::time_point start_;
  int retries_ = 0;
};

/// Run `op` until it succeeds. `op` reports failure by returning an empty
/// optional; the loop backs off between attempts and throws RetryExhausted /
/// DeadlineExceeded when the policy's budget runs out.
template <typename F>
auto retry_call(const RetryPolicy& policy, std::uint64_t stream, F&& op)
    -> typename std::invoke_result_t<F&>::value_type {
  RetryState state(policy, stream);
  for (;;) {
    auto result = op();
    if (result.has_value()) return *std::move(result);
    if (!state.allow_retry()) {
      if (state.deadline_passed()) throw DeadlineExceeded();
      throw RetryExhausted(state.retries() - 1);
    }
    state.backoff();
  }
}

}  // namespace stamp::fault
