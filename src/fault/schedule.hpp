#pragma once
/// \file schedule.hpp
/// \brief `fault::Schedule` — a recorded fault schedule: the exact list of
///        fired injections as (site, key, decision index, magnitude) tuples.
///
/// A schedule is what turns an opaque failing seed into a self-contained,
/// replayable artifact: the injector records every fired injection while a
/// plan is armed, and `Injector::arm_replay` forces injections at exactly the
/// recorded decisions (and nowhere else). Schedules serialize to the
/// `stamp-schedule/v1` JSON schema so a minimal failing repro can be written
/// to disk, attached to a bug report, and replayed verbatim later.

#include "fault/plan.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::fault {

/// One fired injection: the decision index within the (site, key) stream at
/// which it fired, and the magnitude the hook site received.
struct ScheduleEntry {
  FaultSite site = FaultSite::StmAbort;
  std::uint64_t key = 0;       ///< the hook site's stream key (actor, index…)
  std::uint64_t decision = 0;  ///< 0-based decision index within (site, key)
  double magnitude = 0;        ///< intensity delivered to the hook site

  friend bool operator==(const ScheduleEntry&,
                         const ScheduleEntry&) noexcept = default;
};

/// Orders by (site declaration index, key, decision); magnitude breaks ties
/// so canonical order is total.
[[nodiscard]] bool schedule_entry_less(const ScheduleEntry& a,
                                       const ScheduleEntry& b) noexcept;

/// An ordered list of fired injections. Canonical form (sorted, deduplicated
/// on (site, key, decision)) makes schedules comparable and their JSON
/// byte-stable regardless of the thread interleaving that recorded them.
struct Schedule {
  std::vector<ScheduleEntry> entries;

  /// Sort into canonical order and drop duplicate (site, key, decision)
  /// triples (keeping the first magnitude).
  void canonicalize();

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }

  friend bool operator==(const Schedule&, const Schedule&) = default;

  /// Serialize as a `stamp-schedule/v1` JSON document (single line).
  [[nodiscard]] std::string to_json() const;

  /// Parse a `stamp-schedule/v1` document. Throws std::invalid_argument with
  /// a human-readable message on schema violations (unknown site names,
  /// missing fields, wrong schema string) and report::JsonParseError on
  /// malformed JSON.
  [[nodiscard]] static Schedule from_json(std::string_view text);
};

/// The union of two schedules, canonicalized.
[[nodiscard]] Schedule merge_schedules(const Schedule& a, const Schedule& b);

}  // namespace stamp::fault
