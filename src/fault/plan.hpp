#pragma once
/// \file plan.hpp
/// \brief `FaultPlan` — the seeded, declarative description of a chaos
///        campaign: which injection sites fire, how often, how hard.
///
/// A plan is pure data; arming it on the `Injector` is what makes it live.
/// Each site carries a probability (per decision), a site-specific magnitude
/// (a delay in nanoseconds, a latency in model time units, a frequency
/// scale), an optional per-key injection cap, and an optional key filter for
/// targeting one actor (e.g. fail-stop exactly process 2).

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

namespace stamp::fault {

/// Where a fault can be injected. Each site is an independent decision
/// stream; adding a site never perturbs the schedule of existing ones.
enum class FaultSite : std::uint8_t {
  StmAbort,         ///< force a transient conflict abort at STM commit
  MsgDrop,          ///< silently drop a mailbox send
  MsgDelay,         ///< delay a mailbox send (magnitude = nanoseconds)
  MsgDuplicate,     ///< deliver a mailbox send twice
  ProcStall,        ///< stall a process at start (magnitude = nanoseconds)
  ProcFailStop,     ///< fail-stop a process (throws ProcessFailure)
  SimLatencySpike,  ///< scale a simulated op's service demand by `magnitude`
  SimCoreFail,      ///< kill a simulated core (replay throws CoreFailure)
  SweepPointFail,   ///< fail a sweep grid-point evaluation (throws
                    ///< SweepPointFailure; key = grid index)
  ServeWorkerFail,  ///< crash a serve worker mid-request (the supervisor
                    ///< retries; key = request id)
  FleetWorkerKill,  ///< kill a fleet sweep worker after it is handed a shard
                    ///< (the coordinator reassigns; key = shard index)
  TestProbe,        ///< test-only site with no production hook: chaos
                    ///< campaign self-tests decide on it explicitly to seed
                    ///< a known invariant violation
};

inline constexpr std::size_t kFaultSiteCount = 12;

[[nodiscard]] constexpr std::size_t site_index(FaultSite s) noexcept {
  return static_cast<std::size_t>(s);
}

/// Stable lowercase name, used for metrics ("fault.<name>"), obs instant
/// events, and the stamp-chaos/v1 report.
[[nodiscard]] const char* site_name(FaultSite s) noexcept;

/// Inverse of site_name; empty optional for unknown names.
[[nodiscard]] std::optional<FaultSite> site_from_name(
    std::string_view name) noexcept;

/// Configuration of one injection site.
struct SiteSpec {
  double probability = 0;  ///< chance per decision, in [0, 1]
  double magnitude = 0;    ///< site-specific intensity (see FaultSite)
  /// Injections per key stop after this many (decisions keep advancing the
  /// counter, so the schedule of other keys is unaffected).
  std::uint64_t max_per_key = std::numeric_limits<std::uint64_t>::max();
  /// Restrict injection to exactly this key; -1 targets every key.
  std::int64_t only_key = -1;

  [[nodiscard]] bool armed() const noexcept { return probability > 0; }
};

/// A seeded set of site specs. Same plan + same logical decision streams =>
/// same fault schedule, at any thread count.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::array<SiteSpec, kFaultSiteCount> sites{};

  /// Builder-style: arm one site. `max_per_key` caps injections per key;
  /// `only_key` targets a single key (-1 = all).
  FaultPlan& with(
      FaultSite site, double probability, double magnitude = 0,
      std::uint64_t max_per_key = std::numeric_limits<std::uint64_t>::max(),
      std::int64_t only_key = -1);

  [[nodiscard]] const SiteSpec& spec(FaultSite site) const noexcept {
    return sites[site_index(site)];
  }

  /// True iff any site has a positive probability.
  [[nodiscard]] bool any_armed() const noexcept;

  /// Throws std::invalid_argument on probabilities outside [0, 1] or
  /// negative magnitudes.
  void validate() const;
};

}  // namespace stamp::fault
