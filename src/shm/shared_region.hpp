#pragma once
/// \file shared_region.hpp
/// \brief Instrumented shared-memory cells and regions.
///
/// Shared-memory accesses are charged intra- or inter-processor depending on
/// where the sharers sit: when every process touching a region is placed on
/// one processor, the region lives at L1 speed (intra); otherwise it is
/// shared through L2/interconnect (inter). `Scope::Auto` derives this from
/// the placement map; `Scope::Intra` / `Scope::Inter` force a classification
/// (useful for regions shared by a subset of processes).

#include "runtime/executor.hpp"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <vector>

namespace stamp::shm {

/// How accesses to a region are classified for the cost model.
enum class Scope {
  Auto,   ///< intra iff all processes share one processor
  Intra,  ///< force intra-processor accounting
  Inter,  ///< force inter-processor accounting
};

/// Resolve a scope against a placement: true = charge as intra-processor.
[[nodiscard]] inline bool resolve_intra(Scope scope,
                                        const runtime::PlacementMap& placement) {
  switch (scope) {
    case Scope::Intra: return true;
    case Scope::Inter: return false;
    case Scope::Auto: break;
  }
  for (int i = 1; i < placement.process_count(); ++i)
    if (!placement.same_processor(0, i)) return false;
  return true;
}

/// A reader-writer-locked shared value with access instrumentation.
template <typename T>
class SharedRegion {
 public:
  explicit SharedRegion(T initial = T{}, Scope scope = Scope::Auto)
      : value_(std::move(initial)), scope_(scope) {}

  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;

  /// Read a copy of the value; charged as one shared-memory read.
  [[nodiscard]] T read(runtime::Context& ctx) const {
    ctx.recorder().shm_read(resolve_intra(scope_, ctx.placement()));
    const std::shared_lock lock(mutex_);
    return value_;
  }

  /// Overwrite the value; charged as one shared-memory write.
  void write(runtime::Context& ctx, T value) {
    ctx.recorder().shm_write(resolve_intra(scope_, ctx.placement()));
    const std::unique_lock lock(mutex_);
    value_ = std::move(value);
  }

  /// Read-modify-write under the writer lock; charged as one read plus one
  /// write (the classic serialized update).
  template <typename F>
  void update(runtime::Context& ctx, F&& f) {
    const bool intra = resolve_intra(scope_, ctx.placement());
    ctx.recorder().shm_read(intra);
    ctx.recorder().shm_write(intra);
    const std::unique_lock lock(mutex_);
    f(value_);
  }

  /// Uninstrumented peek for checking results after a run.
  [[nodiscard]] T peek() const {
    const std::shared_lock lock(mutex_);
    return value_;
  }

 private:
  mutable std::shared_mutex mutex_;
  T value_;
  Scope scope_;
};

/// A serialized cell in the QSM sense: concurrent accesses queue and execute
/// one at a time, and the observed queue length feeds kappa ("the length of
/// serialization"). Use this to measure contention hot spots.
template <typename T>
class QueuedCell {
 public:
  explicit QueuedCell(T initial = T{}, Scope scope = Scope::Auto)
      : value_(std::move(initial)), scope_(scope) {}

  QueuedCell(const QueuedCell&) = delete;
  QueuedCell& operator=(const QueuedCell&) = delete;

  [[nodiscard]] T read(runtime::Context& ctx) const {
    ctx.recorder().shm_read(resolve_intra(scope_, ctx.placement()));
    const SerializationObserver obs(*this, ctx);
    const std::scoped_lock lock(mutex_);
    return value_;
  }

  void write(runtime::Context& ctx, T value) {
    ctx.recorder().shm_write(resolve_intra(scope_, ctx.placement()));
    const SerializationObserver obs(*this, ctx);
    const std::scoped_lock lock(mutex_);
    value_ = std::move(value);
  }

  template <typename F>
  auto update(runtime::Context& ctx, F&& f) {
    const bool intra = resolve_intra(scope_, ctx.placement());
    ctx.recorder().shm_read(intra);
    ctx.recorder().shm_write(intra);
    const SerializationObserver obs(*this, ctx);
    const std::scoped_lock lock(mutex_);
    return f(value_);
  }

  [[nodiscard]] T peek() const {
    const std::scoped_lock lock(mutex_);
    return value_;
  }

  /// Worst queue length ever observed at this cell (including the accessor).
  [[nodiscard]] double worst_serialization() const noexcept {
    return static_cast<double>(worst_queue_.load(std::memory_order_relaxed));
  }

 private:
  /// RAII: tracks how many accessors are queued at the cell and reports the
  /// observed serialization length to the accessor's recorder.
  class SerializationObserver {
   public:
    SerializationObserver(const QueuedCell& cell, runtime::Context& ctx)
        : cell_(cell) {
      const int queued =
          1 + cell_.waiting_.fetch_add(1, std::memory_order_acq_rel);
      int worst = cell_.worst_queue_.load(std::memory_order_relaxed);
      while (queued > worst && !cell_.worst_queue_.compare_exchange_weak(
                                   worst, queued, std::memory_order_relaxed)) {
      }
      ctx.recorder().observe_kappa(queued);
    }
    ~SerializationObserver() {
      cell_.waiting_.fetch_sub(1, std::memory_order_acq_rel);
    }
    SerializationObserver(const SerializationObserver&) = delete;
    SerializationObserver& operator=(const SerializationObserver&) = delete;

   private:
    const QueuedCell& cell_;
  };

  mutable std::mutex mutex_;
  mutable std::atomic<int> waiting_{0};
  mutable std::atomic<int> worst_queue_{0};
  T value_;
  Scope scope_;
};

}  // namespace stamp::shm
