#pragma once
/// \file swmr_matrix.hpp
/// \brief Single-writer multiple-reader shared matrix — the APSP pattern.
///
/// The paper's APSP example relies on a shared n x n vector where "each
/// process has its own portion to update": process i alone writes row i,
/// everyone reads all rows, and no synchronization is required. Entries are
/// atomics with relaxed element access (row ownership makes every per-element
/// write racefree against other writes; readers may see a mix of old and new
/// values, which is exactly the asynchrony the algorithm tolerates).
///
/// Reads of a row are charged intra- or inter-processor depending on whether
/// the row's owner is co-located with the reader.

#include "runtime/executor.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

namespace stamp::shm {

template <typename T>
class SwmrMatrix {
 public:
  /// Creates an n-rows x m-cols matrix; row i is owned (writable) by
  /// process i. Requires rows <= process count at use time.
  SwmrMatrix(int rows, int cols, T initial = T{})
      : rows_(rows), cols_(cols), cells_(static_cast<std::size_t>(rows) * cols) {
    if (rows < 1 || cols < 1)
      throw std::invalid_argument("SwmrMatrix: empty dimensions");
    for (auto& c : cells_) c.store(initial, std::memory_order_relaxed);
  }

  SwmrMatrix(const SwmrMatrix&) = delete;
  SwmrMatrix& operator=(const SwmrMatrix&) = delete;

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  /// Read element (r, c); charged as one shared read, classified by whether
  /// row r's owner (process r) shares the reader's processor.
  [[nodiscard]] T read(runtime::Context& ctx, int r, int c) const {
    ctx.recorder().shm_read(owner_intra(ctx, r));
    return at(r, c).load(std::memory_order_acquire);
  }

  /// Read a whole row (one shared read per element).
  [[nodiscard]] std::vector<T> read_row(runtime::Context& ctx, int r) const {
    ctx.recorder().shm_read(owner_intra(ctx, r), static_cast<double>(cols_));
    std::vector<T> row(static_cast<std::size_t>(cols_));
    for (int c = 0; c < cols_; ++c)
      row[static_cast<std::size_t>(c)] = at(r, c).load(std::memory_order_acquire);
    return row;
  }

  /// Read the whole matrix (n*m shared reads, split per row owner).
  [[nodiscard]] std::vector<T> read_all(runtime::Context& ctx) const {
    std::vector<T> snapshot(cells_.size());
    for (int r = 0; r < rows_; ++r) {
      ctx.recorder().shm_read(owner_intra(ctx, r), static_cast<double>(cols_));
      for (int c = 0; c < cols_; ++c)
        snapshot[index(r, c)] = at(r, c).load(std::memory_order_acquire);
    }
    return snapshot;
  }

  /// Write element (r, c). Only the owning process may write its row — the
  /// single-writer discipline is enforced, not assumed.
  void write(runtime::Context& ctx, int r, int c, T value) {
    require_owner(ctx, r);
    ctx.recorder().shm_write(owner_intra(ctx, r));
    at(r, c).store(value, std::memory_order_release);
  }

  /// Write a whole row (one shared write per element).
  void write_row(runtime::Context& ctx, int r, const std::vector<T>& row) {
    require_owner(ctx, r);
    if (static_cast<int>(row.size()) != cols_)
      throw std::invalid_argument("SwmrMatrix: row size mismatch");
    ctx.recorder().shm_write(owner_intra(ctx, r), static_cast<double>(cols_));
    for (int c = 0; c < cols_; ++c)
      at(r, c).store(row[static_cast<std::size_t>(c)], std::memory_order_release);
  }

  /// Uninstrumented snapshot for initialization / verification.
  [[nodiscard]] T peek(int r, int c) const {
    return at(r, c).load(std::memory_order_acquire);
  }
  void poke(int r, int c, T value) {
    at(r, c).store(value, std::memory_order_release);
  }

 private:
  [[nodiscard]] std::size_t index(int r, int c) const {
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
      throw std::out_of_range("SwmrMatrix: index out of range");
    return static_cast<std::size_t>(r) * cols_ + c;
  }
  [[nodiscard]] std::atomic<T>& at(int r, int c) { return cells_[index(r, c)]; }
  [[nodiscard]] const std::atomic<T>& at(int r, int c) const {
    return cells_[index(r, c)];
  }

  [[nodiscard]] bool owner_intra(runtime::Context& ctx, int row) const {
    // Rows beyond the process count have no owner; charge as inter.
    if (row >= ctx.process_count()) return false;
    return row == ctx.id() || ctx.intra_with(row);
  }

  void require_owner(runtime::Context& ctx, int row) const {
    if (ctx.id() != row)
      throw std::logic_error("SwmrMatrix: write by non-owner process");
  }

  int rows_;
  int cols_;
  std::vector<std::atomic<T>> cells_;
};

}  // namespace stamp::shm
