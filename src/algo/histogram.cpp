#include "algo/histogram.hpp"

#include "runtime/barrier.hpp"
#include "runtime/instrument.hpp"
#include "shm/shared_region.hpp"
#include "stm/stm.hpp"

#include <cmath>
#include <thread>
#include <memory>
#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

/// Deterministic per-item bin choice with optional skew: bin index is drawn
/// from a power-law-ish distribution when skew > 0.
int pick_bin(std::mt19937_64& rng, int bins, double skew) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  if (skew <= 0) {
    return static_cast<int>(uni(rng) * bins) % bins;
  }
  // Inverse-transform a truncated power law: heavier skew -> lower bins.
  const double u = uni(rng);
  const double x = std::pow(u, 1.0 + skew);
  const int bin = static_cast<int>(x * bins);
  return bin >= bins ? bins - 1 : bin;
}

}  // namespace

std::vector<long long> histogram_reference(const HistogramWorkload& w) {
  std::vector<long long> bins(static_cast<std::size_t>(w.bins), 0);
  for (int p = 0; p < w.processes; ++p) {
    std::mt19937_64 rng(w.seed + static_cast<std::uint64_t>(p) * 104'729);
    for (int k = 0; k < w.items_per_process; ++k)
      ++bins[static_cast<std::size_t>(pick_bin(rng, w.bins, w.skew))];
  }
  return bins;
}

HistogramRunResult run_histogram(const Topology& topology,
                                 const HistogramWorkload& w, ExecMode exec,
                                 CommMode comm) {
  if (w.processes < 1 || w.bins < 1 || w.items_per_process < 0 || w.rounds < 1)
    throw std::invalid_argument("run_histogram: bad workload");

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, w.processes,
                                              w.distribution);

  // Substrates for the four quadrants. Only the relevant ones get used.
  stm::StmRuntime stm_rt(stm::make_manager("backoff"));
  std::vector<std::unique_ptr<stm::TVar<long long>>> tvar_bins;
  std::vector<std::unique_ptr<shm::QueuedCell<long long>>> queued_bins;
  for (int b = 0; b < w.bins; ++b) {
    tvar_bins.push_back(std::make_unique<stm::TVar<long long>>(0));
    queued_bins.push_back(std::make_unique<shm::QueuedCell<long long>>(0));
  }
  // async/async: per-process private bins, merged after the parallel phase.
  std::vector<std::vector<long long>> private_bins(
      static_cast<std::size_t>(w.processes),
      std::vector<long long>(static_cast<std::size_t>(w.bins), 0));

  runtime::PhaseBarrier barrier(w.processes);
  const int per_round = (w.items_per_process + w.rounds - 1) / w.rounds;

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    std::mt19937_64 rng(w.seed + static_cast<std::uint64_t>(ctx.id()) * 104'729);
    int remaining = w.items_per_process;
    for (int r = 0; r < w.rounds && remaining > 0; ++r) {
      const runtime::UnitScope unit(ctx.recorder());
      ctx.int_ops(1);  // loop check
      const int batch = remaining < per_round ? remaining : per_round;
      remaining -= batch;
      {
        const runtime::RoundScope round(ctx.recorder());
        for (int k = 0; k < batch; ++k) {
          const int bin = pick_bin(rng, w.bins, w.skew);
          ctx.int_ops(3);  // classify + index arithmetic
          if (exec == ExecMode::Transactional) {
            stm::TVar<long long>& cell = *tvar_bins[static_cast<std::size_t>(bin)];
            stm_rt.atomically(ctx, [&](stm::Transaction& tx) {
              const long long value = tx.read(cell);
              if (w.preemption_points) std::this_thread::yield();
              tx.write(cell, value + 1);
              return true;
            });
          } else if (comm == CommMode::Synchronous) {
            queued_bins[static_cast<std::size_t>(bin)]->update(
                ctx, [&](long long& v) {
                  if (w.preemption_points) std::this_thread::yield();
                  ++v;
                });
          } else {
            // async/async: private update; merge is the explicit sync.
            ++private_bins[static_cast<std::size_t>(ctx.id())]
                          [static_cast<std::size_t>(bin)];
            ctx.int_ops(1);
          }
        }
      }
      if (comm == CommMode::Synchronous) barrier.arrive_and_wait();
      ctx.int_ops(1);  // termination check
    }
    // Drain skipped barrier phases so synch_comm processes stay aligned even
    // when batches divide unevenly.
    if (comm == CommMode::Synchronous) {
      int rounds_used = (w.items_per_process + per_round - 1) /
                        (per_round > 0 ? per_round : 1);
      for (int r = rounds_used; r < w.rounds; ++r) barrier.arrive_and_wait();
    }
  });

  HistogramRunResult result{.bins = {},
                            .exec = exec,
                            .comm = comm,
                            .stm_commits = stm_rt.stats().commits.load(),
                            .stm_aborts = stm_rt.stats().aborts.load(),
                            .stm_max_retries = stm_rt.stats().max_retries.load(),
                            .worst_serialization = 0,
                            .run = std::move(run),
                            .placement = placement};
  result.bins.assign(static_cast<std::size_t>(w.bins), 0);
  for (int b = 0; b < w.bins; ++b) {
    const auto ub = static_cast<std::size_t>(b);
    if (exec == ExecMode::Transactional) {
      result.bins[ub] = tvar_bins[ub]->peek();
    } else if (comm == CommMode::Synchronous) {
      result.bins[ub] = queued_bins[ub]->peek();
      result.worst_serialization =
          std::max(result.worst_serialization,
                   queued_bins[ub]->worst_serialization());
    } else {
      for (int p = 0; p < w.processes; ++p)
        result.bins[ub] += private_bins[static_cast<std::size_t>(p)][ub];
    }
  }
  return result;
}

}  // namespace stamp::algo
