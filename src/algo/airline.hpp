#pragma once
/// \file airline.hpp
/// \brief The paper's airline-reservation example: `reserve` with attributes
///        [inter_proc, trans_exec] and async_comm subtransactions, including
///        the partial-commit decision procedure.
///
/// A multi-leg reservation books seats on up to three flight legs. Each leg
/// booking is its own transaction (the async_comm flavor: subtransactions run
/// independently, possibly on different processors). The decision procedure
/// is the paper's: all commit -> success; none commit -> failure; some commit
/// -> success if the itinerary is still useful (the committed legs stand).
/// An all-or-nothing policy (compensating the committed legs) is provided for
/// comparison.

#include "runtime/executor.hpp"
#include "stm/stm.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace stamp::algo {

/// A flight network: legs with seat counters.
class FlightNetwork {
 public:
  FlightNetwork(int legs, int seats_per_leg);

  [[nodiscard]] int leg_count() const noexcept {
    return static_cast<int>(seats_.size());
  }
  [[nodiscard]] stm::TVar<int>& seats(int leg) { return *seats_.at(leg); }

  /// Uninstrumented remaining seats on a leg.
  [[nodiscard]] int remaining(int leg) const { return seats_.at(leg)->peek(); }
  /// Total seats booked over all legs.
  [[nodiscard]] long long booked_total(int seats_per_leg) const;

 private:
  std::vector<std::unique_ptr<stm::TVar<int>>> seats_;
};

/// How reserve treats partially-committed itineraries.
enum class ReservePolicy {
  Partial,       ///< the paper's decision procedure: keep committed legs
  AllOrNothing,  ///< compensate (release) committed legs on any failure
};

/// Outcome of one reserve call.
struct ReserveOutcome {
  bool success = false;
  int legs_committed = 0;  ///< of the legs attempted
};

/// Book one seat on each leg of `itinerary` (1..3 legs). Each leg is an
/// independent transaction (`rsrv(...) [trans_exec, async_comm]`).
[[nodiscard]] ReserveOutcome reserve(runtime::Context& ctx, stm::StmRuntime& rt,
                                     FlightNetwork& net,
                                     const std::vector<int>& itinerary,
                                     ReservePolicy policy);

/// Workload: each process books random 3-leg itineraries.
struct ReservationWorkload {
  int processes = 8;
  int reservations_per_process = 500;
  int legs = 12;
  int seats_per_leg = 200;
  ReservePolicy policy = ReservePolicy::Partial;
  std::uint64_t seed = 7;
  Distribution distribution = Distribution::InterProc;  // the paper's choice
};

struct ReservationRunResult {
  long long attempted = 0;
  long long succeeded = 0;
  long long failed = 0;
  long long legs_booked = 0;     ///< seats actually committed
  long long overbooked_legs = 0; ///< legs with negative seats (must be 0)
  std::uint64_t stm_commits = 0;
  std::uint64_t stm_aborts = 0;
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

[[nodiscard]] ReservationRunResult run_reservation_workload(
    const Topology& topology, const ReservationWorkload& workload,
    const std::string& contention_manager = "backoff");

}  // namespace stamp::algo
