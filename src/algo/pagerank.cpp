#include "algo/pagerank.hpp"

#include "runtime/barrier.hpp"
#include "runtime/quiescence.hpp"
#include "runtime/instrument.hpp"
#include "shm/swmr_matrix.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  int begin = 0;
  int end = 0;
};

Block block_of(int n, int p, int rank) {
  const int base = n / p;
  const int extra = n % p;
  Block b;
  b.begin = rank * base + std::min(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

/// Column-stochastic transition structure of g's unit edges.
struct Transition {
  std::vector<int> out_degree;
  [[nodiscard]] bool has_edge(const Graph& g, int u, int v) const {
    return u != v && g.w(u, v) != Graph::kInfinity;
  }
};

Transition build_transition(const Graph& g) {
  Transition t;
  t.out_degree.assign(static_cast<std::size_t>(g.n), 0);
  for (int u = 0; u < g.n; ++u)
    for (int v = 0; v < g.n; ++v)
      if (u != v && g.w(u, v) != Graph::kInfinity)
        ++t.out_degree[static_cast<std::size_t>(u)];
  return t;
}

/// One damped update of rank[v] given the full previous vector.
double update_vertex(const Graph& g, const Transition& t,
                     const std::vector<double>& prev, double damping, int v) {
  const int n = g.n;
  double in_flow = 0;
  double dangling = 0;
  for (int u = 0; u < n; ++u) {
    const int deg = t.out_degree[static_cast<std::size_t>(u)];
    if (deg == 0) {
      if (u != v) dangling += prev[static_cast<std::size_t>(u)];
      continue;
    }
    if (t.has_edge(g, u, v)) in_flow += prev[static_cast<std::size_t>(u)] / deg;
  }
  // Dangling mass spreads uniformly over the other n-1 vertices.
  const double base = (1.0 - damping) / n;
  return base + damping * (in_flow + dangling / std::max(n - 1, 1));
}

}  // namespace

std::vector<double> pagerank_reference(const Graph& g, double damping,
                                       double tolerance, int max_rounds) {
  const int n = g.n;
  const Transition t = build_transition(g);
  std::vector<double> rank(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int round = 0; round < max_rounds; ++round) {
    double delta = 0;
    for (int v = 0; v < n; ++v) {
      next[static_cast<std::size_t>(v)] = update_vertex(g, t, rank, damping, v);
      delta = std::max(delta, std::abs(next[static_cast<std::size_t>(v)] -
                                       rank[static_cast<std::size_t>(v)]));
    }
    rank.swap(next);
    if (delta < tolerance) break;
  }
  return rank;
}

PageRankResult pagerank_distributed(const Graph& g, const Topology& topology,
                                    const PageRankOptions& options) {
  const int n = g.n;
  const int p = options.processes;
  if (p < 1 || p > n)
    throw std::invalid_argument("pagerank: need 1 <= processes <= n");
  if (options.damping <= 0 || options.damping >= 1)
    throw std::invalid_argument("pagerank: damping must be in (0, 1)");

  const Transition trans = build_transition(g);
  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, p,
                                              options.distribution);

  std::vector<Block> blocks(static_cast<std::size_t>(p));
  int widest = 0;
  for (int r = 0; r < p; ++r) {
    blocks[static_cast<std::size_t>(r)] = block_of(n, p, r);
    widest = std::max(widest, blocks[static_cast<std::size_t>(r)].end -
                                  blocks[static_cast<std::size_t>(r)].begin);
  }
  shm::SwmrMatrix<double> ranks(p, std::max(widest, 1), 0.0);
  for (int r = 0; r < p; ++r) {
    const Block b = blocks[static_cast<std::size_t>(r)];
    for (int v = b.begin; v < b.end; ++v) ranks.poke(r, v - b.begin, 1.0 / n);
  }

  auto owner_of = [&](int v) {
    for (int r = 0; r < p; ++r)
      if (v >= blocks[static_cast<std::size_t>(r)].begin &&
          v < blocks[static_cast<std::size_t>(r)].end)
        return r;
    return p - 1;
  };

  runtime::PhaseBarrier barrier(p);
  std::vector<std::atomic<int>> round_converged(
      static_cast<std::size_t>(options.max_rounds));
  for (auto& f : round_converged) f.store(0, std::memory_order_relaxed);
  runtime::QuiescenceDetector quiescence(p);

  std::vector<int> rounds_done(static_cast<std::size_t>(p), 0);

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const Block block = blocks[static_cast<std::size_t>(me)];
    const int width = block.end - block.begin;

    auto snapshot_ranks = [&](std::vector<double>& prev) {
      const std::vector<double> snap = ranks.read_all(ctx);
      for (int v = 0; v < n; ++v) {
        const int r = owner_of(v);
        prev[static_cast<std::size_t>(v)] =
            snap[static_cast<std::size_t>(r) * ranks.cols() +
                 (v - blocks[static_cast<std::size_t>(r)].begin)];
      }
    };

    std::vector<double> prev(static_cast<std::size_t>(n), 0.0);
    std::vector<double> mine(static_cast<std::size_t>(std::max(width, 1)), 0.0);

    // One damped sweep of the owned block. Under async_comm, sub-tolerance
    // updates are not published, so the publication counter settles once
    // every block sits within tolerance of the (contraction) fixed point.
    auto damped_sweep = [&](bool publish_only_significant) {
      const runtime::UnitScope unit(ctx.recorder());
      ctx.int_ops(1);
      double delta = 0;
      bool published = false;
      {
        const runtime::RoundScope round(ctx.recorder());
        snapshot_ranks(prev);
        for (int v = block.begin; v < block.end; ++v) {
          const double updated =
              update_vertex(g, trans, prev, options.damping, v);
          delta = std::max(delta,
                           std::abs(updated - prev[static_cast<std::size_t>(v)]));
          mine[static_cast<std::size_t>(v - block.begin)] = updated;
        }
        // ~2 fp ops per (u, v) pair examined plus the damped combine.
        ctx.fp_ops(2.0 * width * n + 3.0 * width);
        ctx.int_ops(static_cast<double>(width) * n);
        if (!publish_only_significant || delta >= options.tolerance) {
          for (int v = block.begin; v < block.end; ++v)
            ranks.write(ctx, me, v - block.begin,
                        mine[static_cast<std::size_t>(v - block.begin)]);
          published = true;
        }
      }
      ctx.int_ops(2);
      return std::pair<bool, double>(published, delta);
    };

    if (options.comm == CommMode::Synchronous) {
      for (int t = 0; t < options.max_rounds; ++t) {
        const double delta = damped_sweep(false).second;
        rounds_done[static_cast<std::size_t>(me)] = t + 1;
        if (delta < options.tolerance)
          round_converged[static_cast<std::size_t>(t)].fetch_add(
              1, std::memory_order_acq_rel);
        barrier.arrive_and_wait();
        if (round_converged[static_cast<std::size_t>(t)].load(
                std::memory_order_acquire) == p)
          break;
      }
    } else {
      rounds_done[static_cast<std::size_t>(me)] = runtime::run_to_quiescence(
          quiescence, me, [&] { return damped_sweep(true).first; },
          options.max_rounds);
    }
  });

  PageRankResult result{.ranks = std::vector<double>(static_cast<std::size_t>(n)),
                        .rounds = rounds_done,
                        .run = std::move(run),
                        .placement = placement};
  for (int r = 0; r < p; ++r) {
    const Block b = blocks[static_cast<std::size_t>(r)];
    for (int v = b.begin; v < b.end; ++v)
      result.ranks[static_cast<std::size_t>(v)] = ranks.peek(r, v - b.begin);
  }
  return result;
}

}  // namespace stamp::algo
