#pragma once
/// \file matmul.hpp
/// \brief Dense matrix multiply, 1-D SUMMA style: row-block-distributed A and
///        C; B travels as broadcast panels — a bandwidth-heavy STAMP workload
///        with log-depth collective rounds.
///
/// Round r (one S-round per panel): the owner of panel r broadcasts its rows
/// of B down a binomial tree; every process multiplies the matching columns
/// of its A block into its C block. Attributes:
/// [intra_proc, async_exec, synch_comm].

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

struct Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<double> data;  ///< row-major

  [[nodiscard]] double at(int r, int c) const {
    return data[static_cast<std::size_t>(r) * cols + c];
  }
  [[nodiscard]] double& at(int r, int c) {
    return data[static_cast<std::size_t>(r) * cols + c];
  }
};

/// Deterministic random matrix with entries in [-1, 1].
[[nodiscard]] Matrix make_random_matrix(int rows, int cols, std::uint64_t seed);

/// Sequential reference product.
[[nodiscard]] Matrix matmul_reference(const Matrix& a, const Matrix& b);

struct MatmulWorkload {
  int processes = 8;
  int n = 64;  ///< square matrices n x n
  std::uint64_t seed = 23;
  Distribution distribution = Distribution::IntraProc;
};

struct MatmulRunResult {
  Matrix c;
  double max_abs_error = 0;  ///< vs the sequential reference
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

[[nodiscard]] MatmulRunResult run_matmul(const Topology& topology,
                                         const MatmulWorkload& workload);

}  // namespace stamp::algo
