#pragma once
/// \file kmeans.hpp
/// \brief Distributed k-means — a data-parallel workload built on the
///        log-depth collectives (assign locally, tree-reduce cluster sums,
///        broadcast new centroids). Attributes:
///        [intra_proc, async_exec, synch_comm].
///
/// Coordinates are integers, so the reduction is exact and the distributed
/// result is bit-identical to the sequential reference regardless of the
/// combine order (the tree reduce needs a commutative-associative operator).

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

struct KMeansWorkload {
  int processes = 8;
  long long points = 4096;
  int clusters = 5;
  int rounds = 12;
  std::uint64_t seed = 73;
  Distribution distribution = Distribution::IntraProc;
};

/// A 2-D point with integer coordinates.
struct Point2 {
  long long x = 0;
  long long y = 0;
  friend bool operator==(const Point2&, const Point2&) = default;
};

struct KMeansResult {
  std::vector<Point2> centroids;       ///< final integer centroids
  std::vector<long long> cluster_sizes;
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// The deterministic input points (clustered blobs).
[[nodiscard]] std::vector<Point2> kmeans_input(const KMeansWorkload& w);

/// Sequential reference with the same update rule (integer centroid = sum /
/// count with truncating division; empty clusters keep their centroid).
[[nodiscard]] std::vector<Point2> kmeans_reference(const KMeansWorkload& w);

[[nodiscard]] KMeansResult kmeans_distributed(const Topology& topology,
                                              const KMeansWorkload& w);

}  // namespace stamp::algo
