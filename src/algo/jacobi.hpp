#pragma once
/// \file jacobi.hpp
/// \brief The paper's first example: Jacobi iteration for A x = b as a
///        distributed STAMP algorithm with attributes
///        [intra_proc, async_exec, synch_comm].
///
/// Each STAMP process owns a block of components of x. One S-unit is one
/// iteration of the while loop: an S-round (receive x(t) from all peers,
/// compute the owned components of x(t+1), send them to all peers, implicit
/// barrier from synch_comm) plus local loop-condition and termination checks.

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

/// A dense linear system A x = b with a strictly diagonally dominant A, so
/// Jacobi converges.
struct LinearSystem {
  int n = 0;
  std::vector<double> A;  ///< row-major n x n
  std::vector<double> b;

  [[nodiscard]] double a(int i, int j) const {
    return A[static_cast<std::size_t>(i) * n + j];
  }
};

/// Deterministic generator: off-diagonals in [-1, 1], diagonal dominant by
/// `dominance` (> 1), b in [-1, 1].
[[nodiscard]] LinearSystem make_diagonally_dominant_system(int n,
                                                           std::uint64_t seed,
                                                           double dominance = 2.0);

/// Sequential Jacobi baseline.
struct JacobiResult {
  std::vector<double> x;
  int iterations = 0;
  double final_delta = 0;  ///< max |x_i(t+1) - x_i(t)| at termination
  bool converged = false;
};

[[nodiscard]] JacobiResult jacobi_sequential(const LinearSystem& sys,
                                             double tolerance, int max_iters);

/// Options for the distributed STAMP run.
struct JacobiOptions {
  int processes = 4;
  double tolerance = 1e-10;
  int max_iters = 10'000;
  Distribution distribution = Distribution::IntraProc;  // the paper's choice
  /// Limit on processes per processor (0 = hardware limit) — used by the
  /// power-envelope experiment to run the "3 of 4 threads" configuration.
  int max_threads_per_processor = 0;
};

/// Outcome of a distributed run: solution plus full instrumentation.
struct DistributedJacobiResult {
  JacobiResult solution;
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// The distributed STAMP Jacobi of Section 4: block-distributed components,
/// all-to-all exchange each round, implicit barrier (synch_comm).
/// `options.processes` must not exceed n.
[[nodiscard]] DistributedJacobiResult jacobi_distributed(
    const LinearSystem& sys, const Topology& topology,
    const JacobiOptions& options);

/// Residual max_i |(A x - b)_i| — verification helper.
[[nodiscard]] double jacobi_residual(const LinearSystem& sys,
                                     const std::vector<double>& x);

}  // namespace stamp::algo
