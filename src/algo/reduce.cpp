#include "algo/reduce.hpp"

#include "msg/collectives.hpp"
#include "runtime/instrument.hpp"
#include "shm/shared_region.hpp"
#include "stm/stm.hpp"

#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

/// Deterministic payload: pseudo-random small integers.
std::vector<long long> make_array(const ReduceWorkload& w) {
  std::vector<long long> data(static_cast<std::size_t>(w.elements));
  std::mt19937_64 rng(w.seed);
  std::uniform_int_distribution<long long> dist(-100, 100);
  for (auto& v : data) v = dist(rng);
  return data;
}

struct Block {
  long long begin = 0;
  long long end = 0;
};

Block block_of(long long total, int p, int rank) {
  const long long base = total / p;
  const long long extra = total % p;
  Block b;
  b.begin = rank * base + std::min<long long>(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

}  // namespace

const char* to_string(ReduceVariant v) noexcept {
  switch (v) {
    case ReduceVariant::Tree: return "tree";
    case ReduceVariant::Doubling: return "doubling";
    case ReduceVariant::Queued: return "queued";
    case ReduceVariant::Stm: return "stm";
  }
  return "?";
}

ReduceRunResult run_reduce(const Topology& topology, const ReduceWorkload& w,
                           ReduceVariant variant) {
  if (w.processes < 1) throw std::invalid_argument("run_reduce: processes < 1");
  if (w.elements < 0) throw std::invalid_argument("run_reduce: negative length");
  if (variant == ReduceVariant::Doubling &&
      (w.processes & (w.processes - 1)) != 0)
    throw std::invalid_argument("run_reduce: doubling needs 2^k processes");

  const std::vector<long long> data = make_array(w);
  long long expected = 0;
  for (long long v : data) expected += v;

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, w.processes,
                                              w.distribution);

  msg::Communicator<long long> comm(w.processes, CommMode::Synchronous);
  shm::QueuedCell<long long> cell(0);
  stm::StmRuntime stm_rt(stm::make_manager("backoff"));
  stm::TVar<long long> tvar(0);

  std::vector<long long> root_result(static_cast<std::size_t>(w.processes), 0);

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const runtime::UnitScope unit(ctx.recorder());
    const Block block = block_of(w.elements, w.processes, ctx.id());
    // Local partial sum (one integer add per element).
    long long partial = 0;
    for (long long i = block.begin; i < block.end; ++i)
      partial += data[static_cast<std::size_t>(i)];
    ctx.int_ops(static_cast<double>(block.end - block.begin));

    const runtime::RoundScope round(ctx.recorder());
    auto plus = [](long long a, long long b) { return a + b; };
    switch (variant) {
      case ReduceVariant::Tree: {
        const long long total = msg::reduce_tree(ctx, comm, partial, plus);
        if (ctx.id() == 0) root_result[0] = total;
        break;
      }
      case ReduceVariant::Doubling: {
        root_result[static_cast<std::size_t>(ctx.id())] =
            msg::all_reduce_doubling(ctx, comm, partial, plus);
        break;
      }
      case ReduceVariant::Queued: {
        cell.update(ctx, [&](long long& v) { v += partial; });
        comm.barrier();  // everyone accumulated before anyone reads
        root_result[static_cast<std::size_t>(ctx.id())] = cell.read(ctx);
        break;
      }
      case ReduceVariant::Stm: {
        stm_rt.atomically(ctx, [&](stm::Transaction& tx) {
          tx.write(tvar, tx.read(tvar) + partial);
          return true;
        });
        comm.barrier();
        root_result[static_cast<std::size_t>(ctx.id())] =
            stm_rt.atomically(ctx, [&](stm::Transaction& tx) {
              return tx.read(tvar);
            });
        break;
      }
    }
  });

  ReduceRunResult result{.result = root_result[0],
                         .expected = expected,
                         .variant = variant,
                         .stm_aborts = stm_rt.stats().aborts.load(),
                         .worst_serialization = cell.worst_serialization(),
                         .run = std::move(run),
                         .placement = placement};
  return result;
}

}  // namespace stamp::algo
