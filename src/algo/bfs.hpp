#pragma once
/// \file bfs.hpp
/// \brief Level-synchronous and asynchronous parallel BFS over the
///        single-writer multi-reader shared-memory pattern.
///
/// Vertices are block-distributed; process i owns the distance entries of its
/// block (one SWMR row per process). The synchronous variant advances one
/// frontier level per barrier-separated round; the asynchronous variant
/// sweeps without barriers (label-correcting), which is correct because
/// distances only decrease — the same monotonicity argument as the paper's
/// APSP example. Attributes: [inter_proc, async_exec, synch_comm|async_comm].

#include "algo/apsp.hpp"  // Graph
#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <vector>

namespace stamp::algo {

struct BfsOptions {
  int processes = 8;
  int source = 0;
  CommMode comm = CommMode::Synchronous;
  Distribution distribution = Distribution::InterProc;
  int max_rounds = 0;  ///< 0 = derive from n
};

struct BfsResult {
  std::vector<int> depth;  ///< hop distance from source; -1 = unreachable
  std::vector<int> rounds;
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// Hop-count BFS treating g's finite-weight edges as unit edges.
[[nodiscard]] BfsResult bfs_distributed(const Graph& g, const Topology& topology,
                                        const BfsOptions& options);

/// Sequential reference BFS.
[[nodiscard]] std::vector<int> bfs_reference(const Graph& g, int source);

}  // namespace stamp::algo
