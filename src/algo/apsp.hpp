#pragma once
/// \file apsp.hpp
/// \brief The paper's third example: all-pairs shortest paths as a
///        distributed STAMP algorithm with attributes
///        [inter_proc, async_exec, async_comm].
///
/// The shared n x n distance matrix is single-writer multiple-reader: process
/// i owns row i, reads the whole matrix each round, relaxes its row with the
/// min-plus update x_ij = min_k (x_ik + x_kj), and writes the row back — no
/// synchronization required. The synchronous variant adds a barrier per round
/// for comparison (the paper's argument is that the asynchronous version can
/// converge in fewer rounds on heterogeneous machines).

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <limits>
#include <vector>

namespace stamp::algo {

/// A dense weighted digraph; missing edges hold `kInfinity`.
struct Graph {
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  int n = 0;
  std::vector<double> weight;  ///< row-major n x n; diagonal 0

  [[nodiscard]] double w(int i, int j) const {
    return weight[static_cast<std::size_t>(i) * n + j];
  }
};

/// Random digraph: each ordered pair (i != j) has an edge with probability
/// `density`, weight uniform in [1, max_weight]. Diagonal is 0.
[[nodiscard]] Graph make_random_graph(int n, std::uint64_t seed,
                                      double density = 0.3,
                                      double max_weight = 10.0);

/// Sequential Floyd–Warshall baseline (exact answer).
[[nodiscard]] std::vector<double> floyd_warshall(const Graph& g);

struct ApspOptions {
  CommMode comm = CommMode::Asynchronous;  ///< the paper uses async_comm
  Distribution distribution = Distribution::InterProc;
  int max_rounds = 0;  ///< 0 = n rounds (min-plus converges in <= n-1)
};

struct ApspResult {
  std::vector<double> distances;  ///< row-major n x n
  std::vector<int> rounds;        ///< per-process rounds executed
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// Distributed STAMP APSP with n processes (one per row). Requires
/// n <= total hardware threads of `topology`.
[[nodiscard]] ApspResult apsp_distributed(const Graph& g,
                                          const Topology& topology,
                                          const ApspOptions& options);

}  // namespace stamp::algo
