#include "algo/kmeans.hpp"

#include "msg/collectives.hpp"
#include "runtime/instrument.hpp"

#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  long long begin = 0;
  long long end = 0;
};

Block block_of(long long total, int p, int rank) {
  const long long base = total / p;
  const long long extra = total % p;
  Block b;
  b.begin = rank * base + std::min<long long>(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

void validate(const KMeansWorkload& w) {
  if (w.processes < 1) throw std::invalid_argument("kmeans: processes < 1");
  if (w.points < 0) throw std::invalid_argument("kmeans: negative points");
  if (w.clusters < 1) throw std::invalid_argument("kmeans: clusters < 1");
  if (w.rounds < 1) throw std::invalid_argument("kmeans: rounds < 1");
}

std::vector<Point2> initial_centroids(const KMeansWorkload& w) {
  // Deterministic spread, independent of the data: a diagonal of seeds.
  std::vector<Point2> c(static_cast<std::size_t>(w.clusters));
  for (int k = 0; k < w.clusters; ++k)
    c[static_cast<std::size_t>(k)] = Point2{k * 1000, k * 1000};
  return c;
}

long long sq_dist(const Point2& a, const Point2& b) {
  const long long dx = a.x - b.x;
  const long long dy = a.y - b.y;
  return dx * dx + dy * dy;
}

int nearest(const std::vector<Point2>& centroids, const Point2& p) {
  int best = 0;
  long long best_d = sq_dist(centroids[0], p);
  for (int k = 1; k < static_cast<int>(centroids.size()); ++k) {
    const long long d = sq_dist(centroids[static_cast<std::size_t>(k)], p);
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

/// Per-cluster accumulators flattened for the collectives: [sx, sy, count]*k.
using Sums = std::vector<long long>;

Sums accumulate(const std::vector<Point2>& points, Block block,
                const std::vector<Point2>& centroids) {
  Sums sums(3 * centroids.size(), 0);
  for (long long i = block.begin; i < block.end; ++i) {
    const Point2& p = points[static_cast<std::size_t>(i)];
    const int k = nearest(centroids, p);
    sums[static_cast<std::size_t>(3 * k)] += p.x;
    sums[static_cast<std::size_t>(3 * k + 1)] += p.y;
    sums[static_cast<std::size_t>(3 * k + 2)] += 1;
  }
  return sums;
}

void apply_sums(const Sums& sums, std::vector<Point2>& centroids) {
  for (int k = 0; k < static_cast<int>(centroids.size()); ++k) {
    const long long count = sums[static_cast<std::size_t>(3 * k + 2)];
    if (count == 0) continue;  // empty cluster keeps its centroid
    centroids[static_cast<std::size_t>(k)] =
        Point2{sums[static_cast<std::size_t>(3 * k)] / count,
               sums[static_cast<std::size_t>(3 * k + 1)] / count};
  }
}

}  // namespace

std::vector<Point2> kmeans_input(const KMeansWorkload& w) {
  validate(w);
  std::vector<Point2> points(static_cast<std::size_t>(w.points));
  std::mt19937_64 rng(w.seed);
  std::uniform_int_distribution<int> blob(0, w.clusters - 1);
  std::normal_distribution<double> noise(0.0, 150.0);
  for (auto& p : points) {
    const int b = blob(rng);
    p.x = b * 1000 + static_cast<long long>(noise(rng));
    p.y = b * 1000 + static_cast<long long>(noise(rng));
  }
  return points;
}

std::vector<Point2> kmeans_reference(const KMeansWorkload& w) {
  const std::vector<Point2> points = kmeans_input(w);
  std::vector<Point2> centroids = initial_centroids(w);
  const Block all{0, w.points};
  for (int round = 0; round < w.rounds; ++round)
    apply_sums(accumulate(points, all, centroids), centroids);
  return centroids;
}

KMeansResult kmeans_distributed(const Topology& topology,
                                const KMeansWorkload& w) {
  validate(w);
  const int p = w.processes;
  const std::vector<Point2> points = kmeans_input(w);

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, p, w.distribution);

  msg::Communicator<Sums> comm(p, CommMode::Synchronous);
  std::vector<std::vector<Point2>> final_centroids(static_cast<std::size_t>(p));
  std::vector<long long> sizes(static_cast<std::size_t>(w.clusters), 0);

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const Block block = block_of(w.points, p, me);
    std::vector<Point2> centroids = initial_centroids(w);

    for (int round = 0; round < w.rounds; ++round) {
      const runtime::UnitScope unit(ctx.recorder());
      ctx.int_ops(1);
      {
        const runtime::RoundScope sround(ctx.recorder());
        // Local assignment: ~(4 mul/add + compare) per point per cluster.
        Sums local = accumulate(points, block, centroids);
        ctx.int_ops(static_cast<double>(block.end - block.begin) *
                    w.clusters * 5.0);
        // Global integer reduction (exact, commutative) + broadcast.
        Sums global = msg::reduce_tree(
            ctx, comm, std::move(local),
            [](Sums a, Sums b) {
              for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
              return a;
            });
        comm.barrier();  // separate the reduce from the broadcast
        global = msg::broadcast_tree(ctx, comm, std::move(global), 0);
        comm.barrier();
        apply_sums(global, centroids);
        ctx.int_ops(3.0 * w.clusters);
        if (round + 1 == w.rounds && me == 0)
          for (int k = 0; k < w.clusters; ++k)
            sizes[static_cast<std::size_t>(k)] =
                global[static_cast<std::size_t>(3 * k + 2)];
      }
      ctx.int_ops(1);
    }
    final_centroids[static_cast<std::size_t>(me)] = centroids;
  });

  KMeansResult result{.centroids = final_centroids.front(),
                      .cluster_sizes = std::move(sizes),
                      .run = std::move(run),
                      .placement = placement};
  return result;
}

}  // namespace stamp::algo
