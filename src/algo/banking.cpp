#include "algo/banking.hpp"

#include <random>
#include <thread>
#include <stdexcept>

namespace stamp::algo {

Bank::Bank(int accounts, long initial_balance) {
  if (accounts < 2) throw std::invalid_argument("Bank: need >= 2 accounts");
  accounts_.reserve(static_cast<std::size_t>(accounts));
  for (int i = 0; i < accounts; ++i)
    accounts_.push_back(std::make_unique<stm::TVar<long>>(initial_balance));
}

long Bank::total_balance() const {
  long total = 0;
  for (const auto& a : accounts_) total += a->peek();
  return total;
}

bool Bank::transfer(runtime::Context& ctx, stm::StmRuntime& rt, int from,
                    int to, long amount, bool preemption_point) {
  if (from == to) throw std::invalid_argument("transfer: from == to");
  stm::TVar<long>& a = account(from);
  stm::TVar<long>& b = account(to);
  // transfer(a, b, m) [intra_proc, trans_exec]
  return rt.atomically(ctx, [&](stm::Transaction& tx) {
    // cmit1 = a.withdraw(m) [trans_exec, synch_comm]
    const bool cmit1 = stm::subtransaction(tx, [&](stm::Transaction& sub) {
      const long balance = sub.read(a);
      if (balance < amount) return false;  // insufficient: sub-abort
      sub.write(a, balance - amount);
      return true;
    });
    if (preemption_point) std::this_thread::yield();
    // cmit2 = b.deposit(m) [trans_exec, synch_comm]
    const bool cmit2 = stm::subtransaction(tx, [&](stm::Transaction& sub) {
      sub.write(b, sub.read(b) + amount);
      return true;
    });
    // if (cmit1 and cmit2) then return(true) else return(false)
    if (cmit1 && cmit2) return true;
    // Parent aborts: discard everything either subtransaction buffered.
    tx.rollback_to(0);
    return false;
  });
}

long Bank::balance(runtime::Context& ctx, stm::StmRuntime& rt, int i) {
  stm::TVar<long>& a = account(i);
  return rt.atomically(ctx, [&](stm::Transaction& tx) { return tx.read(a); });
}

TransferRunResult run_transfer_workload(const Topology& topology,
                                        const TransferWorkload& w,
                                        const std::string& contention_manager) {
  if (w.processes < 1) throw std::invalid_argument("need >= 1 process");
  if (w.hot_fraction < 0 || w.hot_fraction > 1)
    throw std::invalid_argument("hot_fraction must be in [0, 1]");

  Bank bank(w.accounts, w.initial_balance);
  stm::StmRuntime rt(stm::make_manager(contention_manager));

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, w.processes,
                                              w.distribution);

  std::vector<long long> committed(static_cast<std::size_t>(w.processes), 0);
  std::vector<long long> insufficient(static_cast<std::size_t>(w.processes), 0);

  const long balance_before = bank.total_balance();

  runtime::RunResult run =
      runtime::run_processes(placement, [&](runtime::Context& ctx) {
        std::mt19937_64 rng(w.seed + static_cast<std::uint64_t>(ctx.id()) * 7919);
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        std::uniform_int_distribution<int> acct(0, w.accounts - 1);
        std::uniform_int_distribution<long> amt(1, w.max_amount);
        for (int k = 0; k < w.transfers_per_process; ++k) {
          const runtime::UnitScope unit(ctx.recorder());
          int from;
          int to;
          if (coin(rng) < w.hot_fraction) {
            from = 0;
            to = 1;
          } else {
            from = acct(rng);
            do {
              to = acct(rng);
            } while (to == from);
          }
          ctx.int_ops(4);  // pick accounts and amount
          bool ok = false;
          {
            const runtime::RoundScope round(ctx.recorder());
            ok = bank.transfer(ctx, rt, from, to, amt(rng),
                               w.preemption_points);
          }
          auto& counter = ok ? committed : insufficient;
          ++counter[static_cast<std::size_t>(ctx.id())];
          ctx.int_ops(1);  // tally
        }
      });

  TransferRunResult result{.attempted = 0,
                           .committed = 0,
                           .insufficient = 0,
                           .stm_commits = rt.stats().commits.load(),
                           .stm_aborts = rt.stats().aborts.load(),
                           .stm_max_retries = rt.stats().max_retries.load(),
                           .balance_before = balance_before,
                           .balance_after = bank.total_balance(),
                           .run = std::move(run),
                           .placement = placement};
  for (int i = 0; i < w.processes; ++i) {
    result.committed += committed[static_cast<std::size_t>(i)];
    result.insufficient += insufficient[static_cast<std::size_t>(i)];
  }
  result.attempted = result.committed + result.insufficient;
  return result;
}

}  // namespace stamp::algo
