#pragma once
/// \file gauss_seidel.hpp
/// \brief Red-black Gauss–Seidel — the classic answer to Jacobi's
///        data-dependence problem, as a two-phase STAMP algorithm.
///
/// Plain Gauss–Seidel uses in-sweep updates (faster convergence than Jacobi)
/// but serializes. The red-black ordering splits unknowns into two
/// independent sets: one S-round updates all "red" components (reading only
/// black), a second updates "black" (reading fresh red) — two barriered
/// rounds per iteration, each perfectly parallel. Attributes:
/// [intra_proc, async_exec, synch_comm]. Compared against Jacobi, the model
/// charges the same per-iteration communication but the iteration count
/// drops — exactly the algorithm-selection trade the model exists to price.

#include "algo/jacobi.hpp"  // LinearSystem
#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <vector>

namespace stamp::algo {

struct GaussSeidelOptions {
  int processes = 4;
  double tolerance = 1e-10;
  int max_iters = 10'000;
  Distribution distribution = Distribution::IntraProc;
};

struct GaussSeidelResult {
  std::vector<double> x;
  int iterations = 0;
  bool converged = false;
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// Sequential red-black Gauss-Seidel baseline (even indices = red).
[[nodiscard]] JacobiResult gauss_seidel_sequential(const LinearSystem& sys,
                                                   double tolerance,
                                                   int max_iters);

/// Distributed red-black Gauss-Seidel over shared memory (SWMR rows per
/// color block). Requires processes <= ceil(n/2).
[[nodiscard]] GaussSeidelResult gauss_seidel_distributed(
    const LinearSystem& sys, const Topology& topology,
    const GaussSeidelOptions& options);

}  // namespace stamp::algo
