#pragma once
/// \file histogram.hpp
/// \brief One workload, four synchrony quadrants — the Table 1 experiment.
///
/// Each process classifies a stream of values into shared bins. The same
/// logical computation runs under each (execution, communication) mode
/// combination of the paper's Table 1:
///
///  * trans_exec + synch_comm  — STM updates, barrier between rounds
///  * async_exec + synch_comm  — serialized (queued-cell) updates, barrier
///  * trans_exec + async_comm  — STM updates, no barriers
///  * async_exec + async_comm  — privatized per-process bins merged at the
///                               end (the designer-supplied synchronization
///                               async_comm requires)
///
/// All four produce the same histogram; they differ in T/E/P and in the
/// kappa / abort behaviour the cost model charges — exactly the comparison
/// Table 1 frames.

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace stamp::algo {

struct HistogramWorkload {
  int processes = 8;
  int bins = 16;
  int items_per_process = 2000;
  int rounds = 10;  ///< synch_comm variants barrier between rounds
  /// Zipf-like skew: 0 = uniform bins, larger = more traffic on low bins.
  double skew = 0.0;
  std::uint64_t seed = 3;
  Distribution distribution = Distribution::IntraProc;
  /// Insert a scheduler yield inside each shared update (between the
  /// transactional read and write, or while holding the queued cell). This
  /// widens the conflict window so contention effects (aborts, queueing) are
  /// observable even when the host serializes threads on few cores.
  bool preemption_points = false;
};

struct HistogramRunResult {
  std::vector<long long> bins;
  ExecMode exec{};
  CommMode comm{};
  std::uint64_t stm_commits = 0;
  std::uint64_t stm_aborts = 0;
  std::uint64_t stm_max_retries = 0;
  double worst_serialization = 0;  ///< QueuedCell kappa (async_exec variants)
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// Run the workload in the given Table-1 quadrant.
[[nodiscard]] HistogramRunResult run_histogram(const Topology& topology,
                                               const HistogramWorkload& workload,
                                               ExecMode exec, CommMode comm);

/// The exact histogram (sequential reference).
[[nodiscard]] std::vector<long long> histogram_reference(
    const HistogramWorkload& workload);

}  // namespace stamp::algo
