#pragma once
/// \file reduce.hpp
/// \brief Parallel reduction in four STAMP flavors — the canonical kernel for
///        comparing the synchrony quadrants and communication substrates.
///
/// Variants:
///  * `Tree`      — binomial-tree message reduce [async_exec, synch_comm-ish]
///  * `Doubling`  — recursive-doubling all-reduce (power-of-two processes)
///  * `Queued`    — shared-memory accumulation into one serialized cell
///                  (QSM-style; measures kappa) [async_exec, synch_comm]
///  * `Stm`       — transactional accumulation [trans_exec]
///
/// All variants reduce the same block-distributed array and must agree with
/// the sequential sum exactly (integer payloads, so associativity is free).

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

enum class ReduceVariant {
  Tree,
  Doubling,
  Queued,
  Stm,
};

[[nodiscard]] const char* to_string(ReduceVariant v) noexcept;

struct ReduceWorkload {
  int processes = 8;
  long long elements = 1 << 14;  ///< total array length, block-distributed
  std::uint64_t seed = 11;
  Distribution distribution = Distribution::IntraProc;
};

struct ReduceRunResult {
  long long result = 0;     ///< the reduction value (root's answer)
  long long expected = 0;   ///< sequential reference
  ReduceVariant variant{};
  std::uint64_t stm_aborts = 0;
  double worst_serialization = 0;
  runtime::RunResult run;
  runtime::PlacementMap placement;

  [[nodiscard]] bool correct() const noexcept { return result == expected; }
};

/// Run the reduction with the given variant. `Doubling` requires a
/// power-of-two process count.
[[nodiscard]] ReduceRunResult run_reduce(const Topology& topology,
                                         const ReduceWorkload& workload,
                                         ReduceVariant variant);

}  // namespace stamp::algo
