#include "algo/prefix_sum.hpp"

#include "msg/collectives.hpp"
#include "runtime/instrument.hpp"

#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  long long begin = 0;
  long long end = 0;
};

Block block_of(long long total, int p, int rank) {
  const long long base = total / p;
  const long long extra = total % p;
  Block b;
  b.begin = rank * base + std::min<long long>(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

}  // namespace

std::vector<long long> prefix_sum_input(const PrefixSumWorkload& w) {
  std::vector<long long> data(static_cast<std::size_t>(w.elements));
  std::mt19937_64 rng(w.seed);
  std::uniform_int_distribution<long long> dist(-50, 50);
  for (auto& v : data) v = dist(rng);
  return data;
}

std::vector<long long> prefix_sum_reference(const std::vector<long long>& input) {
  std::vector<long long> out(input.size());
  long long acc = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    acc += input[i];
    out[i] = acc;
  }
  return out;
}

PrefixSumRunResult run_prefix_sum(const Topology& topology,
                                  const PrefixSumWorkload& w) {
  if (w.processes < 1) throw std::invalid_argument("prefix_sum: processes < 1");
  if (w.elements < 0) throw std::invalid_argument("prefix_sum: negative length");

  const std::vector<long long> input = prefix_sum_input(w);
  std::vector<long long> output(input.size(), 0);

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, w.processes,
                                              w.distribution);
  msg::Communicator<long long> comm(w.processes, CommMode::Synchronous);

  runtime::RunResult run =
      runtime::run_processes(placement, [&](runtime::Context& ctx) {
        const runtime::UnitScope unit(ctx.recorder());
        const Block block = block_of(w.elements, w.processes, ctx.id());

        // Phase 1: local inclusive scan of the block.
        long long acc = 0;
        for (long long i = block.begin; i < block.end; ++i) {
          acc += input[static_cast<std::size_t>(i)];
          output[static_cast<std::size_t>(i)] = acc;
        }
        ctx.int_ops(static_cast<double>(block.end - block.begin));

        // Phase 2: inclusive scan of block totals across processes.
        long long inclusive = 0;
        {
          const runtime::RoundScope round(ctx.recorder());
          inclusive = msg::scan_inclusive(
              ctx, comm, acc, [](long long a, long long b) { return a + b; });
          ctx.int_ops(1);
        }
        const long long offset = inclusive - acc;  // exclusive offset

        // Phase 3: apply the offset to the block.
        for (long long i = block.begin; i < block.end; ++i)
          output[static_cast<std::size_t>(i)] += offset;
        ctx.int_ops(static_cast<double>(block.end - block.begin));
      });

  PrefixSumRunResult result{.output = std::move(output),
                            .expected = prefix_sum_reference(input),
                            .run = std::move(run),
                            .placement = placement};
  return result;
}

}  // namespace stamp::algo
