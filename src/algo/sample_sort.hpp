#pragma once
/// \file sample_sort.hpp
/// \brief Distributed sample sort — a heavyweight message-passing workload
///        for the STAMP model (multi-round, data-dependent communication).
///
/// Phases: local sort -> splitter selection (sample, gather, broadcast) ->
/// bucket exchange (all-to-all of value vectors) -> local merge. Attributes:
/// [inter_proc, async_exec, synch_comm]. The bucket exchange is the
/// interesting S-round: its message counts depend on the data distribution,
/// which the recorders capture per process.

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

struct SortWorkload {
  int processes = 8;
  long long elements = 1 << 14;
  std::uint64_t seed = 17;
  /// 0 = uniform keys; > 0 skews keys toward the low end (bucket imbalance).
  double skew = 0.0;
  Distribution distribution = Distribution::InterProc;
};

struct SortRunResult {
  std::vector<long long> output;  ///< globally sorted concatenation
  bool correct = false;           ///< equals std::sort of the input
  std::vector<long long> bucket_sizes;  ///< elements received per process
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

[[nodiscard]] SortRunResult run_sample_sort(const Topology& topology,
                                            const SortWorkload& workload);

/// The deterministic input the workload sorts.
[[nodiscard]] std::vector<long long> sort_input(const SortWorkload& w);

}  // namespace stamp::algo
