#include "algo/bfs.hpp"

#include "runtime/barrier.hpp"
#include "runtime/quiescence.hpp"
#include "runtime/instrument.hpp"
#include "shm/swmr_matrix.hpp"

#include <atomic>
#include <deque>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  int begin = 0;
  int end = 0;
};

Block block_of(int n, int p, int rank) {
  const int base = n / p;
  const int extra = n % p;
  Block b;
  b.begin = rank * base + std::min(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

constexpr int kUnreached = 1 << 29;

}  // namespace

std::vector<int> bfs_reference(const Graph& g, int source) {
  std::vector<int> depth(static_cast<std::size_t>(g.n), -1);
  std::deque<int> frontier{source};
  depth[static_cast<std::size_t>(source)] = 0;
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    for (int v = 0; v < g.n; ++v) {
      if (u == v || g.w(u, v) == Graph::kInfinity) continue;
      if (depth[static_cast<std::size_t>(v)] < 0) {
        depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(u)] + 1;
        frontier.push_back(v);
      }
    }
  }
  return depth;
}

BfsResult bfs_distributed(const Graph& g, const Topology& topology,
                          const BfsOptions& options) {
  const int n = g.n;
  const int p = options.processes;
  if (p < 1 || p > n) throw std::invalid_argument("bfs: need 1 <= processes <= n");
  if (options.source < 0 || options.source >= n)
    throw std::invalid_argument("bfs: source out of range");
  const int max_rounds =
      options.max_rounds > 0 ? options.max_rounds : 4 * n + 8;

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, p,
                                              options.distribution);

  // depth[v] lives in the row of v's owner: row r spans that block's
  // vertices. One row per process, width = widest block.
  std::vector<Block> blocks(static_cast<std::size_t>(p));
  int widest = 0;
  for (int r = 0; r < p; ++r) {
    blocks[static_cast<std::size_t>(r)] = block_of(n, p, r);
    widest = std::max(widest, blocks[static_cast<std::size_t>(r)].end -
                                  blocks[static_cast<std::size_t>(r)].begin);
  }
  shm::SwmrMatrix<int> depth(p, std::max(widest, 1), kUnreached);

  auto owner_of = [&](int v) {
    for (int r = 0; r < p; ++r)
      if (v >= blocks[static_cast<std::size_t>(r)].begin &&
          v < blocks[static_cast<std::size_t>(r)].end)
        return r;
    return p - 1;
  };
  const int source_owner = owner_of(options.source);
  depth.poke(source_owner,
             options.source - blocks[static_cast<std::size_t>(source_owner)].begin,
             0);

  runtime::PhaseBarrier barrier(p);
  std::vector<std::atomic<int>> round_changed(static_cast<std::size_t>(max_rounds));
  for (auto& f : round_changed) f.store(0, std::memory_order_relaxed);
  runtime::QuiescenceDetector quiescence(p);

  std::vector<int> rounds_done(static_cast<std::size_t>(p), 0);

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const Block block = blocks[static_cast<std::size_t>(me)];
    const int width = block.end - block.begin;

    // One relaxation sweep of the owned block: depth[v] = min over in-edges
    // (u, v) of depth[u] + 1. Returns true if any entry improved.
    auto sweep = [&](std::vector<int>& local) {
      // Snapshot all owners' rows (instrumented reads).
      const std::vector<int> snapshot = depth.read_all(ctx);
      auto snap_depth = [&](int v) {
        const int r = owner_of(v);
        return snapshot[static_cast<std::size_t>(r) * depth.cols() +
                        (v - blocks[static_cast<std::size_t>(r)].begin)];
      };
      bool changed = false;
      for (int v = block.begin; v < block.end; ++v) {
        int best = local[static_cast<std::size_t>(v - block.begin)];
        for (int u = 0; u < n; ++u) {
          if (u == v || g.w(u, v) == Graph::kInfinity) continue;
          const int cand = snap_depth(u) + 1;
          if (cand < best) best = cand;
        }
        if (best < local[static_cast<std::size_t>(v - block.begin)]) {
          local[static_cast<std::size_t>(v - block.begin)] = best;
          changed = true;
        }
      }
      ctx.int_ops(static_cast<double>(width) * n);
      return changed;
    };

    std::vector<int> local(static_cast<std::size_t>(std::max(width, 1)),
                           kUnreached);
    for (int v = block.begin; v < block.end; ++v)
      local[static_cast<std::size_t>(v - block.begin)] =
          depth.peek(me, v - block.begin);

    if (options.comm == CommMode::Synchronous) {
      for (int t = 0; t < max_rounds; ++t) {
        const runtime::UnitScope unit(ctx.recorder());
        ctx.int_ops(1);
        bool changed = false;
        {
          const runtime::RoundScope round(ctx.recorder());
          changed = sweep(local);
          if (changed) {
            for (int v = block.begin; v < block.end; ++v)
              depth.write(ctx, me, v - block.begin,
                          local[static_cast<std::size_t>(v - block.begin)]);
          }
        }
        if (changed)
          round_changed[static_cast<std::size_t>(t)].store(
              1, std::memory_order_release);
        barrier.arrive_and_wait();
        rounds_done[static_cast<std::size_t>(me)] = t + 1;
        ctx.int_ops(2);
        if (round_changed[static_cast<std::size_t>(t)].load(
                std::memory_order_acquire) == 0)
          break;
      }
      return;
    }

    // Asynchronous label-correcting sweeps with quiescence detection.
    rounds_done[static_cast<std::size_t>(me)] = runtime::run_to_quiescence(
        quiescence, me,
        [&] {
          const runtime::UnitScope unit(ctx.recorder());
          ctx.int_ops(1);
          bool changed = false;
          {
            const runtime::RoundScope round(ctx.recorder());
            changed = sweep(local);
            if (changed) {
              for (int v = block.begin; v < block.end; ++v)
                depth.write(ctx, me, v - block.begin,
                            local[static_cast<std::size_t>(v - block.begin)]);
            }
          }
          ctx.int_ops(2);
          return changed;
        },
        max_rounds);
  });

  BfsResult result{.depth = std::vector<int>(static_cast<std::size_t>(n), -1),
                   .rounds = rounds_done,
                   .run = std::move(run),
                   .placement = placement};
  for (int r = 0; r < p; ++r) {
    const Block block = blocks[static_cast<std::size_t>(r)];
    for (int v = block.begin; v < block.end; ++v) {
      const int d = depth.peek(r, v - block.begin);
      result.depth[static_cast<std::size_t>(v)] = d >= kUnreached ? -1 : d;
    }
  }
  return result;
}

}  // namespace stamp::algo
