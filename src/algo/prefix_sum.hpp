#pragma once
/// \file prefix_sum.hpp
/// \brief Block-distributed parallel prefix sum (scan) — the classic
///        three-phase algorithm on the STAMP runtime.
///
/// Phase 1: each process scans its block locally. Phase 2: the block totals
/// are combined with a Hillis–Steele inclusive scan over processes (log p
/// barrier-separated message rounds). Phase 3: each process adds its
/// exclusive offset. Attributes: [intra_proc, async_exec, synch_comm].

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

struct PrefixSumWorkload {
  int processes = 8;
  long long elements = 1 << 14;
  std::uint64_t seed = 13;
  Distribution distribution = Distribution::IntraProc;
};

struct PrefixSumRunResult {
  std::vector<long long> output;    ///< inclusive prefix sums
  std::vector<long long> expected;  ///< sequential reference
  runtime::RunResult run;
  runtime::PlacementMap placement;

  [[nodiscard]] bool correct() const noexcept { return output == expected; }
};

[[nodiscard]] PrefixSumRunResult run_prefix_sum(const Topology& topology,
                                                const PrefixSumWorkload& workload);

/// Sequential reference scan.
[[nodiscard]] std::vector<long long> prefix_sum_reference(
    const std::vector<long long>& input);

/// The deterministic input array the workload scans.
[[nodiscard]] std::vector<long long> prefix_sum_input(const PrefixSumWorkload& w);

}  // namespace stamp::algo
