#pragma once
/// \file pagerank.hpp
/// \brief PageRank-style damped iteration — a second iterative-fixed-point
///        workload (after Jacobi/APSP) exercising the SWMR shared-memory
///        pattern with floating-point convergence.
///
/// Process i owns a block of rank entries. Synchronous variant: barriered
/// power iteration (every round sees exactly the previous iterate, like the
/// paper's Jacobi). Asynchronous variant: chaotic iteration — processes sweep
/// at their own pace reading whatever ranks are published; the damped
/// iteration is a contraction, so it still converges to the same fixed point
/// (within tolerance rather than bitwise).

#include "algo/apsp.hpp"  // Graph
#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <vector>

namespace stamp::algo {

struct PageRankOptions {
  int processes = 8;
  double damping = 0.85;
  double tolerance = 1e-10;  ///< max |r_v(t+1) - r_v(t)| termination
  int max_rounds = 200;
  CommMode comm = CommMode::Synchronous;
  Distribution distribution = Distribution::InterProc;
};

struct PageRankResult {
  std::vector<double> ranks;
  std::vector<int> rounds;
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// Distributed PageRank over g's finite-weight edges (weights ignored;
/// dangling vertices redistribute uniformly).
[[nodiscard]] PageRankResult pagerank_distributed(const Graph& g,
                                                  const Topology& topology,
                                                  const PageRankOptions& options);

/// Sequential reference power iteration with the same parameters.
[[nodiscard]] std::vector<double> pagerank_reference(const Graph& g,
                                                     double damping,
                                                     double tolerance,
                                                     int max_rounds);

}  // namespace stamp::algo
