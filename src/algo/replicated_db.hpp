#pragma once
/// \file replicated_db.hpp
/// \brief The paper's own async_exec use cases, implemented:
///
/// "asynchronous distributed applications in which replicated servers access
///  a common consistency-critical database (with multiple writers) will be
///  good candidates for async_exec with the synchronous communication mode.
///  Distributed server applications with single-writer multiple-reader
///  shared memory or database access could use async_exec with the
///  asynchronous communication mode."
///
/// Two modes of one update-heavy key-value workload:
///  * `SharedLog`  [async_exec, synch_comm]: every server appends its
///    operations to one serialized commit log (a queued cell — multiple
///    writers, consistency-critical), then replays the log into its replica.
///    All replicas must be identical.
///  * `Sharded`    [async_exec, async_comm]: keys are partitioned; servers
///    route operations to each key's single writer by message passing and
///    the owners apply them — no serialization anywhere, with the explicit
///    end-of-stream synchronization async_comm requires.

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

enum class DbMode {
  SharedLog,  ///< async_exec + synch_comm (serialized multi-writer log)
  Sharded,    ///< async_exec + async_comm (single writer per key)
};

[[nodiscard]] const char* to_string(DbMode m) noexcept;

struct DbWorkload {
  int servers = 8;
  int ops_per_server = 1000;
  int keys = 64;
  /// Fraction of operations hitting key 0 (hot-spot contention knob).
  double hot_fraction = 0.0;
  std::uint64_t seed = 19;
  Distribution distribution = Distribution::InterProc;
};

struct DbRunResult {
  DbMode mode{};
  std::vector<long long> state;  ///< final per-key values
  bool consistent = false;       ///< replicas agree and match the expected state
  double worst_serialization = 0;  ///< log queue length (SharedLog mode)
  long long messages_routed = 0;   ///< operations forwarded (Sharded mode)
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

[[nodiscard]] DbRunResult run_replicated_db(const Topology& topology,
                                            const DbWorkload& workload,
                                            DbMode mode);

/// The exact final state (sequential reference).
[[nodiscard]] std::vector<long long> replicated_db_reference(
    const DbWorkload& workload);

}  // namespace stamp::algo
