#include "algo/replicated_db.hpp"

#include "msg/communicator.hpp"
#include "runtime/barrier.hpp"
#include "runtime/instrument.hpp"
#include "shm/shared_region.hpp"

#include <atomic>
#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Op {
  int key = 0;
  long long delta = 0;
};

/// Deterministic operation stream of one server.
std::vector<Op> ops_for(const DbWorkload& w, int server) {
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(w.ops_per_server));
  std::mt19937_64 rng(w.seed + static_cast<std::uint64_t>(server) * 92821);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> key(0, w.keys - 1);
  std::uniform_int_distribution<long long> delta(-5, 5);
  for (int i = 0; i < w.ops_per_server; ++i) {
    Op op;
    op.key = coin(rng) < w.hot_fraction ? 0 : key(rng);
    op.delta = delta(rng);
    ops.push_back(op);
  }
  return ops;
}

int owner_of_key(int key, int keys, int servers) {
  // Contiguous key ranges per owner.
  const int per = (keys + servers - 1) / servers;
  return std::min(key / per, servers - 1);
}

}  // namespace

const char* to_string(DbMode m) noexcept {
  return m == DbMode::SharedLog ? "shared-log" : "sharded";
}

std::vector<long long> replicated_db_reference(const DbWorkload& w) {
  std::vector<long long> state(static_cast<std::size_t>(w.keys), 0);
  for (int s = 0; s < w.servers; ++s)
    for (const Op& op : ops_for(w, s))
      state[static_cast<std::size_t>(op.key)] += op.delta;
  return state;
}

DbRunResult run_replicated_db(const Topology& topology, const DbWorkload& w,
                              DbMode mode) {
  if (w.servers < 1) throw std::invalid_argument("db: servers < 1");
  if (w.keys < 1) throw std::invalid_argument("db: keys < 1");
  if (w.hot_fraction < 0 || w.hot_fraction > 1)
    throw std::invalid_argument("db: hot_fraction in [0, 1]");

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, w.servers,
                                              w.distribution);

  // SharedLog mode state: the consistency-critical multi-writer log.
  shm::QueuedCell<std::vector<Op>> log;
  runtime::PhaseBarrier barrier(w.servers);
  std::vector<std::vector<long long>> replicas(
      static_cast<std::size_t>(w.servers),
      std::vector<long long>(static_cast<std::size_t>(w.keys), 0));

  // Sharded mode state: per-owner shards and the routing fabric. The payload
  // key encodes end-of-stream as key = -1.
  msg::Communicator<Op> router(w.servers, CommMode::Asynchronous);
  std::vector<std::vector<long long>> shards(
      static_cast<std::size_t>(w.servers),
      std::vector<long long>(static_cast<std::size_t>(w.keys), 0));
  std::atomic<long long> routed{0};

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const std::vector<Op> my_ops = ops_for(w, me);
    const runtime::UnitScope unit(ctx.recorder());

    if (mode == DbMode::SharedLog) {
      // Phase 1: append every operation to the serialized log (one shared
      // write per op; the queued cell measures the multi-writer contention).
      {
        const runtime::RoundScope round(ctx.recorder());
        for (const Op& op : my_ops) {
          log.update(ctx, [&](std::vector<Op>& entries) {
            entries.push_back(op);
          });
          ctx.int_ops(2);
        }
      }
      barrier.arrive_and_wait();  // log is complete
      // Phase 2: every replica replays the whole log (consistency).
      {
        const runtime::RoundScope round(ctx.recorder());
        const std::vector<Op> entries = log.read(ctx);
        auto& mine = replicas[static_cast<std::size_t>(me)];
        for (const Op& op : entries)
          mine[static_cast<std::size_t>(op.key)] += op.delta;
        ctx.int_ops(static_cast<double>(entries.size()));
      }
      return;
    }

    // Sharded: route each op to its key's single writer; apply what arrives.
    const runtime::RoundScope round(ctx.recorder());
    std::size_t next = 0;
    int done_received = 0;
    auto& shard = shards[static_cast<std::size_t>(me)];
    auto handle = [&](const Op& op) {
      if (op.key < 0) {
        ++done_received;
        return;
      }
      shard[static_cast<std::size_t>(op.key)] += op.delta;
      ctx.int_ops(1);
    };
    // Interleave sending own ops with draining the inbox (a server loop).
    while (next < my_ops.size() || done_received < w.servers) {
      if (next < my_ops.size()) {
        const Op& op = my_ops[next++];
        const int owner = owner_of_key(op.key, w.keys, w.servers);
        if (owner == me) {
          handle(op);
        } else {
          router.send(ctx, owner, op);
          routed.fetch_add(1, std::memory_order_relaxed);
        }
        ctx.int_ops(2);
        if (next == my_ops.size()) {
          // End-of-stream markers: one to every server (including self).
          for (int s = 0; s < w.servers; ++s) {
            if (s == me) {
              ++done_received;
            } else {
              router.send(ctx, s, Op{-1, 0});
            }
          }
        }
        // Opportunistic drain while producing.
        while (auto env = router.try_receive(ctx)) handle(env->value);
      } else {
        handle(router.receive(ctx).value);
      }
    }
  });

  DbRunResult result{.mode = mode,
                     .state = {},
                     .consistent = false,
                     .worst_serialization = log.worst_serialization(),
                     .messages_routed = routed.load(),
                     .run = std::move(run),
                     .placement = placement};

  const std::vector<long long> expected = replicated_db_reference(w);
  if (mode == DbMode::SharedLog) {
    // Every replica must equal the reference.
    result.state = replicas.front();
    result.consistent = true;
    for (const auto& replica : replicas)
      if (replica != expected) result.consistent = false;
  } else {
    // Shards are disjoint: their sum is the full state.
    result.state.assign(static_cast<std::size_t>(w.keys), 0);
    for (const auto& shard : shards)
      for (int k = 0; k < w.keys; ++k)
        result.state[static_cast<std::size_t>(k)] +=
            shard[static_cast<std::size_t>(k)];
    result.consistent = result.state == expected;
  }
  return result;
}

}  // namespace stamp::algo
