#pragma once
/// \file stencil.hpp
/// \brief 1-D heat-diffusion stencil with halo exchange — the sparse-
///        communication counterpart to the paper's all-to-all Jacobi.
///
/// Explicit Euler on u_t = alpha u_xx over a 1-D rod with fixed boundary
/// temperatures. Each STAMP process owns a contiguous segment; per S-round it
/// exchanges one halo cell with each neighbour (2 sends + 2 receives,
/// independent of n and p) and updates its segment. Attributes:
/// [intra_proc, async_exec, synch_comm].
///
/// Model interest: Jacobi's exchange costs Theta(p) messages per process per
/// round; the stencil costs Theta(1). The crossover machinery prices exactly
/// when nearest-neighbour structure pays.

#include "core/attributes.hpp"
#include "core/params.hpp"
#include "runtime/executor.hpp"

#include <cstdint>
#include <vector>

namespace stamp::algo {

struct StencilProblem {
  int cells = 64;          ///< interior cells of the rod
  double alpha = 0.2;      ///< diffusion number (stable for < 0.5)
  double left = 100.0;     ///< fixed boundary temperature (left)
  double right = 0.0;      ///< fixed boundary temperature (right)
  double initial = 20.0;   ///< initial interior temperature
};

struct StencilOptions {
  int processes = 4;
  int steps = 200;
  Distribution distribution = Distribution::IntraProc;
};

struct StencilResult {
  std::vector<double> temperature;  ///< final interior temperatures
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// Sequential reference (same explicit-Euler scheme).
[[nodiscard]] std::vector<double> stencil_sequential(const StencilProblem& prob,
                                                     int steps);

/// Distributed halo-exchange solver; processes <= cells.
[[nodiscard]] StencilResult stencil_distributed(const StencilProblem& prob,
                                                const Topology& topology,
                                                const StencilOptions& options);

}  // namespace stamp::algo
