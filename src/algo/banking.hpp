#pragma once
/// \file banking.hpp
/// \brief The paper's banking example: `transfer(a, b, m)` with attributes
///        [intra_proc, trans_exec], built from two subtransactions
///        (withdraw, deposit) that must both commit.
///
/// `withdraw` fails (business-level) when funds are insufficient; the parent
/// then rolls the whole transfer back — the paper's "commit only when both
/// subtransactions commit".

#include "runtime/executor.hpp"
#include "stm/stm.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace stamp::algo {

/// A bank: fixed set of accounts holding integer cents as TVars.
class Bank {
 public:
  Bank(int accounts, long initial_balance);

  [[nodiscard]] int account_count() const noexcept {
    return static_cast<int>(accounts_.size());
  }

  [[nodiscard]] stm::TVar<long>& account(int i) { return *accounts_.at(i); }

  /// Uninstrumented sum of all balances (conservation invariant check).
  [[nodiscard]] long total_balance() const;

  /// The paper's transfer: withdraw from `from`, deposit to `to`, both as
  /// subtransactions of one atomic transfer. Returns true iff committed
  /// (false = insufficient funds; no money moves). `preemption_point` yields
  /// the scheduler between the two subtransactions, widening the conflict
  /// window (useful on hosts with few cores).
  [[nodiscard]] bool transfer(runtime::Context& ctx, stm::StmRuntime& rt,
                              int from, int to, long amount,
                              bool preemption_point = false);

  /// Atomic balance read.
  [[nodiscard]] long balance(runtime::Context& ctx, stm::StmRuntime& rt, int i);

 private:
  std::vector<std::unique_ptr<stm::TVar<long>>> accounts_;
};

/// Workload shape for the transfer benchmark.
struct TransferWorkload {
  int processes = 4;
  int transfers_per_process = 1000;
  int accounts = 64;
  long initial_balance = 1'000;
  long max_amount = 10;
  /// Fraction of transfers directed at a single hot account pair — the
  /// contention knob (0 = uniform, 1 = everything hits the hot pair).
  double hot_fraction = 0.0;
  std::uint64_t seed = 1;
  Distribution distribution = Distribution::IntraProc;  // the paper's choice
  /// Yield inside each transfer between withdraw and deposit so conflicts
  /// are observable even when the host serializes threads.
  bool preemption_points = false;
};

/// Full outcome of a transfer workload run.
struct TransferRunResult {
  long long attempted = 0;
  long long committed = 0;
  long long insufficient = 0;
  std::uint64_t stm_commits = 0;
  std::uint64_t stm_aborts = 0;
  std::uint64_t stm_max_retries = 0;
  long balance_before = 0;
  long balance_after = 0;
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

/// Run a closed-loop transfer workload on `topology` with the given
/// contention manager ("passive", "polite", "backoff", "karma").
[[nodiscard]] TransferRunResult run_transfer_workload(
    const Topology& topology, const TransferWorkload& workload,
    const std::string& contention_manager = "backoff");

}  // namespace stamp::algo
