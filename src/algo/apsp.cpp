#include "algo/apsp.hpp"

#include "runtime/barrier.hpp"
#include "runtime/quiescence.hpp"
#include "runtime/instrument.hpp"
#include "shm/swmr_matrix.hpp"

#include <algorithm>
#include <atomic>
#include <random>
#include <stdexcept>
#include <thread>

namespace stamp::algo {

Graph make_random_graph(int n, std::uint64_t seed, double density,
                        double max_weight) {
  if (n < 1) throw std::invalid_argument("graph must have >= 1 vertex");
  if (density < 0 || density > 1)
    throw std::invalid_argument("density must be in [0, 1]");
  if (max_weight < 1) throw std::invalid_argument("max_weight must be >= 1");
  Graph g;
  g.n = n;
  g.weight.assign(static_cast<std::size_t>(n) * n, Graph::kInfinity);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_real_distribution<double> wdist(1.0, max_weight);
  for (int i = 0; i < n; ++i) {
    g.weight[static_cast<std::size_t>(i) * n + i] = 0;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (coin(rng) < density)
        g.weight[static_cast<std::size_t>(i) * n + j] = wdist(rng);
    }
  }
  return g;
}

std::vector<double> floyd_warshall(const Graph& g) {
  std::vector<double> d = g.weight;
  const int n = g.n;
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      const double dik = d[static_cast<std::size_t>(i) * n + k];
      if (dik == Graph::kInfinity) continue;
      for (int j = 0; j < n; ++j) {
        const double cand = dik + d[static_cast<std::size_t>(k) * n + j];
        double& dij = d[static_cast<std::size_t>(i) * n + j];
        if (cand < dij) dij = cand;
      }
    }
  return d;
}

namespace {

/// Min-plus relaxation of one row over a full snapshot: row_j = min_k
/// (row_k + snapshot_kj), using the process's own (freshest) row for x_ik.
/// Returns true if any entry improved. Charges n additions (fp) and n-1
/// comparisons + 1 assignment (int) per entry, matching
/// analysis::apsp_round_counters.
bool relax_row(runtime::Context& ctx, int n,
               const std::vector<double>& snapshot, std::vector<double>& row) {
  bool changed = false;
  for (int j = 0; j < n; ++j) {
    double best = row[static_cast<std::size_t>(j)];
    for (int k = 0; k < n; ++k) {
      const double cand = row[static_cast<std::size_t>(k)] +
                          snapshot[static_cast<std::size_t>(k) * n + j];
      if (cand < best) best = cand;
    }
    if (best < row[static_cast<std::size_t>(j)]) {
      row[static_cast<std::size_t>(j)] = best;
      changed = true;
    }
  }
  ctx.fp_ops(static_cast<double>(n) * n);
  ctx.int_ops(static_cast<double>(n) * (n - 1) + n);
  return changed;
}

}  // namespace

ApspResult apsp_distributed(const Graph& g, const Topology& topology,
                            const ApspOptions& options) {
  const int n = g.n;
  const int max_rounds = options.max_rounds > 0 ? options.max_rounds : 4 * n + 8;

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, n,
                                              options.distribution);

  shm::SwmrMatrix<double> x(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) x.poke(i, j, g.w(i, j));

  // Synchronous variant: per-round change flags (no reset protocol needed).
  std::vector<std::atomic<int>> round_changed(
      static_cast<std::size_t>(max_rounds) + 1);
  for (auto& f : round_changed) f.store(0, std::memory_order_relaxed);
  runtime::PhaseBarrier barrier(n);

  // Asynchronous variant: publication-counter quiescence detection.
  runtime::QuiescenceDetector quiescence(n);

  std::vector<int> rounds_done(static_cast<std::size_t>(n), 0);

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int i = ctx.id();
    std::vector<double> row(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) row[static_cast<std::size_t>(j)] = g.w(i, j);

    if (options.comm == CommMode::Synchronous) {
      for (int t = 0; t < max_rounds; ++t) {
        const runtime::UnitScope unit(ctx.recorder());
        ctx.int_ops(1);  // while-condition
        bool changed = false;
        {
          const runtime::RoundScope round(ctx.recorder());
          const std::vector<double> snapshot = x.read_all(ctx);
          changed = relax_row(ctx, n, snapshot, row);
          if (changed) x.write_row(ctx, i, row);
        }
        if (changed)
          round_changed[static_cast<std::size_t>(t)].store(
              1, std::memory_order_release);
        barrier.arrive_and_wait();
        rounds_done[static_cast<std::size_t>(i)] = t + 1;
        ctx.int_ops(2);  // termination test
        if (round_changed[static_cast<std::size_t>(t)].load(
                std::memory_order_acquire) == 0)
          break;
      }
      return;
    }

    // Asynchronous: sweep until globally quiescent. Publishing sweeps are
    // bounded by max_rounds (monotone min-plus needs at most n-1); quiet
    // re-sweeps while waiting for peers are not counted against the bound.
    rounds_done[static_cast<std::size_t>(i)] = runtime::run_to_quiescence(
        quiescence, i,
        [&] {
          const runtime::UnitScope unit(ctx.recorder());
          ctx.int_ops(1);
          bool changed = false;
          {
            const runtime::RoundScope round(ctx.recorder());
            const std::vector<double> snapshot = x.read_all(ctx);
            changed = relax_row(ctx, n, snapshot, row);
            if (changed) x.write_row(ctx, i, row);
          }
          ctx.int_ops(2);
          return changed;
        },
        max_rounds);
  });

  ApspResult result{.distances = std::vector<double>(
                        static_cast<std::size_t>(n) * n),
                    .rounds = rounds_done,
                    .run = std::move(run),
                    .placement = placement};
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      result.distances[static_cast<std::size_t>(i) * n + j] = x.peek(i, j);
  return result;
}

}  // namespace stamp::algo
