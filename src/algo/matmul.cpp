#include "algo/matmul.hpp"

#include "msg/collectives.hpp"
#include "runtime/instrument.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  int begin = 0;
  int end = 0;
  [[nodiscard]] int size() const noexcept { return end - begin; }
};

Block block_of(int n, int p, int rank) {
  const int base = n / p;
  const int extra = n % p;
  Block b;
  b.begin = rank * base + std::min(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

}  // namespace

Matrix make_random_matrix(int rows, int cols, std::uint64_t seed) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("empty matrix");
  Matrix m{rows, cols, {}};
  m.data.resize(static_cast<std::size_t>(rows) * cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  for (double& v : m.data) v = uni(rng);
  return m;
}

Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  if (a.cols != b.rows) throw std::invalid_argument("shape mismatch");
  Matrix c{a.rows, b.cols, std::vector<double>(
                               static_cast<std::size_t>(a.rows) * b.cols, 0.0)};
  for (int i = 0; i < a.rows; ++i)
    for (int k = 0; k < a.cols; ++k) {
      const double aik = a.at(i, k);
      for (int j = 0; j < b.cols; ++j) c.at(i, j) += aik * b.at(k, j);
    }
  return c;
}

MatmulRunResult run_matmul(const Topology& topology, const MatmulWorkload& w) {
  const int n = w.n;
  const int p = w.processes;
  if (p < 1 || p > n) throw std::invalid_argument("matmul: need 1 <= p <= n");

  const Matrix a = make_random_matrix(n, n, w.seed);
  const Matrix b = make_random_matrix(n, n, w.seed + 1);

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, p, w.distribution);

  using Panel = std::vector<double>;  // rows [block] of B, row-major
  msg::Communicator<Panel> comm(p, CommMode::Synchronous);

  Matrix c{n, n, std::vector<double>(static_cast<std::size_t>(n) * n, 0.0)};

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const Block rows = block_of(n, p, me);

    for (int panel_owner = 0; panel_owner < p; ++panel_owner) {
      const runtime::UnitScope unit(ctx.recorder());
      const Block panel = block_of(n, p, panel_owner);
      const runtime::RoundScope round(ctx.recorder());

      // The owner packs its rows of B; the tree broadcast delivers them.
      Panel mine;
      if (me == panel_owner) {
        mine.reserve(static_cast<std::size_t>(panel.size()) * n);
        for (int k = panel.begin; k < panel.end; ++k)
          for (int j = 0; j < n; ++j) mine.push_back(b.at(k, j));
        ctx.int_ops(static_cast<double>(panel.size()) * n);
      }
      const Panel received =
          msg::broadcast_tree(ctx, comm, std::move(mine), panel_owner);
      comm.barrier();  // separate panels: one collective in flight at a time

      // C[rows, :] += A[rows, panel] * B[panel, :].
      for (int i = rows.begin; i < rows.end; ++i) {
        for (int k = panel.begin; k < panel.end; ++k) {
          const double aik = a.at(i, k);
          const double* brow =
              received.data() +
              static_cast<std::size_t>(k - panel.begin) * n;
          for (int j = 0; j < n; ++j) c.at(i, j) += aik * brow[j];
        }
      }
      ctx.fp_ops(2.0 * rows.size() * panel.size() * n);
    }
  });

  const Matrix reference = matmul_reference(a, b);
  double err = 0;
  for (std::size_t i = 0; i < reference.data.size(); ++i)
    err = std::max(err, std::abs(c.data[i] - reference.data[i]));

  MatmulRunResult result{.c = std::move(c),
                         .max_abs_error = err,
                         .run = std::move(run),
                         .placement = placement};
  return result;
}

}  // namespace stamp::algo
