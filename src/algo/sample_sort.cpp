#include "algo/sample_sort.hpp"

#include "msg/collectives.hpp"
#include "runtime/instrument.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  long long begin = 0;
  long long end = 0;
  [[nodiscard]] long long size() const noexcept { return end - begin; }
};

Block block_of(long long total, int p, int rank) {
  const long long base = total / p;
  const long long extra = total % p;
  Block b;
  b.begin = rank * base + std::min<long long>(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

}  // namespace

std::vector<long long> sort_input(const SortWorkload& w) {
  std::vector<long long> data(static_cast<std::size_t>(w.elements));
  std::mt19937_64 rng(w.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (auto& v : data) {
    double u = uni(rng);
    if (w.skew > 0) u = std::pow(u, 1.0 + w.skew);
    v = static_cast<long long>(u * 1'000'000'000.0);
  }
  return data;
}

SortRunResult run_sample_sort(const Topology& topology, const SortWorkload& w) {
  if (w.processes < 1) throw std::invalid_argument("sample_sort: processes < 1");
  if (w.elements < 0) throw std::invalid_argument("sample_sort: negative length");

  const int p = w.processes;
  const std::vector<long long> input = sort_input(w);

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, p, w.distribution);

  using Values = std::vector<long long>;
  msg::Communicator<Values> vec_comm(p, CommMode::Synchronous);

  std::vector<Values> outputs(static_cast<std::size_t>(p));
  std::vector<long long> bucket_sizes(static_cast<std::size_t>(p), 0);

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const Block block = block_of(w.elements, p, me);

    const runtime::UnitScope unit(ctx.recorder());

    // Phase 1: local sort (n/p log(n/p) integer comparisons, counted).
    Values local(input.begin() + block.begin, input.begin() + block.end);
    std::sort(local.begin(), local.end());
    const double nlocal = static_cast<double>(local.size());
    if (nlocal > 1) ctx.int_ops(nlocal * std::log2(nlocal));

    // Phase 2: splitter selection. Everyone samples p-1 evenly spaced keys,
    // the root gathers all samples, sorts, picks global splitters, broadcasts.
    Values splitters;
    {
      const runtime::RoundScope round(ctx.recorder());
      Values sample;
      for (int k = 1; k < p; ++k) {
        if (!local.empty())
          sample.push_back(local[static_cast<std::size_t>(
              (k * static_cast<long long>(local.size())) / p)]);
      }
      ctx.int_ops(static_cast<double>(sample.size()));
      std::vector<Values> all_samples =
          msg::gather(ctx, vec_comm, std::move(sample), /*root=*/0);
      Values chosen;
      if (me == 0) {
        Values pool;
        for (Values& s : all_samples)
          pool.insert(pool.end(), s.begin(), s.end());
        std::sort(pool.begin(), pool.end());
        const double npool = static_cast<double>(pool.size());
        if (npool > 1) ctx.int_ops(npool * std::log2(npool));
        for (int k = 1; k < p; ++k) {
          if (!pool.empty())
            chosen.push_back(pool[static_cast<std::size_t>(
                (k * static_cast<long long>(pool.size())) / p)]);
        }
      }
      splitters = msg::broadcast_tree(ctx, vec_comm, std::move(chosen), 0);
      vec_comm.barrier();  // separate from the bucket exchange below
    }

    // Phase 3: partition the local block into p buckets and exchange.
    Values merged;
    {
      const runtime::RoundScope round(ctx.recorder());
      std::vector<Values> buckets(static_cast<std::size_t>(p));
      for (long long v : local) {
        const auto it =
            std::upper_bound(splitters.begin(), splitters.end(), v);
        const int dest = static_cast<int>(it - splitters.begin());
        buckets[static_cast<std::size_t>(dest)].push_back(v);
      }
      ctx.int_ops(nlocal * (splitters.empty()
                                ? 1
                                : std::log2(static_cast<double>(
                                      splitters.size() + 1))));

      // Keep own bucket; send the rest; receive p-1 buckets.
      merged = std::move(buckets[static_cast<std::size_t>(me)]);
      for (int dest = 0; dest < p; ++dest) {
        if (dest == me) continue;
        vec_comm.send(ctx, dest, std::move(buckets[static_cast<std::size_t>(dest)]));
      }
      for (int k = 0; k + 1 < p; ++k) {
        msg::Envelope<Values> env = vec_comm.receive(ctx);
        merged.insert(merged.end(), env.value.begin(), env.value.end());
      }
      vec_comm.barrier();
    }

    // Phase 4: local sort of the received bucket.
    std::sort(merged.begin(), merged.end());
    const double nmerged = static_cast<double>(merged.size());
    if (nmerged > 1) ctx.int_ops(nmerged * std::log2(nmerged));

    bucket_sizes[static_cast<std::size_t>(me)] =
        static_cast<long long>(merged.size());
    outputs[static_cast<std::size_t>(me)] = std::move(merged);
  });

  SortRunResult result{.output = {},
                       .correct = false,
                       .bucket_sizes = std::move(bucket_sizes),
                       .run = std::move(run),
                       .placement = placement};
  for (const Values& part : outputs)
    result.output.insert(result.output.end(), part.begin(), part.end());

  std::vector<long long> reference = input;
  std::sort(reference.begin(), reference.end());
  result.correct = result.output == reference;
  return result;
}

}  // namespace stamp::algo
