#pragma once
/// \file algo.hpp
/// \brief Umbrella header for the STAMP example algorithms.

#include "algo/airline.hpp"
#include "algo/apsp.hpp"
#include "algo/banking.hpp"
#include "algo/bfs.hpp"
#include "algo/gauss_seidel.hpp"
#include "algo/histogram.hpp"
#include "algo/jacobi.hpp"
#include "algo/kmeans.hpp"
#include "algo/matmul.hpp"
#include "algo/pagerank.hpp"
#include "algo/prefix_sum.hpp"
#include "algo/reduce.hpp"
#include "algo/replicated_db.hpp"
#include "algo/sample_sort.hpp"
#include "algo/stencil.hpp"
