#include "algo/gauss_seidel.hpp"

#include "runtime/barrier.hpp"
#include "runtime/instrument.hpp"
#include "shm/swmr_matrix.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  int begin = 0;
  int end = 0;
};

Block block_of(int n, int p, int rank) {
  const int base = n / p;
  const int extra = n % p;
  Block b;
  b.begin = rank * base + std::min(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

/// One color phase over [block.begin, block.end): updates components of the
/// given parity from `x` into `x` (callers pass a consistent snapshot
/// discipline). Returns the max delta. Charges the paper-style counts.
double color_sweep(const LinearSystem& sys, const std::vector<double>& snapshot,
                   std::vector<double>& x, Block block, int parity,
                   runtime::Context* ctx) {
  double max_delta = 0;
  for (int i = block.begin; i < block.end; ++i) {
    if (i % 2 != parity) continue;
    double acc = 0;
    for (int j = 0; j < sys.n; ++j) {
      if (j == i) continue;
      acc += sys.a(i, j) * snapshot[static_cast<std::size_t>(j)];
    }
    const double xi = -(acc - sys.b[static_cast<std::size_t>(i)]) / sys.a(i, i);
    max_delta =
        std::max(max_delta, std::abs(xi - x[static_cast<std::size_t>(i)]));
    x[static_cast<std::size_t>(i)] = xi;
    if (ctx != nullptr) {
      ctx->fp_ops(2.0 * sys.n - 1);
      ctx->int_ops(1);
    }
  }
  return max_delta;
}

}  // namespace

JacobiResult gauss_seidel_sequential(const LinearSystem& sys, double tolerance,
                                     int max_iters) {
  JacobiResult result;
  std::vector<double> x(static_cast<std::size_t>(sys.n), 0.0);
  const Block all{0, sys.n};
  for (int t = 0; t < max_iters; ++t) {
    // Phase red (even indices) against the pre-iteration snapshot, then
    // phase black (odd) against the red-updated vector.
    std::vector<double> snapshot = x;
    double delta = color_sweep(sys, snapshot, x, all, 0, nullptr);
    snapshot = x;
    delta = std::max(delta, color_sweep(sys, snapshot, x, all, 1, nullptr));
    result.iterations = t + 1;
    result.final_delta = delta;
    if (delta < tolerance) {
      result.converged = true;
      break;
    }
  }
  result.x = std::move(x);
  return result;
}

GaussSeidelResult gauss_seidel_distributed(const LinearSystem& sys,
                                           const Topology& topology,
                                           const GaussSeidelOptions& options) {
  const int n = sys.n;
  const int p = options.processes;
  if (p < 1 || p > n)
    throw std::invalid_argument("gauss_seidel: need 1 <= processes <= n");

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, p,
                                              options.distribution);

  std::vector<Block> blocks(static_cast<std::size_t>(p));
  int widest = 0;
  for (int r = 0; r < p; ++r) {
    blocks[static_cast<std::size_t>(r)] = block_of(n, p, r);
    widest = std::max(widest, blocks[static_cast<std::size_t>(r)].end -
                                  blocks[static_cast<std::size_t>(r)].begin);
  }
  shm::SwmrMatrix<double> shared(p, std::max(widest, 1), 0.0);

  auto owner_of = [&](int i) {
    for (int r = 0; r < p; ++r)
      if (i >= blocks[static_cast<std::size_t>(r)].begin &&
          i < blocks[static_cast<std::size_t>(r)].end)
        return r;
    return p - 1;
  };

  runtime::PhaseBarrier barrier(p);
  std::vector<std::atomic<int>> converged_at(
      static_cast<std::size_t>(options.max_iters));
  for (auto& f : converged_at) f.store(0, std::memory_order_relaxed);

  std::vector<int> iterations(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<double>> finals(static_cast<std::size_t>(p));

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const Block block = blocks[static_cast<std::size_t>(me)];

    auto read_snapshot = [&](std::vector<double>& snap) {
      const std::vector<double> raw = shared.read_all(ctx);
      for (int i = 0; i < n; ++i) {
        const int r = owner_of(i);
        snap[static_cast<std::size_t>(i)] =
            raw[static_cast<std::size_t>(r) * shared.cols() +
                (i - blocks[static_cast<std::size_t>(r)].begin)];
      }
    };
    auto publish_block = [&](const std::vector<double>& x) {
      for (int i = block.begin; i < block.end; ++i)
        shared.write(ctx, me, i - block.begin, x[static_cast<std::size_t>(i)]);
    };

    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    std::vector<double> snapshot(static_cast<std::size_t>(n), 0.0);

    for (int t = 0; t < options.max_iters; ++t) {
      const runtime::UnitScope unit(ctx.recorder());
      ctx.int_ops(1);
      double delta = 0;
      // Red phase: everyone snapshots, barriers (so nobody's publish races a
      // peer's read), updates the even components of its block, publishes,
      // and barriers again — deterministic lockstep identical to the
      // sequential phase order.
      {
        const runtime::RoundScope round(ctx.recorder());
        read_snapshot(snapshot);
        barrier.arrive_and_wait();
        x = snapshot;
        delta = color_sweep(sys, snapshot, x, block, 0, &ctx);
        publish_block(x);
      }
      barrier.arrive_and_wait();
      // Black phase: fresh snapshot (sees every red update), update odds.
      {
        const runtime::RoundScope round(ctx.recorder());
        read_snapshot(snapshot);
        barrier.arrive_and_wait();
        for (int i = block.begin; i < block.end; ++i)
          x[static_cast<std::size_t>(i)] = snapshot[static_cast<std::size_t>(i)];
        delta = std::max(delta, color_sweep(sys, snapshot, x, block, 1, &ctx));
        publish_block(x);
      }
      ctx.int_ops(2);
      if (delta < options.tolerance)
        converged_at[static_cast<std::size_t>(t)].fetch_add(
            1, std::memory_order_acq_rel);
      barrier.arrive_and_wait();
      iterations[static_cast<std::size_t>(me)] = t + 1;
      if (converged_at[static_cast<std::size_t>(t)].load(
              std::memory_order_acquire) == p)
        break;
    }
    finals[static_cast<std::size_t>(me)] = x;
  });

  GaussSeidelResult result{.x = std::vector<double>(static_cast<std::size_t>(n)),
                           .iterations = iterations[0],
                           .converged = iterations[0] < options.max_iters,
                           .run = std::move(run),
                           .placement = placement};
  for (int r = 0; r < p; ++r) {
    const Block b = blocks[static_cast<std::size_t>(r)];
    for (int i = b.begin; i < b.end; ++i)
      result.x[static_cast<std::size_t>(i)] = shared.peek(r, i - b.begin);
  }
  if (!result.converged)
    result.converged =
        jacobi_residual(sys, result.x) < options.tolerance * sys.n;
  return result;
}

}  // namespace stamp::algo
