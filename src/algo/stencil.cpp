#include "algo/stencil.hpp"

#include "msg/communicator.hpp"
#include "runtime/instrument.hpp"

#include <stdexcept>

namespace stamp::algo {
namespace {

struct Block {
  int begin = 0;
  int end = 0;
  [[nodiscard]] int size() const noexcept { return end - begin; }
};

Block block_of(int n, int p, int rank) {
  const int base = n / p;
  const int extra = n % p;
  Block b;
  b.begin = rank * base + std::min(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

void validate(const StencilProblem& prob) {
  if (prob.cells < 1) throw std::invalid_argument("stencil: cells < 1");
  if (prob.alpha <= 0 || prob.alpha >= 0.5)
    throw std::invalid_argument("stencil: alpha must be in (0, 0.5)");
}

}  // namespace

std::vector<double> stencil_sequential(const StencilProblem& prob, int steps) {
  validate(prob);
  std::vector<double> u(static_cast<std::size_t>(prob.cells), prob.initial);
  std::vector<double> next = u;
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < prob.cells; ++i) {
      const double left = i == 0 ? prob.left : u[static_cast<std::size_t>(i - 1)];
      const double right =
          i == prob.cells - 1 ? prob.right : u[static_cast<std::size_t>(i + 1)];
      next[static_cast<std::size_t>(i)] =
          u[static_cast<std::size_t>(i)] +
          prob.alpha * (left - 2 * u[static_cast<std::size_t>(i)] + right);
    }
    u.swap(next);
  }
  return u;
}

StencilResult stencil_distributed(const StencilProblem& prob,
                                  const Topology& topology,
                                  const StencilOptions& options) {
  validate(prob);
  const int n = prob.cells;
  const int p = options.processes;
  if (p < 1 || p > n)
    throw std::invalid_argument("stencil: need 1 <= processes <= cells");

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, p,
                                              options.distribution);

  /// Halo message: the boundary value of a neighbour's segment. `from_left`
  /// disambiguates the two neighbours of an interior process.
  struct Halo {
    double value = 0;
    bool from_left = false;
  };
  msg::Communicator<Halo> comm(p, CommMode::Synchronous);

  std::vector<std::vector<double>> finals(static_cast<std::size_t>(p));

  runtime::RunResult run = runtime::run_processes(placement, [&](runtime::Context&
                                                                     ctx) {
    const int me = ctx.id();
    const Block block = block_of(n, p, me);
    const int width = block.size();
    std::vector<double> u(static_cast<std::size_t>(width), prob.initial);
    std::vector<double> next = u;

    for (int t = 0; t < options.steps; ++t) {
      const runtime::UnitScope unit(ctx.recorder());
      ctx.int_ops(1);  // loop check
      double halo_left = prob.left;
      double halo_right = prob.right;
      {
        const runtime::RoundScope round(ctx.recorder());
        // Send boundary cells to neighbours; receive their halos. Constant
        // communication per round: at most 2 sends + 2 receives.
        if (me > 0) comm.send(ctx, me - 1, Halo{u.front(), false});
        if (me + 1 < p) comm.send(ctx, me + 1, Halo{u.back(), true});
        const int expected = (me > 0 ? 1 : 0) + (me + 1 < p ? 1 : 0);
        for (int k = 0; k < expected; ++k) {
          const msg::Envelope<Halo> env = comm.receive(ctx);
          if (env.value.from_left) {
            halo_left = env.value.value;
          } else {
            halo_right = env.value.value;
          }
        }

        // Update the segment: 4 fp ops per cell (2 adds, 1 sub, 1 mul-add).
        for (int i = 0; i < width; ++i) {
          const double left =
              i == 0 ? halo_left : u[static_cast<std::size_t>(i - 1)];
          const double right = i == width - 1
                                   ? halo_right
                                   : u[static_cast<std::size_t>(i + 1)];
          next[static_cast<std::size_t>(i)] =
              u[static_cast<std::size_t>(i)] +
              prob.alpha *
                  (left - 2 * u[static_cast<std::size_t>(i)] + right);
        }
        ctx.fp_ops(4.0 * width);
        ctx.int_ops(static_cast<double>(width));
        u.swap(next);
        comm.barrier();  // synch_comm: rounds advance in lock step
      }
      ctx.int_ops(1);  // termination check
    }
    finals[static_cast<std::size_t>(me)] = u;
  });

  StencilResult result{.temperature = {}, .run = std::move(run),
                       .placement = placement};
  for (const auto& part : finals)
    result.temperature.insert(result.temperature.end(), part.begin(), part.end());
  return result;
}

}  // namespace stamp::algo
