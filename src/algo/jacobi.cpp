#include "algo/jacobi.hpp"

#include "msg/communicator.hpp"
#include "runtime/instrument.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace stamp::algo {
namespace {

/// Block [begin, end) of components owned by process `rank` of `p`.
struct Block {
  int begin = 0;
  int end = 0;
  [[nodiscard]] int size() const noexcept { return end - begin; }
};

Block block_of(int n, int p, int rank) {
  const int base = n / p;
  const int extra = n % p;
  Block b;
  b.begin = rank * base + std::min(rank, extra);
  b.end = b.begin + base + (rank < extra ? 1 : 0);
  return b;
}

/// One Jacobi sweep of rows [block.begin, block.end): returns the max
/// component delta. Charges the paper's operation counts to `ctx` when
/// non-null: per component, n-1 multiplications, n-2 additions, 1
/// subtraction, 1 division-by-diagonal multiplication (2n-1 fp ops) plus the
/// assignment (1 int op).
double sweep(const LinearSystem& sys, const std::vector<double>& x_old,
             std::vector<double>& x_new, Block block,
             runtime::Context* ctx) {
  double max_delta = 0;
  for (int i = block.begin; i < block.end; ++i) {
    double acc = 0;
    for (int j = 0; j < sys.n; ++j) {
      if (j == i) continue;
      acc += sys.a(i, j) * x_old[static_cast<std::size_t>(j)];
    }
    const double xi = -(acc - sys.b[static_cast<std::size_t>(i)]) / sys.a(i, i);
    max_delta =
        std::max(max_delta, std::abs(xi - x_old[static_cast<std::size_t>(i)]));
    x_new[static_cast<std::size_t>(i)] = xi;
    if (ctx != nullptr) {
      ctx->fp_ops(2.0 * sys.n - 1);
      ctx->int_ops(1);
    }
  }
  return max_delta;
}

}  // namespace

LinearSystem make_diagonally_dominant_system(int n, std::uint64_t seed,
                                             double dominance) {
  if (n < 1) throw std::invalid_argument("system size must be >= 1");
  if (dominance <= 1.0)
    throw std::invalid_argument("dominance must exceed 1 for convergence");
  LinearSystem sys;
  sys.n = n;
  sys.A.resize(static_cast<std::size_t>(n) * n);
  sys.b.resize(static_cast<std::size_t>(n));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  for (int i = 0; i < n; ++i) {
    double off_sum = 0;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = uni(rng);
      sys.A[static_cast<std::size_t>(i) * n + j] = v;
      off_sum += std::abs(v);
    }
    sys.A[static_cast<std::size_t>(i) * n + i] =
        dominance * std::max(off_sum, 1.0);
    sys.b[static_cast<std::size_t>(i)] = uni(rng);
  }
  return sys;
}

JacobiResult jacobi_sequential(const LinearSystem& sys, double tolerance,
                               int max_iters) {
  JacobiResult result;
  std::vector<double> x(static_cast<std::size_t>(sys.n), 0.0);
  std::vector<double> x_next(static_cast<std::size_t>(sys.n), 0.0);
  const Block all{0, sys.n};
  for (int t = 0; t < max_iters; ++t) {
    const double delta = sweep(sys, x, x_next, all, nullptr);
    x.swap(x_next);
    result.iterations = t + 1;
    result.final_delta = delta;
    if (delta < tolerance) {
      result.converged = true;
      break;
    }
  }
  result.x = std::move(x);
  return result;
}

DistributedJacobiResult jacobi_distributed(const LinearSystem& sys,
                                           const Topology& topology,
                                           const JacobiOptions& options) {
  const int p = options.processes;
  if (p < 1 || p > sys.n)
    throw std::invalid_argument("jacobi_distributed: need 1 <= processes <= n");

  const runtime::PlacementMap placement =
      options.distribution == Distribution::IntraProc
          ? runtime::PlacementMap::fill_first(topology, p,
                                              options.max_threads_per_processor)
          : runtime::PlacementMap::one_per_processor(topology, p);

  /// The round message: a process's updated block plus its local delta (the
  /// delta rides along so termination is agreed without extra messages).
  struct RoundMsg {
    std::vector<double> values;
    double delta = 0;
  };
  msg::Communicator<RoundMsg> comm(p, CommMode::Synchronous);

  std::vector<std::vector<double>> solutions(static_cast<std::size_t>(p));
  std::vector<int> iterations(static_cast<std::size_t>(p), 0);

  runtime::RunResult run =
      runtime::run_processes(placement, [&](runtime::Context& ctx) {
        const Block block = block_of(sys.n, p, ctx.id());
        std::vector<double> x(static_cast<std::size_t>(sys.n), 0.0);
        std::vector<double> x_next = x;
        bool terminated = false;
        int t = 0;
        while (!terminated) {
          const runtime::UnitScope unit(ctx.recorder());
          ctx.int_ops(1);  // while-condition check
          double round_delta = 0;
          {
            const runtime::RoundScope round(ctx.recorder());
            const double own_delta = sweep(sys, x, x_next, block, &ctx);
            RoundMsg msg;
            msg.values.assign(
                x_next.begin() + block.begin, x_next.begin() + block.end);
            msg.delta = own_delta;
            // exchange = broadcast + receive-all + implicit barrier
            std::vector<RoundMsg> all = comm.exchange(ctx, std::move(msg));
            round_delta = 0;
            for (int peer = 0; peer < p; ++peer) {
              const Block pb = block_of(sys.n, p, peer);
              const RoundMsg& m = all[static_cast<std::size_t>(peer)];
              std::copy(m.values.begin(), m.values.end(),
                        x_next.begin() + pb.begin);
              round_delta = std::max(round_delta, m.delta);
            }
          }
          x.swap(x_next);
          ++t;
          // Termination test + flag set (the "T_c >= 2" local work).
          ctx.int_ops(2);
          if (round_delta < options.tolerance || t >= options.max_iters)
            terminated = true;
        }
        iterations[static_cast<std::size_t>(ctx.id())] = t;
        solutions[static_cast<std::size_t>(ctx.id())] = x;
      });

  DistributedJacobiResult result{
      .solution = {}, .run = std::move(run), .placement = placement};
  result.solution.x = solutions.front();
  result.solution.iterations = iterations.front();
  result.solution.converged =
      iterations.front() < options.max_iters ||
      jacobi_residual(sys, result.solution.x) < options.tolerance * sys.n;
  return result;
}

double jacobi_residual(const LinearSystem& sys, const std::vector<double>& x) {
  double worst = 0;
  for (int i = 0; i < sys.n; ++i) {
    double acc = 0;
    for (int j = 0; j < sys.n; ++j)
      acc += sys.a(i, j) * x[static_cast<std::size_t>(j)];
    worst = std::max(worst, std::abs(acc - sys.b[static_cast<std::size_t>(i)]));
  }
  return worst;
}

}  // namespace stamp::algo
