#include "algo/airline.hpp"

#include <random>
#include <stdexcept>

namespace stamp::algo {

FlightNetwork::FlightNetwork(int legs, int seats_per_leg) {
  if (legs < 3) throw std::invalid_argument("FlightNetwork: need >= 3 legs");
  if (seats_per_leg < 0)
    throw std::invalid_argument("FlightNetwork: negative seat count");
  seats_.reserve(static_cast<std::size_t>(legs));
  for (int i = 0; i < legs; ++i)
    seats_.push_back(std::make_unique<stm::TVar<int>>(seats_per_leg));
}

long long FlightNetwork::booked_total(int seats_per_leg) const {
  long long booked = 0;
  for (const auto& s : seats_) booked += seats_per_leg - s->peek();
  return booked;
}

namespace {

/// rsrv(leg) [trans_exec, async_comm]: one independent seat-decrement
/// transaction; commits false (business failure) when the leg is full.
bool rsrv(runtime::Context& ctx, stm::StmRuntime& rt, FlightNetwork& net,
          int leg) {
  stm::TVar<int>& seats = net.seats(leg);
  return rt.atomically(ctx, [&](stm::Transaction& tx) {
    const int available = tx.read(seats);
    if (available <= 0) return false;  // leg is full, nothing to commit
    tx.write(seats, available - 1);
    return true;
  });
}

/// Compensating transaction: give a seat back.
void release_seat(runtime::Context& ctx, stm::StmRuntime& rt,
                  FlightNetwork& net, int leg) {
  stm::TVar<int>& seats = net.seats(leg);
  rt.atomically(ctx, [&](stm::Transaction& tx) {
    tx.write(seats, tx.read(seats) + 1);
    return true;
  });
}

}  // namespace

ReserveOutcome reserve(runtime::Context& ctx, stm::StmRuntime& rt,
                       FlightNetwork& net, const std::vector<int>& itinerary,
                       ReservePolicy policy) {
  if (itinerary.empty() || itinerary.size() > 3)
    throw std::invalid_argument("reserve: itinerary must have 1..3 legs");

  // cmit_i = rsrv(leg_i) [trans_exec, async_comm] — independent transactions.
  std::vector<bool> committed;
  committed.reserve(itinerary.size());
  for (int leg : itinerary) committed.push_back(rsrv(ctx, rt, net, leg));

  int commits = 0;
  for (bool c : committed) commits += c ? 1 : 0;
  ctx.int_ops(static_cast<double>(itinerary.size()) + 1);  // decision procedure

  ReserveOutcome outcome;
  if (commits == static_cast<int>(itinerary.size())) {
    // if (all three committed) then return(true)
    outcome.success = true;
    outcome.legs_committed = commits;
    return outcome;
  }
  if (commits == 0) {
    // elseif (none of three committed) then return(false)
    outcome.success = false;
    outcome.legs_committed = 0;
    return outcome;
  }
  if (policy == ReservePolicy::Partial) {
    // else (the committed leg is not full) then return(true)
    outcome.success = true;
    outcome.legs_committed = commits;
    return outcome;
  }
  // AllOrNothing: compensate every committed leg.
  for (std::size_t i = 0; i < itinerary.size(); ++i)
    if (committed[i]) release_seat(ctx, rt, net, itinerary[i]);
  outcome.success = false;
  outcome.legs_committed = 0;
  return outcome;
}

ReservationRunResult run_reservation_workload(
    const Topology& topology, const ReservationWorkload& w,
    const std::string& contention_manager) {
  if (w.processes < 1) throw std::invalid_argument("need >= 1 process");

  FlightNetwork net(w.legs, w.seats_per_leg);
  stm::StmRuntime rt(stm::make_manager(contention_manager));

  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(topology, w.processes,
                                              w.distribution);

  std::vector<long long> succeeded(static_cast<std::size_t>(w.processes), 0);
  std::vector<long long> legs_booked(static_cast<std::size_t>(w.processes), 0);

  runtime::RunResult run =
      runtime::run_processes(placement, [&](runtime::Context& ctx) {
        std::mt19937_64 rng(w.seed + static_cast<std::uint64_t>(ctx.id()) * 6151);
        std::uniform_int_distribution<int> leg(0, w.legs - 1);
        for (int k = 0; k < w.reservations_per_process; ++k) {
          const runtime::UnitScope unit(ctx.recorder());
          // Three distinct legs: from -> sect1 -> sect2 -> to.
          std::vector<int> itinerary;
          while (itinerary.size() < 3) {
            const int candidate = leg(rng);
            bool duplicate = false;
            for (int chosen : itinerary) duplicate |= chosen == candidate;
            if (!duplicate) itinerary.push_back(candidate);
          }
          ctx.int_ops(6);
          ReserveOutcome outcome;
          {
            const runtime::RoundScope round(ctx.recorder());
            outcome = reserve(ctx, rt, net, itinerary, w.policy);
          }
          if (outcome.success)
            ++succeeded[static_cast<std::size_t>(ctx.id())];
          legs_booked[static_cast<std::size_t>(ctx.id())] +=
              outcome.legs_committed;
          ctx.int_ops(1);
        }
      });

  ReservationRunResult result{.attempted = 0,
                              .succeeded = 0,
                              .failed = 0,
                              .legs_booked = 0,
                              .overbooked_legs = 0,
                              .stm_commits = rt.stats().commits.load(),
                              .stm_aborts = rt.stats().aborts.load(),
                              .run = std::move(run),
                              .placement = placement};
  for (int i = 0; i < w.processes; ++i) {
    result.succeeded += succeeded[static_cast<std::size_t>(i)];
    result.legs_booked += legs_booked[static_cast<std::size_t>(i)];
  }
  result.attempted =
      static_cast<long long>(w.processes) * w.reservations_per_process;
  result.failed = result.attempted - result.succeeded;
  for (int l = 0; l < w.legs; ++l)
    if (net.remaining(l) < 0) ++result.overbooked_legs;
  return result;
}

}  // namespace stamp::algo
