#pragma once
/// \file json_parse.hpp
/// \brief A small JSON value tree and recursive-descent parser — the reading
///        half of `json.hpp`'s writer, used by the regression gate to load
///        sweep artifacts.
///
/// Covers the full JSON grammar the writer can emit (objects, arrays,
/// strings with escapes, numbers, booleans, null). Object member order is
/// preserved. Parse failures throw `JsonParseError` with a byte offset —
/// never UB: malformed input of any shape (truncation, bad escapes,
/// non-finite numbers, containers nested deeper than 256 levels) is rejected
/// with an exception, so callers feeding untrusted files stay crash-free.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stamp::report {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  using Member = std::pair<std::string, JsonValue>;

  /// Parse one complete JSON document; trailing non-whitespace is an error.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }

  /// Typed accessors; each throws std::logic_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;      ///< array
  [[nodiscard]] const std::vector<Member>& members() const;       ///< object

  /// Object lookup: the value under `key`, or nullptr when absent (or when
  /// this value is not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

 private:
  struct Parser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace stamp::report
