#pragma once
/// \file atomic_file.hpp
/// \brief `report::AtomicFileWriter` — crash-safe artifact emission: write to
///        a temp file, flush, fsync, then atomically rename into place.
///
/// Every artifact the tools emit (`stamp-sweep/v1`, `stamp-chaos/v1`, bench
/// reports) feeds a downstream consumer that trusts it to be complete —
/// `stamp_gate` fails a PR over a truncated baseline. A plain
/// `std::ofstream(path)` truncates the destination the moment it opens, so a
/// SIGKILL (or ENOSPC) mid-write leaves a torn file *at the real path*. This
/// writer never exposes a partial artifact: bytes go to `<path>.tmp.<pid>`,
/// `commit()` flushes, fsyncs the data to disk, renames over the destination
/// (atomic on POSIX), and fsyncs the parent directory so the rename itself
/// survives a crash. A writer destroyed without `commit()` unlinks its temp
/// file, so aborted runs leave no litter.
///
/// Failures (open, write, fsync, rename) surface as exceptions from
/// `commit()` or as a failed stream state, never as a silently truncated
/// artifact — the tools turn them into nonzero exits.

#include <fstream>
#include <string>
#include <string_view>

namespace stamp::report {

/// The durability-critical steps of a commit, in order: fsync the temp
/// file's data, rename it over the destination, fsync the parent directory
/// so the new directory entry itself survives a crash.
enum class CommitStep { TempFsync, Rename, DirFsync };

/// Test hook: called just *before* each commit step with the path that step
/// operates on (the temp file, the destination, the parent *directory*).
/// A throwing observer simulates a crash at that point — commit() keeps its
/// no-partial-artifact guarantee and propagates. Pass nullptr to reset.
/// Not meant for production code.
using CommitObserver = void (*)(CommitStep step, const std::string& path);
void set_commit_observer(CommitObserver observer) noexcept;

/// fsync the directory containing `path`, making a newly created or renamed
/// directory entry durable. commit() does this after its rename; the sweep
/// journal does it after creating its file. Throws std::runtime_error on
/// failure; no-op on platforms without fsync.
void fsync_parent_directory(const std::string& path);

class AtomicFileWriter {
 public:
  /// Open `<path>.tmp.<pid>` for binary writing. A failed open is reported
  /// through `ok()` (and again by `commit()`), not by throwing here, so
  /// callers keep their usual "open, write, check" shape.
  explicit AtomicFileWriter(std::string path);

  /// Unlinks the temp file unless `commit()` succeeded.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stream to write the artifact to. Writing after a failure is
  /// harmless (the stream stays failed); `commit()` catches it.
  [[nodiscard]] std::ostream& stream() noexcept { return os_; }

  /// True while the temp file is open and every write so far succeeded.
  [[nodiscard]] bool ok() const noexcept { return os_.good(); }

  /// Flush, fsync the temp file, rename it over `path`, fsync the parent
  /// directory. Throws std::runtime_error (with the failing step and errno)
  /// on any failure; the temp file is removed first, so a failed commit
  /// leaves the destination exactly as it was.
  void commit();

  /// Close and unlink the temp file without touching the destination.
  /// Idempotent; also what the destructor does for uncommitted writers.
  void abort() noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& temp_path() const noexcept {
    return temp_path_;
  }

  /// Convenience: atomically replace `path`'s contents with `content`.
  /// Throws std::runtime_error on failure.
  static void write_file(const std::string& path, std::string_view content);

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream os_;
  bool committed_ = false;
  bool aborted_ = false;
};

}  // namespace stamp::report
