#include "report/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace stamp::report {

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * (static_cast<double>(sorted.size()) - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0;
    for (double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / (static_cast<double>(samples.size()) - 1));
  }
  s.p50 = percentile(samples, 0.50);
  s.p90 = percentile(samples, 0.90);
  s.p99 = percentile(samples, 0.99);
  return s;
}

double relative_error(double measured, double expected) {
  if (expected == 0)
    return measured == 0 ? 0 : std::numeric_limits<double>::infinity();
  return std::abs(measured - expected) / std::abs(expected);
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) {
    if (v <= 0) return 0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace stamp::report
