#include "report/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace stamp::report {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) throw std::logic_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw std::logic_error("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) throw std::logic_error("JsonValue: not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::Object) throw std::logic_error("JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& m : members_)
    if (m.first == key) return &m.second;
  return nullptr;
}

struct JsonValue::Parser {
  /// Containers may nest at most this deep. The parser recurses per nesting
  /// level, so without a cap a hostile input like 100k copies of '[' walks
  /// straight off the call stack — a crash, not an exception. Far deeper than
  /// any artifact the writer emits, far shallower than any stack.
  static constexpr int kMaxDepth = 256;

  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos);
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  [[nodiscard]] char peek() const {
    if (pos >= text.size())
      throw JsonParseError("unexpected end of input", pos);
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c)
      fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
      case '[': {
        if (depth >= kMaxDepth) fail("nesting too deep");
        ++depth;
        JsonValue v = peek() == '{' ? parse_object() : parse_array();
        --depth;
        return v;
      }
      case '"': {
        JsonValue v;
        v.kind_ = Kind::String;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind_ = Kind::Bool;
        if (consume_literal("true"))
          v.bool_ = true;
        else if (consume_literal("false"))
          v.bool_ = false;
        else
          fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the code point (the writer only emits \u00xx for
          // control characters, but decode the full BMP for completeness).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) fail("expected a value");
    double value = 0;
    const auto [end, ec] =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (ec != std::errc{} || end != text.data() + pos) {
      pos = start;
      fail("bad number");
    }
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    return v;
  }
};

JsonValue JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size())
    throw JsonParseError("trailing characters after document", p.pos);
  return v;
}

}  // namespace stamp::report
