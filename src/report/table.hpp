#pragma once
/// \file table.hpp
/// \brief Fixed-width console tables and CSV output for the bench harness.
///
/// Every bench prints its rows through `Table` so the output of
/// `bench/bench_*` matches the row/series structure of the paper's artifacts
/// and is diffable between runs.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace stamp::report {

/// One table cell: text, integer, or floating point (formatted with the
/// table's precision).
using Cell = std::variant<std::string, long long, double>;

/// A fixed-width text table with a title, column headers, and typed rows.
class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> headers);

  /// Appends one row; it must have exactly as many cells as there are headers.
  Table& add_row(std::vector<Cell> cells);

  /// Convenience for rows given as pre-formatted strings.
  Table& add_text_row(std::vector<std::string> cells);

  /// Digits after the decimal point for double cells (default 3).
  Table& set_precision(int digits);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Renders with box-drawing rules and right-aligned numeric cells.
  void print(std::ostream& os) const;

  /// Renders as CSV (title as a `# comment` line, headers, then rows).
  void write_csv(std::ostream& os) const;

  /// Renders as JSON: {"title": ..., "rows": [{header: cell, ...}, ...]}
  /// with numeric cells kept numeric.
  void write_json(std::ostream& os) const;

  /// Formats one cell with this table's precision.
  [[nodiscard]] std::string format_cell(const Cell& c) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

/// Prints a `== title ==` section banner.
void print_section(std::ostream& os, const std::string& title);

}  // namespace stamp::report
