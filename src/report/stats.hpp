#pragma once
/// \file stats.hpp
/// \brief Small summary-statistics helpers used when benches repeat runs.

#include <span>
#include <vector>

namespace stamp::report {

/// Summary of a sample: min/max/mean/standard deviation and percentiles.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1 denominator)
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Compute a Summary; an empty sample yields an all-zero Summary.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Percentile by linear interpolation between closest ranks; q in [0, 1].
/// The input need not be sorted. An empty sample returns 0.
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Relative error |measured - expected| / |expected| (0 when both are 0,
/// infinity when only expected is 0).
[[nodiscard]] double relative_error(double measured, double expected);

/// Geometric mean of strictly positive values (0 if any nonpositive or empty).
[[nodiscard]] double geometric_mean(std::span<const double> values);

}  // namespace stamp::report
