#include "report/json.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stamp::report {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::write_raw(std::string_view s) { (*os_) << s; }

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (root_written_)
      throw std::logic_error("JsonWriter: more than one root value");
    return;
  }
  if (stack_.back() == Frame::Object && !key_pending_)
    throw std::logic_error("JsonWriter: value in object without a key");
  // In an object the comma (if any) was already emitted by key(); in an
  // array it is emitted here.
  if (stack_.back() == Frame::Array && !first_in_frame_.back()) write_raw(",");
  first_in_frame_.back() = false;
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::Object)
    throw std::logic_error("JsonWriter: key outside an object");
  if (key_pending_) throw std::logic_error("JsonWriter: two keys in a row");
  if (!first_in_frame_.back()) write_raw(",");
  first_in_frame_.back() = false;
  write_raw("\"");
  write_raw(escape(k));
  write_raw("\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  write_raw("{");
  stack_.push_back(Frame::Object);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || key_pending_)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  write_raw("}");
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  write_raw("[");
  stack_.push_back(Frame::Array);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  write_raw("]");
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_raw("\"");
  write_raw(escape(v));
  write_raw("\"");
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isnan(v) || std::isinf(v)) {
    write_raw("null");  // JSON has no NaN/Inf
  } else {
    std::ostringstream ss;
    ss.precision(15);
    ss << v;
    write_raw(ss.str());
  }
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  write_raw(std::to_string(v));
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  write_raw(v ? "true" : "false");
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  write_raw("null");
  if (stack_.empty()) root_written_ = true;
  return *this;
}

}  // namespace stamp::report
