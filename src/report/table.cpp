#include "report/table.hpp"

#include "report/json.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stamp::report {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_text_row(std::vector<std::string> cells) {
  std::vector<Cell> row;
  row.reserve(cells.size());
  for (std::string& s : cells) row.emplace_back(std::move(s));
  return add_row(std::move(row));
}

Table& Table::set_precision(int digits) {
  precision_ = digits;
  return *this;
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      cells.push_back(format_cell(row[i]));
      widths[i] = std::max(widths[i], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  os << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
       << headers_[i] << " |";
  os << '\n';
  rule();
  for (std::size_t r = 0; r < formatted.size(); ++r) {
    os << '|';
    for (std::size_t i = 0; i < formatted[r].size(); ++i) {
      const bool numeric = !std::holds_alternative<std::string>(rows_[r][i]);
      os << ' '
         << (numeric ? std::right : std::left)
         << std::setw(static_cast<int>(widths[i])) << formatted[r][i] << " |";
    }
    os << '\n';
  }
  rule();
}

void Table::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  if (!title_.empty()) os << "# " << title_ << '\n';
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << escape(headers_[i]) << (i + 1 < headers_.size() ? "," : "\n");
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      os << escape(format_cell(row[i])) << (i + 1 < row.size() ? "," : "\n");
  }
}

void Table::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.kv("title", title_);
  w.key("rows");
  w.begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (std::size_t i = 0; i < row.size(); ++i) {
      w.key(headers_[i]);
      if (const auto* s = std::get_if<std::string>(&row[i])) {
        w.value(*s);
      } else if (const auto* n = std::get_if<long long>(&row[i])) {
        w.value(*n);
      } else {
        w.value(std::get<double>(row[i]));
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

void print_section(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "== " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace stamp::report
