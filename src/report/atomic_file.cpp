#include "report/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <atomic>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace stamp::report {
namespace {

[[noreturn]] void fail(const std::string& step, const std::string& path) {
  throw std::runtime_error("AtomicFileWriter: " + step + " '" + path +
                           "' failed: " + std::strerror(errno));
}

/// fsync the file at `path` by (re)opening it read-only: the stream layer has
/// already pushed its bytes to the kernel with flush/close, fsync then forces
/// them to stable storage. No-op on platforms without fsync.
void fsync_path(const std::string& path, const char* what) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(std::string("open-for-fsync ") + what, path);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(std::string("fsync ") + what, path);
  }
  ::close(fd);
#else
  static_cast<void>(path);
  static_cast<void>(what);
#endif
}

[[nodiscard]] long current_pid() noexcept {
#ifndef _WIN32
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

[[nodiscard]] std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::atomic<CommitObserver> g_commit_observer{nullptr};

void notify(CommitStep step, const std::string& path) {
  if (const CommitObserver obs =
          g_commit_observer.load(std::memory_order_acquire))
    obs(step, path);
}

}  // namespace

void set_commit_observer(CommitObserver observer) noexcept {
  g_commit_observer.store(observer, std::memory_order_release);
}

void fsync_parent_directory(const std::string& path) {
  const std::string dir = parent_dir(path);
  notify(CommitStep::DirFsync, dir);
  fsync_path(dir, "parent directory of");
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(current_pid())),
      os_(temp_path_, std::ios::binary | std::ios::trunc) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) abort();
}

void AtomicFileWriter::abort() noexcept {
  if (committed_ || aborted_) return;
  aborted_ = true;
  if (os_.is_open()) os_.close();
  std::remove(temp_path_.c_str());
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  if (aborted_)
    throw std::runtime_error("AtomicFileWriter: commit after abort for '" +
                             path_ + "'");
  // Any earlier failure (open, a short write under ENOSPC) is latched in the
  // stream state; surface it before touching the destination.
  os_.flush();
  const bool wrote_ok = os_.good();
  os_.close();
  if (!wrote_ok || os_.fail()) {
    abort();
    throw std::runtime_error("AtomicFileWriter: writing temp file '" +
                             temp_path_ + "' failed (disk full or I/O error)");
  }
  try {
    notify(CommitStep::TempFsync, temp_path_);
    fsync_path(temp_path_, "temp file");
    notify(CommitStep::Rename, path_);
  } catch (...) {
    abort();
    throw;
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    const int saved = errno;
    abort();
    errno = saved;
    fail("rename over", path_);
  }
  committed_ = true;
  // The rename is only durable once the directory entry is; a crash after
  // this point can no longer lose or tear the artifact. An observer throw
  // here propagates with the destination already in place — exactly the
  // state a real crash would leave.
  notify(CommitStep::DirFsync, parent_dir(path_));
  fsync_path(parent_dir(path_), "parent directory of");
}

void AtomicFileWriter::write_file(const std::string& path,
                                  std::string_view content) {
  AtomicFileWriter w(path);
  w.stream() << content;
  w.commit();
}

}  // namespace stamp::report
