#pragma once
/// \file json.hpp
/// \brief A small streaming JSON writer for exporting bench results and
///        evaluations to downstream tooling (plots, dashboards).
///
/// Deliberately minimal: objects, arrays, scalars, correct escaping and
/// number formatting. Structure errors (mismatched begin/end, missing keys)
/// throw rather than emit invalid JSON.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::report {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // -- structure ---------------------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value (only inside an object).
  JsonWriter& key(std::string_view k);

  // -- scalars -----------------------------------------------------------------
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True when the document is complete (all containers closed, one root).
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && root_written_;
  }

  /// Escape a string for JSON (exposed for tests).
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  enum class Frame { Object, Array };

  void before_value();
  void write_raw(std::string_view s);

  std::ostream* os_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool key_pending_ = false;
  bool root_written_ = false;
};

}  // namespace stamp::report
