#include "models/speedup.hpp"

#include <cmath>
#include <limits>

namespace stamp::models {
namespace {

void check(double serial_fraction, int processors) {
  if (serial_fraction < 0 || serial_fraction > 1)
    throw std::invalid_argument("serial fraction must be in [0, 1]");
  if (processors < 1) throw std::invalid_argument("processors must be >= 1");
}

}  // namespace

double amdahl_speedup(double s, int p) {
  check(s, p);
  return 1.0 / (s + (1.0 - s) / p);
}

double gustafson_speedup(double s, int p) {
  check(s, p);
  return p - s * (p - 1);
}

double amdahl_limit(double s) {
  check(s, 1);
  if (s == 0) return std::numeric_limits<double>::infinity();
  return 1.0 / s;
}

double equal_power_amdahl_speedup(double s, int p) {
  check(s, p);
  return amdahl_speedup(s, p) / std::cbrt(static_cast<double>(p));
}

int optimal_equal_power_cores(double s, int max_processors) {
  check(s, max_processors);
  int best = 1;
  double best_speedup = equal_power_amdahl_speedup(s, 1);
  for (int p = 2; p <= max_processors; ++p) {
    const double speedup = equal_power_amdahl_speedup(s, p);
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best = p;
    }
  }
  return best;
}

}  // namespace stamp::models
