#pragma once
/// \file round_spec.hpp
/// \brief A model-agnostic description of one communication round, evaluated
///        by each of the classical parallel cost models (Section 2.2's
///        related work) and by STAMP for side-by-side comparison.

namespace stamp::models {

/// Per-process quantities of one round of a data-parallel algorithm.
struct RoundSpec {
  double local_ops = 0;    ///< local computation per process
  double msgs_out = 0;     ///< messages sent per process
  double msgs_in = 0;      ///< messages received per process
  double shm_reads = 0;    ///< shared-memory reads per process
  double shm_writes = 0;   ///< shared-memory writes per process
  double max_location_accesses = 0;  ///< worst accesses to any one location
                                     ///  (QSM queue length / STAMP kappa)

  friend bool operator==(const RoundSpec&, const RoundSpec&) = default;
};

/// The Jacobi S-round of the paper, per process: 2n local ops, n-1 messages
/// each way.
[[nodiscard]] RoundSpec jacobi_round(int n);

/// The APSP S-round of the paper, per process: ~2n^2 local ops, n^2 shared
/// reads, n shared writes; each location is read by all n processes.
[[nodiscard]] RoundSpec apsp_round(int n);

/// A tree-reduction step over p processes: combine two partial results
/// (one message in, one out at interior nodes).
[[nodiscard]] RoundSpec reduction_step(double combine_ops);

}  // namespace stamp::models
