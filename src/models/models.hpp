#pragma once
/// \file models.hpp
/// \brief The classical parallel cost models STAMP is positioned against:
///        PRAM, BSP, LogP, LogGP, and QSM.
///
/// Each model evaluates the per-round time of a `RoundSpec`. The benches use
/// these to reproduce the paper's Section 2.2 argument: PRAM ignores
/// communication entirely; BSP and QSM charge bulk-synchrony every round;
/// LogP/LogGP price messages but have no power model (none of these models
/// has one — that is STAMP's contribution).

#include "core/params.hpp"
#include "models/round_spec.hpp"

#include <span>
#include <string_view>

namespace stamp::models {

// ---------------------------------------------------------------------------
// PRAM
// ---------------------------------------------------------------------------

/// PRAM: synchronous shared memory with free communication. Every shared
/// access costs one unit, there are no latencies or bandwidth limits.
struct PramParams {
  // No parameters: that absence is the point.
};

[[nodiscard]] double pram_round_time(const RoundSpec& r, const PramParams& p = {});

// ---------------------------------------------------------------------------
// BSP (Valiant)
// ---------------------------------------------------------------------------

/// BSP: supersteps of local compute w, an h-relation costing g*h, and a
/// barrier costing l. Time per superstep = w + g*h + l.
struct BspParams {
  double g = 4;  ///< per-message bandwidth charge
  double l = 50; ///< barrier/synchronization latency
};

[[nodiscard]] double bsp_round_time(const RoundSpec& r, const BspParams& p);

// ---------------------------------------------------------------------------
// LogP (Culler et al.)
// ---------------------------------------------------------------------------

/// LogP: latency L, per-message CPU overhead o at both ends, minimum gap g
/// between consecutive messages of one processor; no barriers required.
struct LogPParams {
  double L = 40;  ///< network latency
  double o = 2;   ///< send/receive overhead
  double g = 4;   ///< gap (reciprocal of per-processor bandwidth)
};

[[nodiscard]] double logp_round_time(const RoundSpec& r, const LogPParams& p);

// ---------------------------------------------------------------------------
// LogGP (Alexandrov et al.)
// ---------------------------------------------------------------------------

/// LogGP: LogP plus a per-byte gap G for long messages. Our rounds carry a
/// message size in `words_per_message`.
struct LogGPParams {
  double L = 40;
  double o = 2;
  double g = 4;   ///< gap between messages
  double G = 0.5; ///< gap per additional word of a long message
  double words_per_message = 1;
};

[[nodiscard]] double loggp_round_time(const RoundSpec& r, const LogGPParams& p);

// ---------------------------------------------------------------------------
// QSM (Gibbons, Matias, Ramachandran)
// ---------------------------------------------------------------------------

/// QSM: phases of local compute and queued shared-memory access; phase time
/// is max(work, g * accesses, queue length kappa); reads land only at the
/// phase boundary.
struct QsmParams {
  double g = 4;  ///< bandwidth charge per shared access
};

[[nodiscard]] double qsm_round_time(const RoundSpec& r, const QsmParams& p);

/// Time of `rounds` identical rounds under each model (rounds are
/// sequentially composed in all five models).
[[nodiscard]] double pram_time(const RoundSpec& r, int rounds,
                               const PramParams& p = {});
[[nodiscard]] double bsp_time(const RoundSpec& r, int rounds, const BspParams& p);
[[nodiscard]] double logp_time(const RoundSpec& r, int rounds,
                               const LogPParams& p);
[[nodiscard]] double loggp_time(const RoundSpec& r, int rounds,
                                const LogGPParams& p);
[[nodiscard]] double qsm_time(const RoundSpec& r, int rounds, const QsmParams& p);

// ---------------------------------------------------------------------------
// Uniform dispatch over the five models
// ---------------------------------------------------------------------------

/// The five classical models as runtime-selectable kinds, in a fixed order
/// that downstream artifacts (the sweep JSON schema) rely on.
enum class ModelKind : int { PRAM = 0, BSP = 1, LogP = 2, LogGP = 3, QSM = 4 };

inline constexpr int kModelKindCount = 5;

[[nodiscard]] std::string_view to_string(ModelKind k) noexcept;

/// All five models' parameters in one bundle, so callers can evaluate every
/// model against one machine description.
struct ClassicalParams {
  PramParams pram{};
  BspParams bsp{};
  LogPParams logp{};
  LogGPParams loggp{};
  QsmParams qsm{};
};

/// First-order correspondence from STAMP machine parameters to the classical
/// models' knobs, used by the sweep to report each model's prediction at
/// every machine-grid point:
///   BSP:   g = g_sh_e (inter-processor shm bandwidth), l = ell_e
///   LogP:  L = L_e, o = g_mp_a (intra bandwidth factor as CPU overhead),
///          g = g_mp_e
///   LogGP: as LogP, with G = g_mp_e / 8 (per-word gap well below the
///          per-message gap)
///   QSM:   g = g_sh_e
/// PRAM has no parameters — that absence is the Section 2.2 argument.
[[nodiscard]] ClassicalParams classical_from_machine(const MachineParams& mp);

/// `*_round_time` / `*_time` dispatched on `kind`.
[[nodiscard]] double round_time(ModelKind kind, const RoundSpec& r,
                                const ClassicalParams& p);
[[nodiscard]] double time(ModelKind kind, const RoundSpec& r, int rounds,
                          const ClassicalParams& p);

/// A batch of round specifications in structure-of-arrays form: component
/// `i` of every span describes one round. All spans must have equal length.
/// This is the sweep engine's hot path — the per-model loops are written so
/// the model parameters are loop-invariant scalars and the per-round data
/// streams through contiguously, which lets the compiler vectorize them.
struct RoundSpecBatch {
  std::span<const double> local_ops;
  std::span<const double> msgs_out;
  std::span<const double> msgs_in;
  std::span<const double> shm_reads;
  std::span<const double> shm_writes;
  std::span<const double> max_location_accesses;
};

/// Evaluate `round_time(kind, ...)` for every round in the batch into `out`.
/// Bit-for-bit identical to calling the scalar `round_time` per element (the
/// loops perform the same operations in the same order), so batched sweep
/// artifacts stay byte-identical to the scalar reference path. Throws
/// std::invalid_argument when any span's length differs from `out.size()`.
void round_time_batch(ModelKind kind, const RoundSpecBatch& batch,
                      const ClassicalParams& p, std::span<double> out);

}  // namespace stamp::models
