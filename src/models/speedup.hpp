#pragma once
/// \file speedup.hpp
/// \brief Classical speedup laws (Amdahl, Gustafson) and their power-aware
///        variants — the scaffolding behind Section 2.1's "power wall"
///        argument.
///
/// The paper's claim "if we can get a speedup of more than 2 with the 8
/// cores, we will get a better performance with the same power" implicitly
/// assumes the workload parallelizes; these laws quantify when it does.

#include <stdexcept>

namespace stamp::models {

/// Amdahl's law: speedup of p processors with serial fraction s in [0, 1].
[[nodiscard]] double amdahl_speedup(double serial_fraction, int processors);

/// Gustafson's law (scaled speedup): with per-processor work held constant,
/// speedup = p - s (p - 1).
[[nodiscard]] double gustafson_speedup(double serial_fraction, int processors);

/// Maximum speedup Amdahl allows as p -> infinity: 1 / s (infinite for s=0).
[[nodiscard]] double amdahl_limit(double serial_fraction);

/// Equal-power speedup under Amdahl: p cores at f = p^(-1/3) (same total
/// dynamic power as 1 core at f = 1) running an Amdahl-limited workload:
///   S(p) = f * amdahl(p) = amdahl(s, p) / p^(1/3).
/// The paper's perfect-parallel case is s = 0: S = p^(2/3).
[[nodiscard]] double equal_power_amdahl_speedup(double serial_fraction,
                                                int processors);

/// The core count maximizing equal-power Amdahl speedup (beyond it, the
/// frequency penalty outweighs added parallelism). Exhaustive over
/// [1, max_processors].
[[nodiscard]] int optimal_equal_power_cores(double serial_fraction,
                                            int max_processors);

}  // namespace stamp::models
