#include "models/models.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

namespace stamp::models {

RoundSpec jacobi_round(int n) {
  RoundSpec r;
  r.local_ops = 2.0 * n;
  r.msgs_out = n - 1.0;
  r.msgs_in = n - 1.0;
  r.max_location_accesses = 1;
  return r;
}

RoundSpec apsp_round(int n) {
  RoundSpec r;
  const double dn = n;
  r.local_ops = 2.0 * dn * dn;  // n^2 additions + ~n^2 comparisons
  r.shm_reads = dn * dn;
  r.shm_writes = dn;
  r.max_location_accesses = dn;  // every process reads each location
  return r;
}

RoundSpec reduction_step(double combine_ops) {
  RoundSpec r;
  r.local_ops = combine_ops;
  r.msgs_out = 1;
  r.msgs_in = 1;
  r.max_location_accesses = 1;
  return r;
}

double pram_round_time(const RoundSpec& r, const PramParams&) {
  // Communication is free except that each access is one unit step.
  return r.local_ops + r.msgs_out + r.msgs_in + r.shm_reads + r.shm_writes;
}

double bsp_round_time(const RoundSpec& r, const BspParams& p) {
  // h-relation: the max of what one processor sends and receives; shared
  // reads/writes count as remote gets/puts.
  const double h = std::max(r.msgs_out + r.shm_reads + r.shm_writes,
                            r.msgs_in + r.shm_reads + r.shm_writes);
  return r.local_ops + p.g * h + p.l;
}

double logp_round_time(const RoundSpec& r, const LogPParams& p) {
  // Per round: compute, pay overhead o per message end, gaps between
  // consecutive sends, and one network latency to get the last message over.
  const double msgs = r.msgs_out + r.shm_reads + r.shm_writes;  // shm ~ msgs
  const double sends = msgs;
  const double recvs = r.msgs_in + r.shm_reads;  // a read returns a reply
  double t = r.local_ops + p.o * (sends + recvs);
  if (sends > 1) t += p.g * (sends - 1);
  if (sends + recvs > 0) t += p.L;
  return t;
}

double loggp_round_time(const RoundSpec& r, const LogGPParams& p) {
  const double msgs = r.msgs_out + r.shm_reads + r.shm_writes;
  const double recvs = r.msgs_in + r.shm_reads;
  double t = r.local_ops + p.o * (msgs + recvs);
  if (msgs > 1) t += p.g * (msgs - 1);
  if (p.words_per_message > 1) t += p.G * (p.words_per_message - 1) * msgs;
  if (msgs + recvs > 0) t += p.L;
  return t;
}

double qsm_round_time(const RoundSpec& r, const QsmParams& p) {
  // Phase cost: max of computation, bandwidth-charged access, and the worst
  // queue at any one location (accesses serialize there).
  const double accesses =
      r.shm_reads + r.shm_writes + r.msgs_out + r.msgs_in;  // msg ~ shm in QSM
  return std::max({r.local_ops, p.g * accesses, r.max_location_accesses});
}

double pram_time(const RoundSpec& r, int rounds, const PramParams& p) {
  return rounds * pram_round_time(r, p);
}
double bsp_time(const RoundSpec& r, int rounds, const BspParams& p) {
  return rounds * bsp_round_time(r, p);
}
double logp_time(const RoundSpec& r, int rounds, const LogPParams& p) {
  return rounds * logp_round_time(r, p);
}
double loggp_time(const RoundSpec& r, int rounds, const LogGPParams& p) {
  return rounds * loggp_round_time(r, p);
}
double qsm_time(const RoundSpec& r, int rounds, const QsmParams& p) {
  return rounds * qsm_round_time(r, p);
}

std::string_view to_string(ModelKind k) noexcept {
  switch (k) {
    case ModelKind::PRAM: return "PRAM";
    case ModelKind::BSP: return "BSP";
    case ModelKind::LogP: return "LogP";
    case ModelKind::LogGP: return "LogGP";
    case ModelKind::QSM: return "QSM";
  }
  return "?";
}

ClassicalParams classical_from_machine(const MachineParams& mp) {
  ClassicalParams p;
  p.bsp.g = mp.g_sh_e;
  p.bsp.l = mp.ell_e;
  p.logp.L = mp.L_e;
  p.logp.o = mp.g_mp_a;
  p.logp.g = mp.g_mp_e;
  p.loggp.L = mp.L_e;
  p.loggp.o = mp.g_mp_a;
  p.loggp.g = mp.g_mp_e;
  p.loggp.G = mp.g_mp_e / 8.0;
  p.qsm.g = mp.g_sh_e;
  return p;
}

double round_time(ModelKind kind, const RoundSpec& r, const ClassicalParams& p) {
  switch (kind) {
    case ModelKind::PRAM: return pram_round_time(r, p.pram);
    case ModelKind::BSP: return bsp_round_time(r, p.bsp);
    case ModelKind::LogP: return logp_round_time(r, p.logp);
    case ModelKind::LogGP: return loggp_round_time(r, p.loggp);
    case ModelKind::QSM: return qsm_round_time(r, p.qsm);
  }
  return 0;
}

double time(ModelKind kind, const RoundSpec& r, int rounds,
            const ClassicalParams& p) {
  return rounds * round_time(kind, r, p);
}

void round_time_batch(ModelKind kind, const RoundSpecBatch& batch,
                      const ClassicalParams& p, std::span<double> out) {
  const std::size_t n = out.size();
  if (batch.local_ops.size() != n || batch.msgs_out.size() != n ||
      batch.msgs_in.size() != n || batch.shm_reads.size() != n ||
      batch.shm_writes.size() != n || batch.max_location_accesses.size() != n)
    throw std::invalid_argument(
        "round_time_batch: all spans must match out.size()");
  const double* c = batch.local_ops.data();
  const double* mo = batch.msgs_out.data();
  const double* mi = batch.msgs_in.data();
  const double* sr = batch.shm_reads.data();
  const double* sw = batch.shm_writes.data();
  const double* ml = batch.max_location_accesses.data();
  // Each loop repeats the scalar model's expressions verbatim (same
  // operations, same order) with the parameters hoisted to scalars — the
  // bit-identity contract with `round_time` depends on that.
  switch (kind) {
    case ModelKind::PRAM:
      for (std::size_t i = 0; i < n; ++i)
        out[i] = c[i] + mo[i] + mi[i] + sr[i] + sw[i];
      return;
    case ModelKind::BSP: {
      const double g = p.bsp.g, l = p.bsp.l;
      for (std::size_t i = 0; i < n; ++i) {
        const double h =
            std::max(mo[i] + sr[i] + sw[i], mi[i] + sr[i] + sw[i]);
        out[i] = c[i] + g * h + l;
      }
      return;
    }
    case ModelKind::LogP: {
      const double L = p.logp.L, o = p.logp.o, g = p.logp.g;
      for (std::size_t i = 0; i < n; ++i) {
        const double msgs = mo[i] + sr[i] + sw[i];
        const double sends = msgs;
        const double recvs = mi[i] + sr[i];
        double t = c[i] + o * (sends + recvs);
        if (sends > 1) t += g * (sends - 1);
        if (sends + recvs > 0) t += L;
        out[i] = t;
      }
      return;
    }
    case ModelKind::LogGP: {
      const double L = p.loggp.L, o = p.loggp.o, g = p.loggp.g;
      const double G = p.loggp.G, wpm = p.loggp.words_per_message;
      for (std::size_t i = 0; i < n; ++i) {
        const double msgs = mo[i] + sr[i] + sw[i];
        const double recvs = mi[i] + sr[i];
        double t = c[i] + o * (msgs + recvs);
        if (msgs > 1) t += g * (msgs - 1);
        if (wpm > 1) t += G * (wpm - 1) * msgs;
        if (msgs + recvs > 0) t += L;
        out[i] = t;
      }
      return;
    }
    case ModelKind::QSM: {
      const double g = p.qsm.g;
      for (std::size_t i = 0; i < n; ++i) {
        const double accesses = sr[i] + sw[i] + mo[i] + mi[i];
        out[i] = std::max({c[i], g * accesses, ml[i]});
      }
      return;
    }
  }
  throw std::invalid_argument("round_time_batch: unknown model kind");
}

}  // namespace stamp::models
