#include "sweep/gate.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace stamp::sweep {
namespace {

using report::JsonValue;

/// The writer's number formatting, reused so point keys round-trip exactly.
std::string fmt(double v) {
  std::ostringstream ss;
  ss.precision(15);
  ss << v;
  return ss.str();
}

/// Canonical "axis=value,..." key of one point's params object (members keep
/// serialization order, which the schema fixes to grid-axis order).
std::string point_key(const JsonValue& point) {
  const JsonValue* params = point.find("params");
  if (!params || params->kind() != JsonValue::Kind::Object)
    throw std::runtime_error("sweep artifact: point without a params object");
  std::string key;
  for (const auto& [name, value] : params->members()) {
    if (!key.empty()) key += ',';
    key += name;
    key += '=';
    key += fmt(value.as_number());
  }
  return key;
}

const std::vector<JsonValue>& points_of(const JsonValue& doc) {
  const JsonValue* points = doc.find("points");
  if (!points || points->kind() != JsonValue::Kind::Array)
    throw std::runtime_error("sweep artifact: missing points array");
  return points->items();
}

bool same_header(const JsonValue& a, const JsonValue& b,
                 std::string_view field) {
  const JsonValue* va = a.find(field);
  const JsonValue* vb = b.find(field);
  if (!va || !vb) return false;
  if (va->kind() == JsonValue::Kind::String &&
      vb->kind() == JsonValue::Kind::String)
    return va->as_string() == vb->as_string();
  if (va->kind() == JsonValue::Kind::Array &&
      vb->kind() == JsonValue::Kind::Array) {
    const auto& ia = va->items();
    const auto& ib = vb->items();
    if (ia.size() != ib.size()) return false;
    for (std::size_t i = 0; i < ia.size(); ++i)
      if (ia[i].as_string() != ib[i].as_string()) return false;
    return true;
  }
  return false;
}

/// Compare one group object ("metrics" or "models") between the two sides.
void compare_group(const std::string& key, const JsonValue& base_point,
                   const JsonValue& fresh_point, std::string_view group,
                   const GateTolerances& tol, GateReport& out) {
  const JsonValue* bg = base_point.find(group);
  const JsonValue* fg = fresh_point.find(group);
  if (!bg || !fg || bg->kind() != JsonValue::Kind::Object ||
      fg->kind() != JsonValue::Kind::Object) {
    out.issues.push_back({GateIssue::Kind::MissingMetric, key,
                          std::string(group), 0, 0, 0});
    return;
  }
  // Union of metric names, baseline order first: a metric present on only
  // one side is itself drift (the schema changed under the baseline).
  auto check_one = [&](const std::string& name) {
    const JsonValue* bv = bg->find(name);
    const JsonValue* fv = fg->find(name);
    if (!bv || !fv) {
      out.issues.push_back(
          {GateIssue::Kind::MissingMetric, key, name, 0, 0, 0});
      return;
    }
    if (bv->is_null() || fv->is_null() ||
        bv->kind() != JsonValue::Kind::Number ||
        fv->kind() != JsonValue::Kind::Number) {
      out.issues.push_back({GateIssue::Kind::NotANumber, key, name, 0, 0, 0});
      return;
    }
    const double b = bv->as_number();
    const double f = fv->as_number();
    if (std::isnan(b) || std::isnan(f)) {
      out.issues.push_back({GateIssue::Kind::NotANumber, key, name, b, f, 0});
      return;
    }
    const double diff = std::abs(f - b);
    const double denom = std::max(std::abs(b), std::abs(f));
    // Exactly-at-tolerance passes: the gate bound is `diff <= tol * denom`.
    if (diff > tol.for_metric(name) * denom) {
      out.issues.push_back({GateIssue::Kind::Drift, key, name, b, f,
                            denom > 0 ? diff / denom : 0.0});
    }
  };
  for (const auto& [name, unused] : bg->members()) {
    (void)unused;
    check_one(name);
  }
  for (const auto& [name, unused] : fg->members()) {
    (void)unused;
    if (!bg->find(name)) check_one(name);
  }
}

}  // namespace

double GateTolerances::for_metric(std::string_view name) const noexcept {
  if (name == "D") return D;
  if (name == "PDP") return PDP;
  if (name == "EDP") return EDP;
  if (name == "ED2P") return ED2P;
  return models;
}

std::string GateIssue::describe() const {
  std::ostringstream ss;
  switch (kind) {
    case Kind::MissingInBaseline:
      ss << "point not in baseline (stale baseline?): " << point;
      break;
    case Kind::MissingInFresh:
      ss << "baseline point missing from fresh sweep: " << point;
      break;
    case Kind::MissingMetric:
      ss << "metric '" << metric << "' missing at " << point;
      break;
    case Kind::NotANumber:
      ss << "metric '" << metric << "' is NaN/null at " << point;
      break;
    case Kind::FeasibilityFlip:
      ss << "feasibility flipped at " << point;
      break;
    case Kind::Drift:
      ss << "drift in '" << metric << "' at " << point << ": baseline "
         << fmt(baseline) << " -> fresh " << fmt(fresh) << " (rel "
         << fmt(relative) << ")";
      break;
    case Kind::SchemaMismatch:
      ss << "schema/axes/workload mismatch between baseline and fresh sweep";
      break;
  }
  return ss.str();
}

GateReport compare_sweeps(const JsonValue& baseline, const JsonValue& fresh,
                          const GateTolerances& tol) {
  GateReport out;

  for (std::string_view field : {"schema", "workload", "axes"}) {
    if (!same_header(baseline, fresh, field)) {
      out.issues.push_back(
          {GateIssue::Kind::SchemaMismatch, "", std::string(field), 0, 0, 0});
      out.ok = false;
      return out;  // keys would not line up; point diffs would be noise
    }
  }

  const auto& base_points = points_of(baseline);
  const auto& fresh_points = points_of(fresh);

  std::unordered_map<std::string, const JsonValue*> base_by_key;
  base_by_key.reserve(base_points.size());
  for (const JsonValue& p : base_points) base_by_key.emplace(point_key(p), &p);

  std::unordered_map<std::string, bool> seen;
  seen.reserve(base_points.size());

  for (const JsonValue& fp : fresh_points) {
    const std::string key = point_key(fp);
    const auto it = base_by_key.find(key);
    if (it == base_by_key.end()) {
      out.issues.push_back(
          {GateIssue::Kind::MissingInBaseline, key, "", 0, 0, 0});
      continue;
    }
    seen[key] = true;
    const JsonValue& bp = *it->second;
    ++out.points_compared;

    const JsonValue* bf = bp.find("feasible");
    const JsonValue* ff = fp.find("feasible");
    if (bf && ff && bf->kind() == JsonValue::Kind::Bool &&
        ff->kind() == JsonValue::Kind::Bool &&
        bf->as_bool() != ff->as_bool()) {
      out.issues.push_back(
          {GateIssue::Kind::FeasibilityFlip, key, "feasible", 0, 0, 0});
    }
    compare_group(key, bp, fp, "metrics", tol, out);
    compare_group(key, bp, fp, "models", tol, out);
  }

  for (const JsonValue& bp : base_points) {
    const std::string key = point_key(bp);
    if (!seen.contains(key))
      out.issues.push_back({GateIssue::Kind::MissingInFresh, key, "", 0, 0, 0});
  }

  out.ok = out.issues.empty();
  return out;
}

GateReport compare_sweeps_text(std::string_view baseline, std::string_view fresh,
                               const GateTolerances& tol) {
  return compare_sweeps(JsonValue::parse(baseline), JsonValue::parse(fresh),
                        tol);
}

void print_report(const GateReport& report, std::ostream& os) {
  for (const GateIssue& issue : report.issues)
    os << "GATE: " << issue.describe() << "\n";
  if (report.ok) {
    os << "gate OK: " << report.points_compared
       << " points within tolerance\n";
  } else {
    os << "gate FAILED: " << report.issues.size() << " issue(s) over "
       << report.points_compared << " compared points\n";
  }
}

}  // namespace stamp::sweep
