#include "sweep/cache.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace stamp::sweep {
namespace {

/// Canonical bit pattern of one key component: -0.0 collapses to 0.0 (equal
/// grid values must share a cache line), NaN/Inf are rejected (a NaN key
/// would never match itself; an Inf grid value is a config bug upstream).
std::uint64_t canonical_bits(double v) {
  if (!std::isfinite(v))
    throw std::invalid_argument(
        "CostCache: key component is NaN or infinite");
  if (v == 0.0) v = 0.0;  // maps -0.0 onto +0.0
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

/// splitmix64 finalizer: the standard strong 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Map a (well-mixed) hash to a probe start in a power-of-two slot array.
/// Fibonacci hashing over the high bits keeps the probe sequence decorrelated
/// from shard selection, which uses the hash modulo the shard count.
constexpr std::size_t probe_start(std::uint64_t hash,
                                  std::size_t mask) noexcept {
  return static_cast<std::size_t>((hash * 0x9E3779B97F4A7C15ull) >> 32) & mask;
}

constexpr std::size_t kInitialSlots = 16;

}  // namespace

CostCache::CostCache(std::size_t shards, std::size_t max_entries_per_shard)
    : max_entries_per_shard_(max_entries_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

CostCache::CostCache(const CacheOptions& options)
    : CostCache(options.shards, options.max_entries_per_shard) {
  if (options.ttl.count() > 0)
    ttl_ns_ = static_cast<std::uint64_t>(options.ttl.count());
  admission_ = options.admission && max_entries_per_shard_ > 0;
  clock_ = options.now_ns;
}

std::uint64_t CostCache::now_ns() const {
  if (clock_) return clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool CostCache::door_admit_locked(Shard& shard, std::uint64_t hash) {
  if (shard.door.empty()) {
    // Direct-mapped, sized ~2x the shard bound: collisions merely admit a
    // key one miss early, which is a policy softening, never a correctness
    // issue — and the mapping is deterministic for the admission tests.
    std::size_t cap = kInitialSlots;
    while (cap < max_entries_per_shard_ * 2) cap *= 2;
    shard.door.assign(cap, 0);
  }
  const std::size_t idx = probe_start(hash, shard.door.size() - 1);
  const std::uint64_t tag = hash | 1ull;
  if (shard.door[idx] == tag) {
    shard.door[idx] = 0;  // admitted: the slot is free for the next newcomer
    return true;
  }
  shard.door[idx] = tag;
  return false;
}

std::uint64_t CostCache::hash_key(std::span<const double> key) {
  // Length-seeded so a tuple and its prefix never hash alike.
  std::uint64_t h = mix64(0x5354414D50ull ^ key.size());  // "STAMP"
  for (const double v : key) h = mix64(h ^ canonical_bits(v));
  return h;
}

CostCache::Shard& CostCache::shard_for(std::uint64_t hash) {
  return *shards_[static_cast<std::size_t>(hash % shards_.size())];
}

std::int32_t CostCache::find_locked(Shard& shard, std::uint64_t hash,
                                    std::span<const double> key) const {
  if (shard.slots.empty()) return -1;
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t idx = probe_start(hash, mask);
  for (;;) {
    const std::int32_t s = shard.slots[idx];
    if (s == kEmptySlot) return -1;
    if (s != kTombstone) {
      const Entry& e = shard.entries[static_cast<std::size_t>(s)];
      if (e.hash == hash && e.key_len == key.size()) {
        // Verify the full tuple: a 64-bit collision degrades to one more
        // probe step, never a wrong value. `==` treats -0.0 and 0.0 as the
        // same component, matching the canonical hash.
        const double* stored = shard.key_arena.data() + e.key_offset;
        bool equal = true;
        for (std::size_t i = 0; i < key.size(); ++i) {
          if (!(stored[i] == key[i])) {
            equal = false;
            break;
          }
        }
        if (equal) return s;
      }
    }
    idx = (idx + 1) & mask;
  }
}

void CostCache::rehash_locked(Shard& shard, std::size_t min_slots) {
  std::size_t cap = kInitialSlots;
  while (cap < min_slots) cap *= 2;
  std::vector<std::int32_t> fresh(cap, kEmptySlot);
  const std::size_t mask = cap - 1;
  for (const std::int32_t s : shard.slots) {
    if (s < 0) continue;  // empty or tombstone
    const Entry& e = shard.entries[static_cast<std::size_t>(s)];
    std::size_t idx = probe_start(e.hash, mask);
    while (fresh[idx] != kEmptySlot) idx = (idx + 1) & mask;
    fresh[idx] = s;
  }
  shard.slots = std::move(fresh);
  shard.tombstones = 0;
}

void CostCache::evict_oldest_locked(Shard& shard) {
  const std::int32_t victim = shard.fifo[shard.fifo_head];
  shard.fifo_head = (shard.fifo_head + 1) % shard.fifo.size();
  --shard.fifo_size;

  const Entry& e = shard.entries[static_cast<std::size_t>(victim)];
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t idx = probe_start(e.hash, mask);
  while (shard.slots[idx] != victim) idx = (idx + 1) & mask;
  shard.slots[idx] = kTombstone;
  ++shard.tombstones;
  --shard.live;
  shard.free.push_back(victim);  // the arena span is reused with the entry

  evictions_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter("cache.evictions").add();
}

PointCost CostCache::insert_locked(Shard& shard, std::uint64_t hash,
                                   std::span<const double> key,
                                   const PointCost& value, std::uint64_t now) {
  if (max_entries_per_shard_ > 0 && shard.live >= max_entries_per_shard_)
    evict_oldest_locked(shard);

  // Keep the probe chains short: grow (or purge tombstones) at 70% load.
  if (shard.slots.empty()) {
    shard.slots.assign(kInitialSlots, kEmptySlot);
  } else if ((shard.live + shard.tombstones + 1) * 10 >=
             shard.slots.size() * 7) {
    rehash_locked(shard, shard.live * 2 + kInitialSlots);
  }

  // Entry storage: reuse a freed entry whose arena span fits the new tuple.
  // Scan the whole free list (newest first), not just the back — with mixed
  // key arities a single mismatched entry parked at the back would otherwise
  // block reuse of everything beneath it and grow the arena without bound.
  // Sweeps are single-arity, so the scan finds a match at the back anyway.
  std::int32_t entry_index = -1;
  for (std::size_t i = shard.free.size(); i-- > 0;) {
    const std::int32_t f = shard.free[i];
    if (shard.entries[static_cast<std::size_t>(f)].key_len == key.size()) {
      entry_index = f;
      shard.free[i] = shard.free.back();  // order is irrelevant: swap-remove
      shard.free.pop_back();
      break;
    }
  }
  if (entry_index < 0) {
    entry_index = static_cast<std::int32_t>(shard.entries.size());
    Entry fresh;
    fresh.key_offset = static_cast<std::uint32_t>(shard.key_arena.size());
    fresh.key_len = static_cast<std::uint32_t>(key.size());
    shard.key_arena.resize(shard.key_arena.size() + key.size());
    shard.entries.push_back(fresh);
  }
  Entry& e = shard.entries[static_cast<std::size_t>(entry_index)];
  e.hash = hash;
  e.value = value;
  e.stamp = now;
  double* stored = shard.key_arena.data() + e.key_offset;
  for (std::size_t i = 0; i < key.size(); ++i)
    stored[i] = key[i] == 0.0 ? 0.0 : key[i];  // store canonicalized

  // Link into the slot array, preferring the first tombstone on the chain.
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t idx = probe_start(hash, mask);
  std::size_t place = shard.slots.size();  // sentinel: none yet
  while (shard.slots[idx] != kEmptySlot) {
    if (shard.slots[idx] == kTombstone && place == shard.slots.size())
      place = idx;
    idx = (idx + 1) & mask;
  }
  if (place == shard.slots.size()) {
    place = idx;
  } else {
    --shard.tombstones;
  }
  shard.slots[place] = entry_index;
  ++shard.live;

  // FIFO ring bookkeeping (bounded mode): entry indices in insertion order.
  if (max_entries_per_shard_ > 0) {
    if (shard.fifo_size == shard.fifo.size()) {
      // Grow the ring, re-linearized from head. Capacity is bounded by the
      // shard's entry bound, so growth stops once the cache is warm.
      std::vector<std::int32_t> grown;
      grown.reserve(std::max<std::size_t>(8, shard.fifo.size() * 2));
      for (std::size_t i = 0; i < shard.fifo_size; ++i)
        grown.push_back(
            shard.fifo[(shard.fifo_head + i) % shard.fifo.size()]);
      grown.resize(std::max<std::size_t>(8, shard.fifo.size() * 2));
      shard.fifo = std::move(grown);
      shard.fifo_head = 0;
    }
    shard.fifo[(shard.fifo_head + shard.fifo_size) % shard.fifo.size()] =
        entry_index;
    ++shard.fifo_size;
  }
  return e.value;
}

PointCost CostCache::get_or_compute(std::span<const double> key,
                                    core::function_ref<PointCost()> compute) {
  const std::uint64_t hash = hash_key(key);  // validates the tuple
  Shard& shard = shard_for(hash);
  const bool ttl_armed = ttl_ns_ > 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::int32_t found = find_locked(shard, hash, key);
    if (found >= 0) {
      const Entry& e = shard.entries[static_cast<std::size_t>(found)];
      if (!ttl_armed || !stale(e, now_ns())) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled())
          obs::MetricsRegistry::global().counter("cache.hits").add();
        return e.value;
      }
      // Stale: fall through and recompute; the entry is refreshed in place
      // below (or by a racing thread, in which case we take its hit).
    }
  }
  PointCost value;
  {
    obs::ScopedSpan span = obs::ScopedSpan::if_enabled("cache.compute", "cache");
    value = compute();
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Re-probe: another thread may have raced us to the same key. The loser
  // counts as a hit (the entry exists; inserting again would double-count
  // the miss, duplicate the FIFO slot, and let eviction evict a live entry
  // while its stale twin survives — the drift this accounting forbids).
  const std::int32_t found = find_locked(shard, hash, key);
  if (found >= 0) {
    Entry& e = shard.entries[static_cast<std::size_t>(found)];
    const std::uint64_t now = ttl_armed ? now_ns() : 0;
    if (!ttl_armed || !stale(e, now)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("cache.hits").add();
      return e.value;
    }
    // Still stale under the lock: refresh in place. Exactly one thread per
    // refresh reaches this line (a racing loser re-probes, sees the fresh
    // stamp, and counts a hit above), so `expirations` stays exact.
    e.value = value;
    e.stamp = now;
    expirations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::global().counter("cache.expirations").add();
      obs::MetricsRegistry::global().counter("cache.misses").add();
    }
    return e.value;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter("cache.misses").add();
  if (admission_ && shard.live >= max_entries_per_shard_ &&
      !door_admit_locked(shard, hash)) {
    // Turned away: the caller still gets the computed value, the working
    // set keeps its slot, and the key is remembered for a second chance.
    admission_rejections_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global()
          .counter("cache.admission_rejections")
          .add();
    return value;
  }
  return insert_locked(shard, hash, key, value,
                       ttl_armed ? now_ns() : 0);
}

std::uint64_t CostCache::hits() const noexcept {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t CostCache::misses() const noexcept {
  return misses_.load(std::memory_order_relaxed);
}

std::uint64_t CostCache::evictions() const noexcept {
  return evictions_.load(std::memory_order_relaxed);
}

std::uint64_t CostCache::expirations() const noexcept {
  return expirations_.load(std::memory_order_relaxed);
}

std::uint64_t CostCache::admission_rejections() const noexcept {
  return admission_rejections_.load(std::memory_order_relaxed);
}

std::size_t CostCache::entry_capacity() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->entries.size();
  }
  return total;
}

std::size_t CostCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->live;
  }
  return total;
}

void CostCache::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    s->slots.clear();
    s->live = 0;
    s->tombstones = 0;
    s->entries.clear();
    s->free.clear();
    s->key_arena.clear();
    s->fifo.clear();
    s->fifo_head = 0;
    s->fifo_size = 0;
    s->door.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  expirations_.store(0, std::memory_order_relaxed);
  admission_rejections_.store(0, std::memory_order_relaxed);
}

}  // namespace stamp::sweep
