#include "sweep/cache.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <algorithm>
#include <cstring>

namespace stamp::sweep {

CostCache::CostCache(std::size_t shards, std::size_t max_entries_per_shard)
    : max_entries_per_shard_(max_entries_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::string CostCache::encode(std::span<const double> key) {
  std::string out(key.size() * sizeof(double), '\0');
  if (!key.empty()) std::memcpy(out.data(), key.data(), out.size());
  return out;
}

CostCache::Shard& CostCache::shard_for(const std::string& encoded) {
  const std::size_t h = std::hash<std::string>{}(encoded);
  return *shards_[h % shards_.size()];
}

PointCost CostCache::get_or_compute(std::span<const double> key,
                                    const std::function<PointCost()>& compute) {
  const std::string encoded = encode(key);
  Shard& shard = shard_for(encoded);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(encoded);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("cache.hits").add();
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter("cache.misses").add();
  PointCost value;
  {
    obs::ScopedSpan span = obs::ScopedSpan::if_enabled("cache.compute", "cache");
    value = compute();
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  // emplace keeps an already-inserted value if another thread raced us.
  const auto [it, inserted] = shard.map.emplace(encoded, value);
  if (inserted && max_entries_per_shard_ > 0) {
    shard.order.push_back(encoded);
    if (shard.map.size() > max_entries_per_shard_) {
      shard.map.erase(shard.order.front());
      shard.order.erase(shard.order.begin());
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("cache.evictions").add();
    }
  }
  return it->second;
}

std::uint64_t CostCache::hits() const noexcept {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t CostCache::misses() const noexcept {
  return misses_.load(std::memory_order_relaxed);
}

std::uint64_t CostCache::evictions() const noexcept {
  return evictions_.load(std::memory_order_relaxed);
}

std::size_t CostCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->map.size();
  }
  return total;
}

void CostCache::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    s->map.clear();
    s->order.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace stamp::sweep
