#pragma once
/// \file batch.hpp
/// \brief The structure-of-arrays batch evaluator behind `run_sweep` — the
///        sweep hot path for streaming million-point grids.
///
/// The scalar path paid, per grid point: one `grid.point()` allocation,
/// eight axis-name lookups, a full `MachineModel` copy + `validate()`, four
/// `CostCache` probes for one computation, a per-candidate profile-vector
/// assign inside `place_*`, and five scalar classical-model calls. None of
/// that work changes the artifact — so the batch evaluator restructures it
/// without changing a single output bit:
///
///  - a claimed index range is decoded in one `ParamGrid::decode_chunk` call
///    into thread-local structure-of-arrays scratch (zero per-batch
///    allocation once warm);
///  - consecutive points that share machine-axis values (the grid's slow
///    axes) reuse one validated `MachineModel` instead of copy+validate per
///    point;
///  - the `CostCache` is probed once per point (all four metrics derive from
///    the one memoized `(T, E)` pair), not once per metric;
///  - uniform-profile placements (the only kind a sweep evaluates — every
///    candidate strong-scales one total profile into n identical processes)
///    are priced by `process_cost_in_group` over a per-group-size table
///    computed in a tight closed-form loop, replicating `place_fill_first` /
///    `place_round_robin` / `place_greedy` arithmetic exactly but without
///    materializing profile vectors, `Placement` objects, or per-process
///    cost vectors;
///  - classical baselines are evaluated per machine-group run with
///    `models::round_time_batch` (loop-invariant parameters, contiguous
///    per-point data).
///
/// Bit-identity with the scalar reference is the contract, not an
/// aspiration: `evaluate_point_reference` keeps the original scalar
/// pipeline alive, the equivalence tests compare every record of real grids
/// against it, and CI's sweep gate still `cmp`s artifacts against
/// `sweeps/baseline.json` at several pool widths. PR 5's durability
/// semantics survive per-index: resume-completed points are skipped, the
/// fault-injection site and deadline watchdog fire per index, every
/// completed point reaches the journal, and cancellation is honored between
/// points.

#include "core/metrics.hpp"
#include "sweep/cache.hpp"
#include "sweep/sweep.hpp"

#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>

namespace stamp::sweep {

/// The original scalar selection for one point: strong-scale the profile
/// over candidate process counts, place each candidate through the core
/// `place_*` API, keep the best under the objective (feasible preferred).
/// Kept as the reference implementation the batch path is tested against.
[[nodiscard]] PointCost compute_point_cost_reference(const PointSetup& s,
                                                     Objective objective);

/// The original scalar evaluation of one grid point, cache-free: decode,
/// setup, select, price the classical baselines. The batch evaluator must
/// reproduce this record bit-for-bit for every index of every grid — the
/// equivalence tests enforce it.
[[nodiscard]] SweepRecord evaluate_point_reference(const SweepConfig& cfg,
                                                   std::size_t index);

/// Evaluates contiguous grid-index ranges into a pre-sized record array.
/// One instance serves all workers of a sweep: per-thread scratch (SoA
/// buffers, placement tables, the machine-group cache) lives in
/// thread-local storage keyed to the evaluator instance, so concurrent
/// `run_range` calls never share mutable state.
class BatchEvaluator {
 public:
  /// Points decoded and staged per sub-batch. Large enough to amortize the
  /// chunk decode and classical-model loops, small enough that the scratch
  /// stays cache-resident (a sub-batch is ~14 SoA doubles per point).
  static constexpr std::size_t kBatch = 256;

  /// `cfg`, `cache`, and everything `options` points at must outlive the
  /// evaluator. `record_offset` rebases the record array: grid index `i`
  /// lands in `records[i - record_offset]`. The sweep drivers pass 0 with a
  /// full-grid array; the guided search prices contiguous leaf windows into
  /// block-local buffers by offsetting at the window's first index.
  BatchEvaluator(const SweepConfig& cfg, CostCache& cache,
                 const SweepOptions& options, std::size_t record_offset = 0);

  /// Evaluate grid indices [begin, end) into `records` (indexed by grid
  /// index minus the constructor's `record_offset`).
  /// Resume-completed points are skipped; cancellation is checked
  /// per point; each completed point is appended to the journal (in index
  /// order within the range). Returns the number of points journaled.
  ///
  /// Error policy: with `fail_fast` (the serial driver), the first failing
  /// point finishes and journals every point evaluated before it, then
  /// rethrows — exactly the scalar serial semantics. Without it (pool
  /// workers), a failing point is recorded into `*first_error` (under
  /// `*error_mutex`) and every other point still runs, matching the pool's
  /// drain-then-rethrow contract; the driver rethrows after the loop.
  std::uint64_t run_range(std::size_t begin, std::size_t end,
                          std::span<SweepRecord> records, bool fail_fast,
                          std::mutex* error_mutex,
                          std::exception_ptr* first_error);

 private:
  struct Scratch;

  [[nodiscard]] Scratch& scratch() const;
  std::uint64_t run_subbatch(std::size_t begin, std::size_t end,
                             std::span<SweepRecord> records, bool fail_fast,
                             std::mutex* error_mutex,
                             std::exception_ptr* first_error, Scratch& sc);
  void evaluate_one(std::size_t index, std::size_t slot, std::size_t count,
                    SweepRecord& rec, Scratch& sc);
  void setup_current(const SweepRecord& rec, Scratch& sc) const;
  [[nodiscard]] PointCost compute_uniform_point(Scratch& sc) const;
  [[nodiscard]] PointCost uniform_placement_cost(int n, Scratch& sc) const;
  void greedy_assign(int n, Scratch& sc) const;
  void finalize_classical(std::size_t base, std::size_t count,
                          std::span<SweepRecord> records, Scratch& sc);

  const SweepConfig* cfg_;
  CostCache* cache_;
  SweepOptions options_;
  std::uint64_t id_;   ///< distinguishes evaluators sharing a thread's scratch
  std::size_t offset_;  ///< records[] rebase: grid index i -> records[i - offset_]
  std::size_t naxes_;
  // Axis positions resolved once (the scalar path re-ran the name lookups
  // for every point).
  int ax_cores_;
  int ax_tpc_;
  int ax_ell_;
  int ax_le_;
  int ax_gsh_;
  int ax_kappa_;
  int ax_place_;
  int ax_procs_;
};

}  // namespace stamp::sweep
