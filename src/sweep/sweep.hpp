#pragma once
/// \file sweep.hpp
/// \brief The parameter-sweep engine: evaluate the STAMP cost model (and the
///        classical baselines) over a Cartesian grid of machine parameters
///        and thread placements, serially or on a work-stealing pool, with
///        deterministic, gate-able JSON artifacts.
///
/// Each grid point describes one machine configuration (cores, hardware
/// threads per core, inter-processor ℓ / L / g), one workload serialization
/// bound κ, and one placement strategy. Evaluating a point answers the
/// paper's selection question for that configuration: the total workload is
/// strong-scaled across candidate process counts (1, 2, 4, ... up to the
/// point's hardware thread count), each candidate's placement is evaluated,
/// and the best count under the sweep objective wins. All four selection
/// metrics (D, PDP, EDP, ED²P) derive from that one winning (T, E) pair —
/// so the evaluation is memoized per canonical parameter tuple and probed
/// once per point. Records are stored by grid index, which makes an N-thread
/// sweep byte-identical to a 1-thread sweep.
///
/// Evaluation itself runs through the batch evaluator (batch.hpp): workers
/// claim contiguous index ranges, stream-decode them into structure-of-arrays
/// scratch, and price them in closed-form loops — grids are never
/// materialized, so a 10⁶–10⁸-point sweep streams at constant memory (plus
/// the records themselves).

#include "core/cancel.hpp"
#include "core/compat.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/placement.hpp"
#include "models/models.hpp"
#include "sweep/cache.hpp"
#include "sweep/grid.hpp"
#include "sweep/pool.hpp"

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::sweep {

/// Placement strategies a sweep can compare. Axis values are the enum's
/// numeric codes.
enum class PlacementStrategy : int { FillFirst = 0, RoundRobin = 1, Greedy = 2 };

[[nodiscard]] std::string_view to_string(PlacementStrategy s) noexcept;

/// Canonical axis names the engine understands. An axis that is absent from
/// the grid keeps the base machine's (or profile's) value for every point.
namespace axes {
inline constexpr std::string_view kCores = "cores";
inline constexpr std::string_view kThreadsPerCore = "threads_per_core";
inline constexpr std::string_view kEllE = "ell_e";
inline constexpr std::string_view kLE = "L_e";
inline constexpr std::string_view kGShE = "g_sh_e";
inline constexpr std::string_view kKappa = "kappa";
inline constexpr std::string_view kPlacement = "placement";
/// Upper bound on the process counts tried at the point (overrides
/// `SweepConfig::processes`; still clamped to the point's hardware threads).
inline constexpr std::string_view kProcesses = "processes";
}  // namespace axes

struct SweepConfig {
  ParamGrid grid;

  /// Non-swept machine parameters (name, chips, intra-processor latencies,
  /// energy weights, power envelope) come from here.
  MachineModel base = presets::niagara();

  /// The *total* workload of the job; at each candidate process count n the
  /// additive counters split n ways (strong scaling). `kappa` is a
  /// per-location bound, so it is not divided; the κ axis overrides it.
  ProcessProfile profile;

  /// Upper bound on the process counts tried per point (further clamped to
  /// the point's hardware thread count). Candidates are the powers of two up
  /// to the bound, plus the bound itself.
  int processes = 64;

  /// Objective handed to the placement strategy (all four metrics are
  /// recorded regardless).
  Objective objective = Objective::EDP;

  std::string workload = "uniform-comm";

  /// Bound on each CostCache shard (0 = unbounded). Cartesian grids rarely
  /// repeat a full parameter tuple, so huge streaming grids should bound the
  /// cache instead of letting memoization grow with the grid; the canonical
  /// baseline grids stay unbounded (full memoization is part of their
  /// contract). Eviction never changes results — only recompute rates.
  std::size_t cache_entries_per_shard = 0;

  /// The checked-in baseline configuration: a 576-point grid
  /// (4 cores × 3 threads/core × 2 ℓ_e × 2 L_e × 2 g_sh_e × 2 κ ×
  /// 3 placements) over a Niagara-like chip with a communicating workload.
  [[nodiscard]] static SweepConfig canonical();

  /// A 16-point grid for smoke tests.
  [[nodiscard]] static SweepConfig tiny();

  /// A 1,179,648-point streaming grid (the canonical machine axes refined
  /// with linspace, crossed with κ, placement and process-bound axes) for
  /// scaling benchmarks: large enough that per-point work dominates pool
  /// overhead, never materialized (decoded on the fly), cache bounded.
  [[nodiscard]] static SweepConfig large();
};

/// Everything one grid point pins down: the machine the point describes, the
/// total workload profile with the point's κ, the process-count bound, and
/// the placement strategy. Public so tools can re-derive a point's
/// configuration — e.g. to replay its winning placement on the machine
/// simulator.
struct PointSetup {
  MachineModel machine;
  ProcessProfile profile;  ///< total workload (strong-scale before placing)
  int processes = 0;
  PlacementStrategy strategy = PlacementStrategy::FillFirst;
};

/// Resolve a grid point's axis values against the sweep's base machine and
/// profile. `values` must follow the grid's axis order (`grid.point(i)`).
[[nodiscard]] PointSetup setup_point(const SweepConfig& cfg,
                                     std::span<const double> values);

/// Split the total workload over n processes: additive counters divide,
/// kappa (a per-location bound) and units do not.
[[nodiscard]] ProcessProfile strong_scaled(const ProcessProfile& total, int n);

/// One evaluated grid point.
struct SweepRecord {
  std::size_t index = 0;           ///< grid index (records stay sorted by it)
  std::vector<double> params;      ///< axis values, grid-axis order
  int processes = 0;               ///< selected process count
  bool feasible = false;           ///< power-envelope feasibility
  Metrics metrics{};               ///< D / PDP / EDP / ED²P of the placement
  std::array<double, models::kModelKindCount> classical{};  ///< round times

  friend bool operator==(const SweepRecord&, const SweepRecord&) = default;
};

struct SweepStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t pool_steals = 0;
  std::uint64_t resumed_points = 0;    ///< replayed verbatim from a journal
  std::uint64_t journaled_points = 0;  ///< appended to the journal this run
  std::uint64_t skipped_points = 0;    ///< left unevaluated by cancellation

  friend bool operator==(const SweepStats&, const SweepStats&) = default;
};

struct SweepResult {
  std::vector<std::string> axis_names;
  std::string workload;
  Objective objective = Objective::EDP;
  std::vector<SweepRecord> records;  ///< one per grid point, by index
  SweepStats stats;                  ///< not serialized (runtime detail)
  /// True when a CancelToken tripped before every point completed: the
  /// records of skipped points are default-initialized, so the result must
  /// not be serialized as a finished artifact. Not serialized itself.
  bool cancelled = false;
};

class Journal;      // journal.hpp
class ResumeState;  // journal.hpp

/// Durability and lifecycle knobs for a sweep run. All default to "off", in
/// which state `run_sweep(cfg, pool, {})` behaves exactly like the plain
/// overload.
struct SweepOptions {
  /// Cooperative cancellation: checked per grid point (and per claimed pool
  /// batch). In-flight points finish and are journaled; unstarted points are
  /// skipped and the result comes back with `cancelled = true`.
  const core::CancelToken* cancel = nullptr;
  /// Write-ahead journal: every completed point is appended (checksummed,
  /// fsync-batched) before the sweep finishes, so a crash loses at most the
  /// unsynced tail, never the whole run.
  Journal* journal = nullptr;
  /// Replay state from a previous journal: completed points are copied into
  /// the result verbatim (byte-identical serialization) and their memoized
  /// costs pre-seed the CostCache; only missing points are evaluated.
  const ResumeState* resume = nullptr;
  /// Per-point watchdog (0 = none): an evaluation that takes longer than
  /// this fails the sweep with fault::DeadlineExceeded once it returns,
  /// instead of silently wedging a production run. Uses the same clock
  /// plumbing as fault::RetryPolicy.
  std::chrono::nanoseconds point_deadline{0};
  /// Worker threads `Evaluator::sweep` (api/evaluator.hpp) evaluates with:
  /// <= 1 runs serially, > 1 uses the evaluator's cached pool. The engine
  /// entry points below ignore this field — `run_sweep(cfg, pool, options)`
  /// parallelizes over the pool it is handed.
  int threads = 1;
};

/// Evaluate every grid point on the calling thread (reference path; also what
/// `bench_sweep` compares the pool against).
STAMP_DEPRECATED("use stamp::Evaluator::sweep (api/stamp.hpp)")
[[nodiscard]] SweepResult run_sweep_serial(const SweepConfig& cfg);

/// Serial run with durability options (journal, resume, cancellation,
/// per-point deadline).
STAMP_DEPRECATED("use stamp::Evaluator::sweep (api/stamp.hpp)")
[[nodiscard]] SweepResult run_sweep_serial(const SweepConfig& cfg,
                                           const SweepOptions& options);

/// Evaluate on `pool`. Output is identical (including byte-identical JSON)
/// to the serial run for any pool width.
STAMP_DEPRECATED("use stamp::Evaluator::sweep (api/stamp.hpp)")
[[nodiscard]] SweepResult run_sweep(const SweepConfig& cfg, Pool& pool);

/// Pooled run with durability options. A resumed-and-completed sweep yields
/// an artifact byte-identical to an uninterrupted run at any pool width.
STAMP_DEPRECATED("use stamp::Evaluator::sweep (api/stamp.hpp)")
[[nodiscard]] SweepResult run_sweep(const SweepConfig& cfg, Pool& pool,
                                    const SweepOptions& options);

/// Serialize in the stable `stamp-sweep/v1` schema: fixed key order, records
/// sorted by grid index, numbers via JsonWriter's canonical formatting.
/// Throws std::runtime_error when the stream reports failure (ENOSPC, a
/// closed pipe): an artifact emitter must never "succeed" silently on a
/// torn write.
void write_json(const SweepResult& result, std::ostream& os);

/// Convenience: the artifact as a string.
[[nodiscard]] std::string to_json(const SweepResult& result);

}  // namespace stamp::sweep
