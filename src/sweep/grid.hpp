#pragma once
/// \file grid.hpp
/// \brief Cartesian parameter grids with a canonical, deterministic point
///        ordering — the index space a sweep evaluates.
///
/// A grid is an ordered list of named axes; point `i` decodes by mixed-radix
/// expansion with the *last* axis varying fastest (row-major), so enumeration
/// order is a pure function of the grid definition. Everything downstream
/// (memoization keys, JSON artifacts, the regression gate) relies on that
/// determinism.

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::sweep {

/// One named dimension of the grid.
struct GridAxis {
  std::string name;
  std::vector<double> values;
};

class ParamGrid {
 public:
  /// Append an axis. Throws std::invalid_argument on an empty value list or a
  /// duplicate name. Returns *this for chaining.
  ParamGrid& axis(std::string name, std::vector<double> values);

  [[nodiscard]] const std::vector<GridAxis>& axes() const noexcept {
    return axes_;
  }

  /// Number of grid points: the product of axis sizes (0 for a grid with no
  /// axes — an empty grid has nothing to evaluate).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Decode point `index` into one value per axis, in axis order.
  /// Throws std::out_of_range for `index >= size()`.
  [[nodiscard]] std::vector<double> point(std::size_t index) const;

  /// Position of the named axis, or -1 when absent.
  [[nodiscard]] int axis_index(std::string_view name) const noexcept;

  /// Value of the named axis within a decoded point.
  /// Throws std::invalid_argument when the axis does not exist.
  [[nodiscard]] double value(std::span<const double> point,
                             std::string_view axis) const;

 private:
  std::vector<GridAxis> axes_;
};

}  // namespace stamp::sweep
