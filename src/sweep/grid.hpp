#pragma once
/// \file grid.hpp
/// \brief Cartesian parameter grids with a canonical, deterministic point
///        ordering — the index space a sweep evaluates.
///
/// A grid is an ordered list of named axes; point `i` decodes by mixed-radix
/// expansion with the *last* axis varying fastest (row-major), so enumeration
/// order is a pure function of the grid definition. Everything downstream
/// (memoization keys, JSON artifacts, the regression gate) relies on that
/// determinism.
///
/// The grid is a *streaming* structure: `size()` may be 10^6–10^8 points but
/// nothing is ever materialized. `point()` allocates one small vector for
/// one-off lookups; the batch evaluator instead uses `decode_into` (no
/// allocation) and `decode_chunk` (a whole index range into a caller-owned
/// structure-of-arrays buffer, filled axis-by-axis in value runs so the
/// inner loops are plain contiguous stores), and `GridCursor` walks the grid
/// with O(1) amortized mixed-radix increments for consumers that want one
/// point at a time without the per-point division chain.

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::sweep {

/// One named dimension of the grid.
struct GridAxis {
  std::string name;
  std::vector<double> values;
};

class ParamGrid {
 public:
  /// Append an axis. Throws std::invalid_argument on an empty value list or a
  /// duplicate name. Returns *this for chaining.
  ParamGrid& axis(std::string name, std::vector<double> values);

  [[nodiscard]] const std::vector<GridAxis>& axes() const noexcept {
    return axes_;
  }

  /// Number of grid points: the product of axis sizes (0 for a grid with no
  /// axes — an empty grid has nothing to evaluate).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Decode point `index` into one value per axis, in axis order.
  /// Throws std::out_of_range for `index >= size()`.
  [[nodiscard]] std::vector<double> point(std::size_t index) const;

  /// Allocation-free `point`: decode `index` into `out`, which must hold
  /// exactly one slot per axis (std::invalid_argument otherwise). Throws
  /// std::out_of_range for `index >= size()`.
  void decode_into(std::size_t index, std::span<double> out) const;

  /// Decode the index range [begin, end) into a structure-of-arrays buffer:
  /// after the call, `out[a * (end - begin) + k]` is axis `a`'s value at
  /// point `begin + k`. Each axis column is written as runs of one repeated
  /// value (axis `a` holds a value for `period(a)` consecutive indices), so
  /// the fill is contiguous stores, not a per-point division chain.
  /// Throws std::out_of_range for `begin > end` or `end > size()`, and
  /// std::invalid_argument when `out.size() != axes().size() * (end - begin)`.
  void decode_chunk(std::size_t begin, std::size_t end,
                    std::span<double> out) const;

  /// Position of the named axis, or -1 when absent.
  [[nodiscard]] int axis_index(std::string_view name) const noexcept;

  /// Value of the named axis within a decoded point.
  /// Throws std::invalid_argument when the axis does not exist.
  [[nodiscard]] double value(std::span<const double> point,
                             std::string_view axis) const;

 private:
  std::vector<GridAxis> axes_;
};

/// A streaming iterator over a grid: holds the current mixed-radix digits
/// and decoded values, and advances with a carry chain (O(1) amortized, no
/// divisions, no allocation after construction). The cursor never
/// materializes the grid, so it walks a 10^8-point design space in constant
/// memory. The referenced grid must outlive the cursor.
class GridCursor {
 public:
  /// Position the cursor at `start`. Throws std::out_of_range for
  /// `start > grid.size()` (== size() constructs an exhausted cursor).
  explicit GridCursor(const ParamGrid& grid, std::size_t start = 0);

  /// True once the cursor has walked past the last point.
  [[nodiscard]] bool done() const noexcept { return index_ >= size_; }

  /// Current grid index. Precondition: `!done()` for meaningful use.
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  /// The decoded values of the current point, in axis order. The span is
  /// invalidated by `advance`. Precondition: `!done()`.
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

  /// Step to the next point (no-op once done).
  void advance() noexcept;

 private:
  const ParamGrid* grid_;
  std::size_t index_ = 0;
  std::size_t size_ = 0;
  std::vector<std::size_t> digits_;  ///< current mixed-radix digit per axis
  std::vector<double> values_;       ///< decoded value per axis
};

/// `count` evenly spaced values from `lo` to `hi` inclusive (endpoints
/// exact), the usual way to build a dense machine-parameter axis. `count`
/// of 1 yields `{lo}`. Throws std::invalid_argument for `count == 0` or
/// non-finite bounds.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t count);

}  // namespace stamp::sweep
