#include "sweep/journal.hpp"

#include "obs/metrics.hpp"
#include "report/atomic_file.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace stamp::sweep {
namespace {

/// Line frame: {"crc":"xxxxxxxx","rec":<body>}\n. The prefix is fixed-width
/// so the body's byte range is known without parsing — the checksum can be
/// verified before the JSON parser ever sees attacker^Wcrash-controlled
/// bytes.
constexpr std::string_view kCrcPrefix = "{\"crc\":\"";    // 8 bytes
constexpr std::string_view kRecInfix = "\",\"rec\":";     // 8 bytes
constexpr std::size_t kHexLen = 8;
constexpr std::size_t kBodyOffset =
    kCrcPrefix.size() + kHexLen + kRecInfix.size();  // 24

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

std::string hex8(std::uint32_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(kHexLen, '0');
  for (std::size_t i = 0; i < kHexLen; ++i)
    out[kHexLen - 1 - i] = kDigits[(v >> (4 * i)) & 0xFu];
  return out;
}

bool parse_hex8(std::string_view s, std::uint32_t& out) noexcept {
  if (s.size() != kHexLen) return false;
  std::uint32_t v = 0;
  for (const char ch : s) {
    v <<= 4;
    if (ch >= '0' && ch <= '9')
      v |= static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f')
      v |= static_cast<std::uint32_t>(ch - 'a' + 10);
    else
      return false;
  }
  out = v;
  return true;
}

std::string frame(std::string_view body) {
  std::string line;
  line.reserve(kBodyOffset + body.size() + 2);
  line += kCrcPrefix;
  line += hex8(crc32(body));
  line += kRecInfix;
  line += body;
  line += "}\n";
  return line;
}

/// Unframe one line (no trailing newline). Returns the body on success,
/// empty optional when the frame or checksum is bad.
bool unframe(std::string_view line, std::string_view& body) noexcept {
  if (line.size() < kBodyOffset + 1) return false;
  if (line.substr(0, kCrcPrefix.size()) != kCrcPrefix) return false;
  if (line.substr(kCrcPrefix.size() + kHexLen, kRecInfix.size()) != kRecInfix)
    return false;
  if (line.back() != '}') return false;
  std::uint32_t want = 0;
  if (!parse_hex8(line.substr(kCrcPrefix.size(), kHexLen), want)) return false;
  body = line.substr(kBodyOffset, line.size() - kBodyOffset - 1);
  return crc32(body) == want;
}

/// The artifact's canonical double formatting (JsonWriter, precision 15).
/// Used to compare a parsed journal value against the grid's exact double:
/// the two are "the same value" exactly when they serialize to the same
/// bytes, which is also the only equality the byte-identity contract needs.
std::string fmt15(double v) {
  std::ostringstream ss;
  ss.precision(15);
  ss << v;
  return ss.str();
}

void write_record_body(report::JsonWriter& w, const SweepRecord& rec) {
  w.begin_object();
  w.kv("index", static_cast<long long>(rec.index));
  w.key("params").begin_array();
  for (const double v : rec.params) w.value(v);
  w.end_array();
  w.kv("processes", rec.processes);
  w.kv("feasible", rec.feasible);
  w.key("metrics").begin_object();
  w.kv("D", rec.metrics.D);
  w.kv("PDP", rec.metrics.PDP);
  w.kv("EDP", rec.metrics.EDP);
  w.kv("ED2P", rec.metrics.ED2P);
  w.end_object();
  w.key("models").begin_array();
  for (const double v : rec.classical) w.value(v);
  w.end_array();
  w.end_object();
}

/// Decode a parsed record body into `rec`, validating it against the grid.
/// Axis values are replaced by the grid's exact doubles once they match
/// canonically, so a resumed artifact serializes the same bytes as a fresh
/// one. Returns false on any inconsistency (the caller treats the line — and
/// the rest of the file — as corrupt).
bool decode_record(const report::JsonValue& v, const SweepConfig& cfg,
                   SweepRecord& rec) {
  try {
    const report::JsonValue* index = v.find("index");
    if (index == nullptr) return false;
    const double di = index->as_number();
    if (di < 0 || di >= static_cast<double>(cfg.grid.size()) ||
        di != static_cast<double>(static_cast<std::size_t>(di)))
      return false;
    rec.index = static_cast<std::size_t>(di);

    const std::vector<double> grid_params = cfg.grid.point(rec.index);
    const report::JsonValue* params = v.find("params");
    if (params == nullptr) return false;
    const std::vector<report::JsonValue>& items = params->items();
    if (items.size() != grid_params.size()) return false;
    for (std::size_t a = 0; a < items.size(); ++a)
      if (fmt15(items[a].as_number()) != fmt15(grid_params[a])) return false;
    rec.params = grid_params;

    const report::JsonValue* processes = v.find("processes");
    const report::JsonValue* feasible = v.find("feasible");
    const report::JsonValue* metrics = v.find("metrics");
    const report::JsonValue* models = v.find("models");
    if (processes == nullptr || feasible == nullptr || metrics == nullptr ||
        models == nullptr)
      return false;
    rec.processes = static_cast<int>(processes->as_number());
    rec.feasible = feasible->as_bool();

    const report::JsonValue* D = metrics->find("D");
    const report::JsonValue* PDP = metrics->find("PDP");
    const report::JsonValue* EDP = metrics->find("EDP");
    const report::JsonValue* ED2P = metrics->find("ED2P");
    if (D == nullptr || PDP == nullptr || EDP == nullptr || ED2P == nullptr)
      return false;
    rec.metrics.D = D->as_number();
    rec.metrics.PDP = PDP->as_number();
    rec.metrics.EDP = EDP->as_number();
    rec.metrics.ED2P = ED2P->as_number();

    const std::vector<report::JsonValue>& model_items = models->items();
    if (model_items.size() != rec.classical.size()) return false;
    for (std::size_t k = 0; k < model_items.size(); ++k)
      rec.classical[k] = model_items[k].as_number();
    return true;
  } catch (const std::logic_error&) {
    return false;  // kind mismatch on some member: corrupt record
  }
}

/// True when an intact header record matches `cfg`.
bool header_matches(const report::JsonValue& v, const SweepConfig& cfg) {
  try {
    const report::JsonValue* schema = v.find("schema");
    const report::JsonValue* workload = v.find("workload");
    const report::JsonValue* objective = v.find("objective");
    const report::JsonValue* axes = v.find("axes");
    const report::JsonValue* points = v.find("grid_points");
    if (schema == nullptr || workload == nullptr || objective == nullptr ||
        axes == nullptr || points == nullptr)
      return false;
    if (schema->as_string() != kJournalSchema) return false;
    if (workload->as_string() != cfg.workload) return false;
    if (objective->as_string() != to_string(cfg.objective)) return false;
    if (points->as_number() != static_cast<double>(cfg.grid.size()))
      return false;
    const std::vector<report::JsonValue>& names = axes->items();
    if (names.size() != cfg.grid.axes().size()) return false;
    for (std::size_t a = 0; a < names.size(); ++a)
      if (names[a].as_string() != cfg.grid.axes()[a].name) return false;
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string Journal::header_line(const SweepConfig& cfg) {
  std::ostringstream body;
  report::JsonWriter w(body);
  w.begin_object();
  w.kv("schema", kJournalSchema);
  w.kv("workload", cfg.workload);
  w.kv("objective", to_string(cfg.objective));
  w.key("axes").begin_array();
  for (const GridAxis& a : cfg.grid.axes()) w.value(a.name);
  w.end_array();
  w.kv("grid_points", static_cast<long long>(cfg.grid.size()));
  w.end_object();
  return frame(body.str());
}

std::string Journal::record_line(const SweepRecord& rec) {
  std::ostringstream body;
  report::JsonWriter w(body);
  write_record_body(w, rec);
  return frame(body.str());
}

ResumeState ResumeState::load(const std::string& path,
                              const SweepConfig& cfg) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("ResumeState: cannot read journal '" + path +
                             "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  ResumeState out;
  out.completed_.assign(cfg.grid.size(), 0);
  out.records_.resize(cfg.grid.size());

  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn final append: drop the tail
    const std::string_view line(text.data() + pos, nl - pos);
    std::string_view body;
    if (!unframe(line, body)) break;  // checksum or frame failure: drop
    report::JsonValue parsed;
    try {
      parsed = report::JsonValue::parse(body);
    } catch (const report::JsonParseError&) {
      break;  // checksum passed but JSON is bad: treat as corruption
    }
    if (!saw_header) {
      // An intact first line that names a *different* sweep is a user error
      // (wrong --resume file), not crash damage — refuse loudly instead of
      // silently starting over.
      if (!header_matches(parsed, cfg))
        throw std::runtime_error(
            "ResumeState: journal '" + path +
            "' does not match this sweep configuration (schema, workload, "
            "objective, axes, or grid size differ)");
      saw_header = true;
      pos = nl + 1;
      out.valid_bytes_ = pos;
      continue;
    }
    SweepRecord rec;
    if (!decode_record(parsed, cfg, rec)) break;
    if (out.completed_[rec.index] == 0) {  // duplicates replay once
      out.completed_[rec.index] = 1;
      out.records_[rec.index] = std::move(rec);
      ++out.completed_points_;
    }
    pos = nl + 1;
    out.valid_bytes_ = pos;
  }
  out.truncated_ = out.valid_bytes_ < text.size();
  return out;
}

Journal::Journal(std::string path, const SweepConfig& cfg,
                 const ResumeState* resume, std::size_t sync_every)
    : path_(std::move(path)), sync_every_(sync_every > 0 ? sync_every : 1) {
  const bool continue_existing = resume != nullptr && resume->valid_bytes() > 0;
  if (continue_existing) {
    // Drop the invalid tail (torn append, corruption) before appending so
    // the file is a clean validated prefix again.
    std::error_code ec;
    std::filesystem::resize_file(path_, resume->valid_bytes(), ec);
    if (ec)
      throw std::runtime_error("Journal: cannot truncate '" + path_ +
                               "' to its validated prefix: " + ec.message());
    os_.open(path_, std::ios::binary | std::ios::app);
  } else {
    os_.open(path_, std::ios::binary | std::ios::trunc);
  }
  if (!os_)
    throw std::runtime_error("Journal: cannot open '" + path_ +
                             "' for writing");
  if (!continue_existing) {
    os_ << header_line(cfg);
    os_.flush();
    if (!os_.good())
      throw std::runtime_error("Journal: writing header to '" + path_ +
                               "' failed");
  }
#ifndef _WIN32
  sync_fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (sync_fd_ < 0)
    throw std::runtime_error("Journal: cannot open '" + path_ +
                             "' for fsync: " + std::strerror(errno));
#endif
  // Make the header (or the truncation) durable before any point completes:
  // a journal that can lose its own header on crash restarts from scratch.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sync_locked();
  }
  // A freshly created journal file is only durable once its directory entry
  // is: fsync the containing directory, or a crash can make the whole file
  // vanish despite every record having been fsynced.
  if (!continue_existing) report::fsync_parent_directory(path_);
}

Journal::~Journal() {
  try {
    std::lock_guard<std::mutex> lock(mutex_);
    sync_locked();
  } catch (...) {
    // Destructor: the failure was already observable via append/sync.
  }
#ifndef _WIN32
  if (sync_fd_ >= 0) ::close(sync_fd_);
#endif
}

void Journal::append(const SweepRecord& rec) {
  const std::string line = record_line(rec);
  std::lock_guard<std::mutex> lock(mutex_);
  os_ << line;
  if (!os_.good())
    throw std::runtime_error("Journal: appending to '" + path_ +
                             "' failed (disk full or I/O error)");
  appended_.fetch_add(1, std::memory_order_relaxed);
  if (++since_sync_ >= sync_every_) sync_locked();
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter("sweep.journal.records").add();
}

void Journal::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
}

void Journal::sync_locked() {
  since_sync_ = 0;
  os_.flush();
  if (!os_.good())
    throw std::runtime_error("Journal: flushing '" + path_ + "' failed");
#ifndef _WIN32
  if (sync_fd_ >= 0 && ::fsync(sync_fd_) != 0)
    throw std::runtime_error("Journal: fsync of '" + path_ +
                             "' failed: " + std::strerror(errno));
#endif
}

std::uint64_t Journal::appended() const noexcept {
  return appended_.load(std::memory_order_relaxed);
}

}  // namespace stamp::sweep
