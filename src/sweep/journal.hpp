#pragma once
/// \file journal.hpp
/// \brief `sweep::Journal` + `sweep::ResumeState` — a write-ahead journal of
///        completed grid points (`stamp-journal/v1`) and the resume path
///        that replays it.
///
/// A long canonical sweep that dies on SIGTERM or OOM-kill used to lose
/// every evaluated point. The journal makes completed work durable: after a
/// grid point is evaluated, one checksummed, line-delimited JSON record is
/// appended (fsync-batched, so the hot path pays a flush every
/// `sync_every` records, not per point). Because the sweep's artifact is
/// byte-identical at any thread count, a resumed run that replays journaled
/// records verbatim and evaluates only the missing points reproduces the
/// *exact bytes* an uninterrupted run would have produced — `cmp` against
/// `sweeps/baseline.json` is the acceptance test, not an approximation.
///
/// ## Format: `stamp-journal/v1`
///
/// One JSON object per line. Every line carries a CRC32 of its payload in a
/// fixed-width frame, so a torn tail (the process died mid-append) is
/// *detected and truncated*, never trusted and never fatal:
///
///   {"crc":"xxxxxxxx","rec":{...}}\n
///
/// where `xxxxxxxx` is the zero-padded lowercase CRC32 (IEEE) of the exact
/// bytes of the `rec` value. Line 1 is a header record binding the journal
/// to one sweep configuration (schema, workload, objective, axes, grid
/// size); a journal replayed against a different grid is rejected loudly.
/// Each further line is one completed point: index, axis values, selected
/// process count, feasibility, the four metrics, and the classical model
/// round times — everything `write_json` needs, serialized with the same
/// canonical number formatting as the artifact so replaying a parsed record
/// re-emits identical bytes.
///
/// `ResumeState::load` walks the file front to back and stops at the first
/// line that fails its checksum, fails to parse, or contradicts the grid
/// (bad index, mismatched axis values); everything before it is replayable,
/// everything from it on is discarded. `Journal` opened for resume truncates
/// the file back to that validated prefix before appending, so one crash
/// can never snowball into an unparseable journal.

#include "sweep/sweep.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::sweep {

/// CRC32 (IEEE 802.3, reflected) — the per-line checksum of the journal.
/// Exposed for tests and external validators.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

inline constexpr std::string_view kJournalSchema = "stamp-journal/v1";

/// The validated, replayable prefix of a journal file, bound to the grid it
/// was recorded against.
class ResumeState {
 public:
  /// Parse `path` against `cfg`. Throws std::runtime_error when the file
  /// cannot be read, or when an *intact* header names a different sweep
  /// (schema, workload, objective, axes, or grid size mismatch) — resuming
  /// the wrong journal must be loud, not silently wrong. A torn or corrupt
  /// header (or any torn/corrupt later line) is NOT an error: the journal is
  /// treated as valid up to the last good line and truncated there by the
  /// next `Journal`.
  [[nodiscard]] static ResumeState load(const std::string& path,
                                        const SweepConfig& cfg);

  /// True when grid point `index` has a replayable journaled record.
  [[nodiscard]] bool completed(std::size_t index) const noexcept {
    return index < completed_.size() && completed_[index] != 0;
  }

  /// The journaled record for a completed point (axis values re-anchored to
  /// the grid's exact doubles). Precondition: `completed(index)`.
  [[nodiscard]] const SweepRecord& record(std::size_t index) const {
    return records_[index];
  }

  /// Number of distinct completed points (duplicate lines for one index are
  /// replayed once, never double-counted).
  [[nodiscard]] std::size_t completed_points() const noexcept {
    return completed_points_;
  }

  [[nodiscard]] std::size_t grid_points() const noexcept {
    return completed_.size();
  }

  /// Byte length of the validated prefix; a resuming `Journal` truncates the
  /// file to exactly this before appending.
  [[nodiscard]] std::size_t valid_bytes() const noexcept {
    return valid_bytes_;
  }

  /// True when the file held bytes past the validated prefix (a torn append
  /// or corruption) that will be dropped on resume.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

 private:
  std::vector<SweepRecord> records_;
  std::vector<char> completed_;
  std::size_t completed_points_ = 0;
  std::size_t valid_bytes_ = 0;
  bool truncated_ = false;
};

/// Append-side of the write-ahead journal. Thread-safe: pool workers call
/// `append` concurrently as points complete. Records are flushed+fsynced
/// every `sync_every` appends and on destruction; an append that cannot be
/// durably written throws (a sweep whose journal is silently lost would
/// defeat the whole point).
class Journal {
 public:
  static constexpr std::size_t kDefaultSyncEvery = 32;

  /// Open `path` for appending. With no `resume` (or an empty validated
  /// prefix) the file is recreated with a fresh header; with one, the file
  /// is truncated back to `resume->valid_bytes()` and appended to. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit Journal(std::string path, const SweepConfig& cfg,
                   const ResumeState* resume = nullptr,
                   std::size_t sync_every = kDefaultSyncEvery);

  /// Final flush + fsync, best-effort (errors already surfaced by append).
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Durably record one completed point. Thread-safe; fsyncs every
  /// `sync_every` appends. Throws std::runtime_error on write failure.
  void append(const SweepRecord& rec);

  /// Flush and fsync now (e.g. after a cancelled run drained).
  void sync();

  /// Records appended by this writer (excludes replayed ones).
  [[nodiscard]] std::uint64_t appended() const noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  // -- encoding (exposed so tests can build journals byte-by-byte) -----------

  /// The framed header line for `cfg`, newline included.
  [[nodiscard]] static std::string header_line(const SweepConfig& cfg);
  /// The framed line for one completed point, newline included.
  [[nodiscard]] static std::string record_line(const SweepRecord& rec);

 private:
  void sync_locked();

  std::string path_;
  std::mutex mutex_;
  std::ofstream os_;
  int sync_fd_ = -1;
  std::size_t sync_every_;
  std::size_t since_sync_ = 0;
  std::atomic<std::uint64_t> appended_{0};
};

}  // namespace stamp::sweep
