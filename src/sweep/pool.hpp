#pragma once
/// \file pool.hpp
/// \brief A work-stealing thread pool driving parameter-sweep evaluation.
///
/// The pool executes index-space loops (`parallel_for`) by chunking the index
/// range and distributing the chunks round-robin over per-worker deques.
/// Each worker pops from the back of its own deque (LIFO, cache-friendly) and,
/// when empty, steals from the front of a peer's deque (FIFO, takes the
/// oldest — and under round-robin distribution the largest remaining —
/// contiguous chunk). The calling thread participates as worker 0, so
/// `Pool(1)` degenerates to a plain serial loop with no threads spawned.
///
/// Scheduling is dynamic, so callers that need deterministic output must key
/// results by index (write into a pre-sized array), never by completion order.
/// `run_sweep` does exactly that, which is how an N-thread sweep produces
/// byte-identical artifacts to a 1-thread sweep.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stamp::sweep {

class Pool {
 public:
  /// A pool of `threads` workers total. `threads - 1` background threads are
  /// spawned; the thread calling `parallel_for` acts as worker 0. Throws
  /// std::invalid_argument for `threads < 1`.
  explicit Pool(int threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Total workers, including the caller.
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Run `body(i)` for every i in [0, n), distributing work over all workers.
  /// Blocks until every index completed. If any invocation throws, the first
  /// exception is rethrown here after the loop has drained. Only one
  /// parallel_for may be active at a time (guarded internally).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Number of successful steals since construction (observability; also lets
  /// tests prove stealing actually happens).
  [[nodiscard]] std::uint64_t steals() const noexcept;

 private:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  struct WorkerDeque {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };

  void worker_main(int id);
  bool try_pop_own(int id, Chunk& out);
  bool try_steal(int thief, Chunk& out);
  void run_chunk(const Chunk& c);
  /// Work until the current loop has no pending indices. Worker 0 (the
  /// caller) uses this to participate.
  void drain(int id);

  int threads_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::mutex loop_mutex_;  ///< serializes concurrent parallel_for callers
  bool shutting_down_ = false;

  // State of the in-flight parallel_for (valid while pending_ > 0).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> pending_{0};  ///< indices not yet completed
  std::atomic<std::uint64_t> steals_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace stamp::sweep
