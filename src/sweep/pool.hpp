#pragma once
/// \file pool.hpp
/// \brief A work-stealing thread pool driving parameter-sweep evaluation.
///
/// The pool executes index-space loops (`parallel_for`) by statically
/// partitioning the index range into one contiguous `(begin, end)` range per
/// worker, stored as a single packed 64-bit atomic. Workers claim small
/// batches from the *front* of their own range with a CAS (no locks, no
/// queues, no allocation), and a worker whose range is empty steals by
/// splitting the *largest* remaining peer range in half with a CAS on the
/// victim's word — the thief takes the back half, installs what it does not
/// immediately run into its own slot, and the victim keeps the front half.
/// Because every transition of a range is one CAS on one word, claims and
/// steals can never double-execute or drop an index.
///
/// The calling thread participates as worker 0, so `Pool(1)` degenerates to
/// a plain serial loop with no threads spawned and nothing atomic contended.
/// The loop body is passed as a non-owning `core::function_ref`: dispatch is
/// one indirect call, and `parallel_for` never allocates.
///
/// Scheduling is dynamic, so callers that need deterministic output must key
/// results by index (write into a pre-sized array), never by completion
/// order. `run_sweep` does exactly that, which is how an N-thread sweep
/// produces byte-identical artifacts to a 1-thread sweep.

#include "core/cancel.hpp"
#include "core/function_ref.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stamp::sweep {

class Pool {
 public:
  /// A pool of `threads` workers total. `threads - 1` background threads are
  /// spawned; the thread calling `parallel_for` acts as worker 0. Throws
  /// std::invalid_argument for `threads < 1`.
  explicit Pool(int threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Total workers, including the caller.
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Run `body(i)` for every i in [0, n), distributing work over all workers.
  /// Blocks until every index completed. If any invocation throws, the first
  /// exception is rethrown here (exactly once) after the loop has drained.
  /// Only one parallel_for may be active at a time (guarded internally).
  /// `n == 0` returns immediately without waking any worker.
  void parallel_for(std::size_t n, core::function_ref<void(std::size_t)> body);

  /// Like the plain overload, with cooperative cancellation: once
  /// `cancel->cancelled()` turns true (any thread, including a signal
  /// handler), workers stop invoking `body` — indices already claimed but not
  /// yet started are skipped, in-flight invocations finish normally, and the
  /// loop drains with exact accounting (no lost indices, no deadlock) before
  /// returning. The caller cannot tell which indices ran from the pool alone;
  /// key results by index and inspect them (run_sweep does exactly that).
  /// `cancel == nullptr` behaves like the plain overload.
  void parallel_for(std::size_t n, core::function_ref<void(std::size_t)> body,
                    const core::CancelToken* cancel);

  /// Range-granular variant: every claimed (or stolen) batch is handed to
  /// `body` as one contiguous `[begin, end)` interval instead of one call
  /// per index. This is the batch evaluator's entry point — the body can
  /// decode and evaluate the whole interval over structure-of-arrays
  /// scratch without paying an indirect call per index. The union of all
  /// intervals passed to `body` is exactly [0, n) with no overlap; interval
  /// boundaries depend on scheduling, so the body must produce results that
  /// do not (the sweep keys records by index). With `cancel`, the check is
  /// per claimed range — a range-body that wants finer-grained cancellation
  /// checks the token per index itself. If a body invocation throws, the
  /// remaining indices of that range are counted as done (the loop still
  /// drains) and the first exception is rethrown after the drain.
  void parallel_for_ranges(
      std::size_t n, core::function_ref<void(std::size_t, std::size_t)> body,
      const core::CancelToken* cancel = nullptr);

  /// Number of successful steals since construction (observability; also lets
  /// tests prove stealing actually happens).
  [[nodiscard]] std::uint64_t steals() const noexcept;

  /// Number of times a background worker woke from its condition-variable
  /// wait to join a loop. Lets tests prove an empty `parallel_for` causes no
  /// wakeup storm (it never notifies, so this stays flat).
  [[nodiscard]] std::uint64_t wakeups() const noexcept;

 private:
  /// One worker's remaining contiguous index range, packed `begin` in the
  /// high 32 bits and `end` in the low 32 (slab-relative, so both always fit;
  /// `parallel_for` runs larger loops as consecutive slabs). Padded to a
  /// cache line so claims on one slot never false-share with a neighbor's.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> range{0};
  };

  static constexpr std::uint64_t pack(std::size_t begin,
                                      std::size_t end) noexcept {
    return (static_cast<std::uint64_t>(begin) << 32) |
           static_cast<std::uint64_t>(end);
  }
  static constexpr std::size_t unpack_begin(std::uint64_t r) noexcept {
    return static_cast<std::size_t>(r >> 32);
  }
  static constexpr std::size_t unpack_end(std::uint64_t r) noexcept {
    return static_cast<std::size_t>(r & 0xFFFFFFFFu);
  }
  static constexpr std::size_t remaining(std::uint64_t r) noexcept {
    const std::size_t b = unpack_begin(r), e = unpack_end(r);
    return e > b ? e - b : 0;
  }

  void worker_main(int id);
  /// CAS a batch of up to `claim_` indices off the front of worker `id`'s
  /// own range.
  bool claim_own(int id, std::size_t& begin, std::size_t& end);
  /// Split the largest remaining peer range: CAS its back half away, run the
  /// first batch, park the rest in the thief's own (empty) slot.
  bool try_steal(int thief, std::size_t& begin, std::size_t& end);
  void run_range(std::size_t begin, std::size_t end);
  /// Work until the current loop has no pending indices. Worker 0 (the
  /// caller) uses this to participate. Holds `draining_` for its duration so
  /// `run_slab` can quiesce stragglers before reinstalling ranges.
  void drain(int id);
  void run_slab(std::size_t base, std::size_t n);
  /// The shared slab-loop driver behind both parallel_for flavors; expects
  /// body_ or range_body_ (and cancel_) to be set, clears them on exit.
  void run_loop(std::size_t n, const core::CancelToken* cancel);

  int threads_;
  std::unique_ptr<Slot[]> slots_;  ///< one packed range per worker
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::mutex loop_mutex_;  ///< serializes concurrent parallel_for callers
  bool shutting_down_ = false;

  // State of the in-flight parallel_for (readable by workers once they
  // observe pending_ > 0 or claim a range: both are release/acquire edges).
  // Exactly one of body_ / range_body_ is non-null during a loop.
  const core::function_ref<void(std::size_t)>* body_ = nullptr;
  const core::function_ref<void(std::size_t, std::size_t)>* range_body_ =
      nullptr;
  const core::CancelToken* cancel_ = nullptr;  ///< loop's token (may be null)
  std::size_t base_ = 0;   ///< slab offset added to every slab-relative index
  std::size_t claim_ = 1;  ///< indices claimed per CAS (chunk granularity)
  std::atomic<std::size_t> pending_{0};  ///< indices not yet completed
  /// Workers currently inside drain(). A straggler can linger in drain()
  /// briefly after pending_ hits zero (mid-steal, holding a stale range
  /// snapshot); run_slab spins until this is zero before overwriting the
  /// slots, so a stale CAS can never resurrect indices by ABA and a stale
  /// park can never clobber a freshly installed range.
  std::atomic<int> draining_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace stamp::sweep
