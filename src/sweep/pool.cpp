#include "sweep/pool.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <algorithm>
#include <stdexcept>

namespace stamp::sweep {

Pool::Pool(int threads) : threads_(threads) {
  if (threads < 1) throw std::invalid_argument("Pool: threads must be >= 1");
  slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(threads));
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int id = 1; id < threads; ++id)
    workers_.emplace_back([this, id] { worker_main(id); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::uint64_t Pool::steals() const noexcept {
  return steals_.load(std::memory_order_relaxed);
}

std::uint64_t Pool::wakeups() const noexcept {
  return wakeups_.load(std::memory_order_relaxed);
}

void Pool::worker_main(int id) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ || pending_.load(std::memory_order_acquire) > 0;
      });
      if (shutting_down_) return;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    drain(id);
  }
}

bool Pool::claim_own(int id, std::size_t& begin, std::size_t& end) {
  std::atomic<std::uint64_t>& r = slots_[static_cast<std::size_t>(id)].range;
  std::uint64_t cur = r.load(std::memory_order_acquire);
  for (;;) {
    const std::size_t b = unpack_begin(cur);
    const std::size_t e = unpack_end(cur);
    if (b >= e) return false;
    const std::size_t k = std::min(claim_, e - b);
    if (r.compare_exchange_weak(cur, pack(b + k, e),
                                std::memory_order_acq_rel,
                                std::memory_order_acquire)) {
      begin = b;
      end = b + k;
      return true;
    }
    // cur was refreshed by the failed CAS; retry against the new value.
  }
}

bool Pool::try_steal(int thief, std::size_t& begin, std::size_t& end) {
  for (;;) {
    // The loop may have drained while we were scanning or losing CAS races;
    // bail out rather than linger holding stale range snapshots (drain()
    // re-checks pending_ anyway, and a prompt exit releases draining_ so the
    // next run_slab can install fresh ranges).
    if (pending_.load(std::memory_order_acquire) == 0) return false;
    // Pick the victim with the most remaining work so one split rebalances
    // as much as possible; the scan is wait-free (plain atomic loads).
    int victim = -1;
    std::uint64_t victim_range = 0;
    std::size_t victim_rem = 0;
    for (int k = 1; k < threads_; ++k) {
      const int v = (thief + k) % threads_;
      const std::uint64_t cur =
          slots_[static_cast<std::size_t>(v)].range.load(
              std::memory_order_acquire);
      const std::size_t rem = remaining(cur);
      if (rem > victim_rem) {
        victim = v;
        victim_range = cur;
        victim_rem = rem;
      }
    }
    if (victim < 0) return false;  // nothing left anywhere

    const std::size_t b = unpack_begin(victim_range);
    const std::size_t e = unpack_end(victim_range);
    // The thief takes the back half [mid, e); the victim keeps [b, mid).
    // A size-1 range is taken whole (mid == b).
    const std::size_t mid = b + victim_rem / 2;
    std::uint64_t expected = victim_range;
    if (!slots_[static_cast<std::size_t>(victim)].range.compare_exchange_strong(
            expected, pack(b, mid), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      continue;  // someone moved it; rescan for the (new) largest range
    }
    // Run the first batch now; park the rest in our own slot, where peers
    // can steal it back if we turn out to be the slow one. Our slot is
    // empty here: we only steal after claim_own failed, only the owner or
    // run_slab ever installs into this slot, and run_slab cannot have run
    // again underneath us — it quiesces on draining_ (which we hold) before
    // writing any slot.
    const std::size_t k = std::min(claim_, e - mid);
    if (mid + k < e)
      slots_[static_cast<std::size_t>(thief)].range.store(
          pack(mid + k, e), std::memory_order_release);
    begin = mid;
    end = mid + k;
    return true;
  }
}

void Pool::run_range(std::size_t begin, std::size_t end) {
  const std::size_t base = base_;
  const core::CancelToken* cancel = cancel_;
  obs::ScopedSpan chunk_span = obs::ScopedSpan::if_enabled("pool.chunk", "pool");
  chunk_span.arg("begin", static_cast<double>(base + begin));
  chunk_span.arg("end", static_cast<double>(base + end));
  const obs::Clock::time_point t0 = obs::Clock::now();
  if (range_body_ != nullptr) {
    // Range-granular body: one invocation for the whole claimed interval.
    // Cancellation is checked once up front (the body owns per-index
    // checks); an exception abandons the rest of the interval, which is
    // still subtracted from pending_ below so the loop drains.
    if (cancel == nullptr || !cancel->cancelled()) {
      try {
        (*range_body_)(base + begin, base + end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  } else {
    const core::function_ref<void(std::size_t)> body = *body_;
    for (std::size_t i = begin; i < end; ++i) {
      // Cancellation check at index granularity: a claimed-but-unrun index
      // is skipped while still being subtracted from pending_ below, so the
      // loop drains with exact accounting instead of wedging on the skipped
      // tail.
      if (cancel != nullptr && cancel->cancelled()) break;
      // Errors are captured per index, not per batch: a throwing index must
      // not take its batch-mates down with it, or which indices ran would
      // depend on claim granularity (and therefore on pool width). Every
      // other index still runs exactly once; parallel_for rethrows the
      // first error after the loop drains.
      try {
        body(base + i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("pool.chunks").add();
    reg.counter("pool.indices").add(end - begin);
    reg.histogram("pool.chunk_ns").record(obs::nanos_since(t0));
  }
  // Skipped (cancelled) indices still count as done so the loop drains; any
  // captured exception is rethrown (once) by parallel_for.
  pending_.fetch_sub(end - begin, std::memory_order_acq_rel);
}

void Pool::drain(int id) {
  // Announce ourselves for the duration: run_slab must not overwrite any
  // per-loop state (slots, base_, claim_) while we might still be reading it
  // with a stale snapshot. RAII so a throwing metrics hook cannot leak the
  // count and wedge the next quiesce.
  draining_.fetch_add(1, std::memory_order_acq_rel);
  struct Leave {
    std::atomic<int>& counter;
    ~Leave() { counter.fetch_sub(1, std::memory_order_release); }
  } leave{draining_};

  std::size_t begin = 0;
  std::size_t end = 0;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (claim_own(id, begin, end)) {
      run_range(begin, end);
    } else if (try_steal(id, begin, end)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("pool.steals").add();
      run_range(begin, end);
    } else {
      // Remaining indices are being executed by other workers; the loop is
      // about to finish, so a yield-spin is cheap and avoids cv churn.
      std::this_thread::yield();
    }
  }
}

void Pool::run_slab(std::size_t base, std::size_t n) {
  // Quiesce: a straggler from the previous slab (or previous loop) can still
  // be inside drain() after pending_ hit zero, holding a stale snapshot of a
  // slot. If we reinstalled ranges underneath it, its steal CAS could
  // succeed by ABA (consecutive same-size loops repack identical words) and
  // its parked remainder would clobber a slot written below — losing indices
  // and hanging the loop. Stragglers exit promptly (pending_ is zero), and
  // no worker can re-enter drain() until pending_ is republished below.
  while (draining_.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();

  base_ = base;
  // Claim granularity: ~8 batches per worker amortizes CAS traffic while
  // leaving enough slack for stealing to balance uneven work.
  claim_ = std::max<std::size_t>(
      1, n / (static_cast<std::size_t>(threads_) * 8));

  // Static partition: worker i owns one contiguous range of ~n/threads
  // indices. Stealing rebalances dynamically from there.
  const std::size_t per =
      n / static_cast<std::size_t>(threads_);
  const std::size_t extra =
      n % static_cast<std::size_t>(threads_);
  std::size_t cursor = 0;
  for (int i = 0; i < threads_; ++i) {
    const std::size_t len = per + (static_cast<std::size_t>(i) < extra ? 1 : 0);
    slots_[static_cast<std::size_t>(i)].range.store(
        pack(cursor, cursor + len), std::memory_order_release);
    cursor += len;
  }

  // Publish the pending count *after* installing the ranges: a worker only
  // claims, steals, or subtracts from pending_ once drain() observes this
  // store (acquire), which synchronizes with it — so every worker that
  // touches a slot sees the fully installed partition (and base_/claim_
  // above), and no subtraction can race ahead of the store. A worker that
  // wakes early sees pending_ == 0 and leaves drain() without touching
  // anything.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    pending_.store(n, std::memory_order_release);
  }
  work_available_.notify_all();

  drain(0);  // the caller is worker 0
}

void Pool::parallel_for(std::size_t n,
                        core::function_ref<void(std::size_t)> body) {
  parallel_for(n, body, nullptr);
}

void Pool::parallel_for(std::size_t n,
                        core::function_ref<void(std::size_t)> body,
                        const core::CancelToken* cancel) {
  if (n == 0) return;  // no notify: an empty loop must not wake anyone
  // One loop at a time: the slots and counters are per-pool, not per-loop.
  std::lock_guard<std::mutex> exclusive(loop_mutex_);
  body_ = &body;
  run_loop(n, cancel);
}

void Pool::parallel_for_ranges(
    std::size_t n, core::function_ref<void(std::size_t, std::size_t)> body,
    const core::CancelToken* cancel) {
  if (n == 0) return;
  std::lock_guard<std::mutex> exclusive(loop_mutex_);
  range_body_ = &body;
  run_loop(n, cancel);
}

void Pool::run_loop(std::size_t n, const core::CancelToken* cancel) {
  obs::ScopedSpan loop_span =
      obs::ScopedSpan::if_enabled("pool.parallel_for", "pool");
  loop_span.arg("n", static_cast<double>(n));
  loop_span.arg("workers", static_cast<double>(threads_));

  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    first_error_ = nullptr;
  }
  // Published to workers by the same release store of pending_ that
  // publishes body_/range_body_/base_/claim_ (run_slab), so every worker
  // that joins the loop sees the token.
  cancel_ = cancel;

  // Ranges pack (begin, end) into one 64-bit word, so a slab holds at most
  // 2^31 indices; larger loops run as consecutive slabs (a 10^8-point
  // streaming grid still fits one slab per 2^31 indices).
  constexpr std::size_t kSlab = std::size_t{1} << 31;
  for (std::size_t base = 0; base < n; base += kSlab) {
    run_slab(base, std::min(kSlab, n - base));
    bool errored;
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      errored = first_error_ != nullptr;
    }
    if (errored) break;  // don't start further slabs after a failure
    if (cancel != nullptr && cancel->cancelled()) break;  // nor after cancel
  }

  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("pool.loops").add();
    reg.gauge("pool.queue_depth").set(0);
  }

  body_ = nullptr;
  range_body_ = nullptr;
  cancel_ = nullptr;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace stamp::sweep
