#include "sweep/pool.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <algorithm>
#include <stdexcept>

namespace stamp::sweep {

Pool::Pool(int threads) : threads_(threads) {
  if (threads < 1) throw std::invalid_argument("Pool: threads must be >= 1");
  deques_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    deques_.push_back(std::make_unique<WorkerDeque>());
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int id = 1; id < threads; ++id)
    workers_.emplace_back([this, id] { worker_main(id); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::uint64_t Pool::steals() const noexcept {
  return steals_.load(std::memory_order_relaxed);
}

void Pool::worker_main(int id) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ || pending_.load(std::memory_order_acquire) > 0;
      });
      if (shutting_down_) return;
    }
    drain(id);
  }
}

bool Pool::try_pop_own(int id, Chunk& out) {
  WorkerDeque& d = *deques_[static_cast<std::size_t>(id)];
  std::lock_guard<std::mutex> lock(d.mutex);
  if (d.chunks.empty()) return false;
  out = d.chunks.back();  // LIFO for the owner
  d.chunks.pop_back();
  return true;
}

bool Pool::try_steal(int thief, Chunk& out) {
  for (int k = 1; k < threads_; ++k) {
    const int victim = (thief + k) % threads_;
    WorkerDeque& d = *deques_[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(d.mutex);
    if (d.chunks.empty()) continue;
    out = d.chunks.front();  // FIFO for thieves
    d.chunks.pop_front();
    return true;
  }
  return false;
}

void Pool::run_chunk(const Chunk& c) {
  const std::function<void(std::size_t)>* body = body_;
  std::size_t executed = 0;
  obs::ScopedSpan chunk_span = obs::ScopedSpan::if_enabled("pool.chunk", "pool");
  chunk_span.arg("begin", static_cast<double>(c.begin));
  chunk_span.arg("end", static_cast<double>(c.end));
  const obs::Clock::time_point t0 = obs::Clock::now();
  try {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      (*body)(i);
      ++executed;
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("pool.chunks").add();
    reg.counter("pool.indices").add(c.end - c.begin);
    reg.histogram("pool.chunk_ns").record(obs::nanos_since(t0));
  }
  // Unexecuted indices of a throwing chunk still count as done so the loop
  // drains; the exception is rethrown by parallel_for.
  pending_.fetch_sub(c.end - c.begin, std::memory_order_acq_rel);
}

void Pool::drain(int id) {
  Chunk c;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (try_pop_own(id, c)) {
      run_chunk(c);
    } else if (try_steal(id, c)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("pool.steals").add();
      run_chunk(c);
    } else {
      // Remaining indices are being executed by other workers; the loop is
      // about to finish, so a yield-spin is cheap and avoids cv churn.
      std::this_thread::yield();
    }
  }
}

void Pool::parallel_for(std::size_t n,
                        const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // One loop at a time: the deques and counters are per-pool, not per-loop.
  std::lock_guard<std::mutex> exclusive(loop_mutex_);

  obs::ScopedSpan loop_span =
      obs::ScopedSpan::if_enabled("pool.parallel_for", "pool");
  loop_span.arg("n", static_cast<double>(n));
  loop_span.arg("workers", static_cast<double>(threads_));

  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    first_error_ = nullptr;
  }
  body_ = &body;
  pending_.store(n, std::memory_order_release);

  // Chunk the index space: ~8 chunks per worker amortizes deque traffic while
  // leaving enough slack for stealing to balance uneven work.
  const std::size_t target_chunks =
      static_cast<std::size_t>(threads_) * 8;
  const std::size_t chunk_size = std::max<std::size_t>(
      1, (n + target_chunks - 1) / target_chunks);
  int next_worker = 0;
  std::size_t chunks_queued = 0;
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    const Chunk c{begin, std::min(begin + chunk_size, n)};
    WorkerDeque& d = *deques_[static_cast<std::size_t>(next_worker)];
    {
      std::lock_guard<std::mutex> lock(d.mutex);
      d.chunks.push_back(c);
    }
    ++chunks_queued;
    next_worker = (next_worker + 1) % threads_;
  }
  if (obs::metrics_enabled()) {
    // Depth right after distribution, before workers drain it: the high-water
    // mark of this loop's queue.
    obs::MetricsRegistry::global()
        .gauge("pool.queue_depth")
        .set(static_cast<double>(chunks_queued));
  }
  work_available_.notify_all();

  drain(0);  // the caller is worker 0

  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().gauge("pool.queue_depth").set(0);

  body_ = nullptr;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace stamp::sweep
