#include "sweep/grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace stamp::sweep {

ParamGrid& ParamGrid::axis(std::string name, std::vector<double> values) {
  if (values.empty())
    throw std::invalid_argument("ParamGrid: axis '" + name + "' has no values");
  if (axis_index(name) >= 0)
    throw std::invalid_argument("ParamGrid: duplicate axis '" + name + "'");
  // Guard the size product against overflow before accepting the axis.
  std::size_t product = values.size();
  for (const GridAxis& a : axes_) {
    if (product > std::numeric_limits<std::size_t>::max() / a.values.size())
      throw std::invalid_argument("ParamGrid: grid size overflows size_t");
    product *= a.values.size();
  }
  axes_.push_back(GridAxis{std::move(name), std::move(values)});
  return *this;
}

std::size_t ParamGrid::size() const noexcept {
  if (axes_.empty()) return 0;
  std::size_t product = 1;
  for (const GridAxis& a : axes_) product *= a.values.size();
  return product;
}

std::vector<double> ParamGrid::point(std::size_t index) const {
  std::vector<double> out(axes_.size());
  decode_into(index, out);
  return out;
}

void ParamGrid::decode_into(std::size_t index, std::span<double> out) const {
  if (index >= size())
    throw std::out_of_range("ParamGrid::decode_into: bad index");
  if (out.size() != axes_.size())
    throw std::invalid_argument(
        "ParamGrid::decode_into: output span must hold one value per axis");
  // Mixed-radix decode, last axis fastest.
  for (std::size_t k = axes_.size(); k-- > 0;) {
    const std::vector<double>& vals = axes_[k].values;
    out[k] = vals[index % vals.size()];
    index /= vals.size();
  }
}

void ParamGrid::decode_chunk(std::size_t begin, std::size_t end,
                             std::span<double> out) const {
  if (begin > end || end > size())
    throw std::out_of_range("ParamGrid::decode_chunk: bad index range");
  const std::size_t count = end - begin;
  if (out.size() != axes_.size() * count)
    throw std::invalid_argument(
        "ParamGrid::decode_chunk: output span must hold axes() * (end - "
        "begin) values");
  if (count == 0) return;
  // Axis k holds one value for `period` consecutive indices (the product of
  // the sizes of the axes after it), so each column is a sequence of
  // constant runs: find the run containing `begin`, then fill forward.
  std::size_t period = 1;
  for (std::size_t k = axes_.size(); k-- > 0;) {
    const std::vector<double>& vals = axes_[k].values;
    const std::size_t arity = vals.size();
    double* col = out.data() + k * count;
    std::size_t digit = (begin / period) % arity;
    std::size_t run = period - begin % period;  // indices left in this run
    std::size_t filled = 0;
    while (filled < count) {
      const double v = vals[digit];
      const std::size_t len = std::min(run, count - filled);
      for (std::size_t j = 0; j < len; ++j) col[filled + j] = v;
      filled += len;
      digit = digit + 1 == arity ? 0 : digit + 1;
      run = period;
    }
    period *= arity;
  }
}

int ParamGrid::axis_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < axes_.size(); ++i)
    if (axes_[i].name == name) return static_cast<int>(i);
  return -1;
}

GridCursor::GridCursor(const ParamGrid& grid, std::size_t start)
    : grid_(&grid), index_(start), size_(grid.size()) {
  if (start > size_)
    throw std::out_of_range("GridCursor: start index past the grid");
  digits_.resize(grid.axes().size());
  values_.resize(grid.axes().size());
  if (index_ < size_) {
    std::size_t rest = index_;
    for (std::size_t k = digits_.size(); k-- > 0;) {
      const std::vector<double>& vals = grid.axes()[k].values;
      digits_[k] = rest % vals.size();
      values_[k] = vals[digits_[k]];
      rest /= vals.size();
    }
  }
}

void GridCursor::advance() noexcept {
  if (done()) return;
  ++index_;
  if (done()) return;
  // Mixed-radix increment with carry, last axis fastest: almost always one
  // digit bump; a carry ripples only every `arity(last)` points.
  for (std::size_t k = digits_.size(); k-- > 0;) {
    const std::vector<double>& vals = grid_->axes()[k].values;
    if (++digits_[k] < vals.size()) {
      values_[k] = vals[digits_[k]];
      return;
    }
    digits_[k] = 0;
    values_[k] = vals[0];
  }
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count == 0)
    throw std::invalid_argument("linspace: count must be >= 1");
  if (!std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("linspace: bounds must be finite");
  std::vector<double> out(count);
  if (count == 1) {
    out[0] = lo;
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // endpoint exact regardless of rounding in the steps
  return out;
}

double ParamGrid::value(std::span<const double> point,
                        std::string_view axis) const {
  const int i = axis_index(axis);
  if (i < 0 || static_cast<std::size_t>(i) >= point.size())
    throw std::invalid_argument("ParamGrid::value: no axis named '" +
                                std::string(axis) + "'");
  return point[static_cast<std::size_t>(i)];
}

}  // namespace stamp::sweep
