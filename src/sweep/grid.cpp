#include "sweep/grid.hpp"

#include <limits>
#include <stdexcept>

namespace stamp::sweep {

ParamGrid& ParamGrid::axis(std::string name, std::vector<double> values) {
  if (values.empty())
    throw std::invalid_argument("ParamGrid: axis '" + name + "' has no values");
  if (axis_index(name) >= 0)
    throw std::invalid_argument("ParamGrid: duplicate axis '" + name + "'");
  // Guard the size product against overflow before accepting the axis.
  std::size_t product = values.size();
  for (const GridAxis& a : axes_) {
    if (product > std::numeric_limits<std::size_t>::max() / a.values.size())
      throw std::invalid_argument("ParamGrid: grid size overflows size_t");
    product *= a.values.size();
  }
  axes_.push_back(GridAxis{std::move(name), std::move(values)});
  return *this;
}

std::size_t ParamGrid::size() const noexcept {
  if (axes_.empty()) return 0;
  std::size_t product = 1;
  for (const GridAxis& a : axes_) product *= a.values.size();
  return product;
}

std::vector<double> ParamGrid::point(std::size_t index) const {
  if (index >= size()) throw std::out_of_range("ParamGrid::point: bad index");
  std::vector<double> out(axes_.size());
  // Mixed-radix decode, last axis fastest.
  for (std::size_t k = axes_.size(); k-- > 0;) {
    const std::vector<double>& vals = axes_[k].values;
    out[k] = vals[index % vals.size()];
    index /= vals.size();
  }
  return out;
}

int ParamGrid::axis_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < axes_.size(); ++i)
    if (axes_[i].name == name) return static_cast<int>(i);
  return -1;
}

double ParamGrid::value(std::span<const double> point,
                        std::string_view axis) const {
  const int i = axis_index(axis);
  if (i < 0 || static_cast<std::size_t>(i) >= point.size())
    throw std::invalid_argument("ParamGrid::value: no axis named '" +
                                std::string(axis) + "'");
  return point[static_cast<std::size_t>(i)];
}

}  // namespace stamp::sweep
