#pragma once
/// \file cache.hpp
/// \brief Sharded memoization of per-point sweep costs.
///
/// A sweep queries four metrics (D, PDP, EDP, ED²P) per grid point, but all
/// four derive from one `(time, energy)` pair — so the expensive placement
/// evaluation is keyed on the canonical parameter tuple and computed once;
/// the other three queries are cache hits. The map is sharded by key hash so
/// pool workers evaluating different points rarely contend on a lock.

#include "core/cost_model.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace stamp::sweep {

/// The memoized quantity: the parallel-composition cost of the point's best
/// placement, its power-envelope feasibility, and the process count the
/// selection chose.
struct PointCost {
  Cost cost{};
  bool feasible = true;
  int processes = 0;  ///< best process count found for the point

  friend bool operator==(const PointCost&, const PointCost&) = default;
};

class CostCache {
 public:
  /// `shards` buckets each with their own lock; rounded up to at least 1.
  /// `max_entries_per_shard` bounds each shard's size: when an insert would
  /// exceed it, the oldest entry of that shard is evicted (FIFO). 0 =
  /// unbounded (the default — sweeps rely on full memoization).
  explicit CostCache(std::size_t shards = 16,
                     std::size_t max_entries_per_shard = 0);

  /// Return the cached value for `key` (the canonical parameter tuple of a
  /// grid point), computing it with `compute` on a miss. `compute` runs
  /// outside any shard lock, so concurrent misses on *different* keys never
  /// serialize; concurrent misses on the same key may both compute (the
  /// first inserted value wins — computation is deterministic, so both
  /// results are identical anyway).
  PointCost get_or_compute(std::span<const double> key,
                           const std::function<PointCost()>& compute);

  [[nodiscard]] std::uint64_t hits() const noexcept;
  [[nodiscard]] std::uint64_t misses() const noexcept;
  [[nodiscard]] std::uint64_t evictions() const noexcept;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, PointCost> map;
    /// Insertion order, for FIFO eviction under a size bound.
    std::vector<std::string> order;
  };

  /// Bitwise encoding of the tuple: exact (no formatting round-trip) and
  /// hashable as a string.
  static std::string encode(std::span<const double> key);

  Shard& shard_for(const std::string& encoded);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t max_entries_per_shard_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace stamp::sweep
