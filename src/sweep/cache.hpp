#pragma once
/// \file cache.hpp
/// \brief Sharded memoization of per-point sweep costs.
///
/// A sweep records four metrics (D, PDP, EDP, ED²P) per grid point, but all
/// four derive from one `(time, energy)` pair — so the expensive placement
/// evaluation is keyed on the canonical parameter tuple, computed once, and
/// probed once per point by the batch evaluator; points that repeat a tuple
/// (duplicate axis values, resume replays) hit instead of recomputing. The
/// table is sharded by key hash so pool workers evaluating different points
/// rarely contend on a lock.
///
/// Keys are canonicalized before hashing: `-0.0` collapses to `0.0` (they
/// are the same grid value; a bitwise key would silently defeat memoization)
/// and NaN/Inf components are rejected with `std::invalid_argument` (a NaN
/// key can never match itself, so caching one is always a bug upstream).
/// Each shard is an open-addressing table over a canonical 64-bit tuple
/// hash; the full tuple is stored inline (in a shard-local arena, not as a
/// heap string per entry) and verified on every probe, so a hash collision
/// degrades to a probe step, never a wrong value. Lookups allocate nothing.
///
/// Under a size bound, eviction is FIFO through a real fixed-capacity ring
/// of entry indices — `size()` and `evictions()` stay exact even when
/// concurrent misses race on one key (a racing loser never double-inserts
/// or double-counts; see `get_or_compute`).
///
/// For long-lived processes (stamp_serve) the cache optionally runs in a
/// TTL/admission mode, configured via `CacheOptions`:
///
///  - **TTL**: entries older than `ttl` are stale. Staleness is detected
///    lazily at probe time and the entry is *refreshed in place* — same
///    slot, same arena span, same FIFO position — so the bounded-mode
///    accounting (live count, eviction order, free-list reuse) is untouched
///    by expiry. A stale probe counts as a miss (`expirations()` counts each
///    in-place refresh exactly once, even when concurrent probes race on the
///    same stale entry).
///  - **Admission** (bounded mode only): a doorkeeper filter makes a
///    first-seen key earn its slot. While a shard is full, the first miss on
///    a new key computes but is *not* inserted (counted in
///    `admission_rejections()`); a second miss on the same key admits it.
///    This keeps one-off request keys from churning out the hot working set.
///
/// With `ttl == 0` and `admission == false` (the defaults) every new branch
/// is dead and the clock is never read: batch sweeps are bit-identical to
/// the pre-TTL cache (locked by a byte-identity test vs sweeps/baseline.json).

#include "core/cost_model.hpp"
#include "core/function_ref.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace stamp::sweep {

/// The memoized quantity: the parallel-composition cost of the point's best
/// placement, its power-envelope feasibility, and the process count the
/// selection chose.
struct PointCost {
  Cost cost{};
  bool feasible = true;
  int processes = 0;  ///< best process count found for the point

  friend bool operator==(const PointCost&, const PointCost&) = default;
};

/// Construction-time policy for a CostCache. The defaults reproduce the
/// classic sweep cache exactly (unbounded, no TTL, no admission filter).
struct CacheOptions {
  /// Lock-sharded buckets; rounded up to at least 1.
  std::size_t shards = 16;
  /// Per-shard size bound with FIFO eviction; 0 = unbounded.
  std::size_t max_entries_per_shard = 0;
  /// Entries older than this are stale and refreshed on next probe; 0 =
  /// entries never expire.
  std::chrono::nanoseconds ttl{0};
  /// Doorkeeper admission filter (bounded mode only — ignored when
  /// `max_entries_per_shard` is 0).
  bool admission = false;
  /// Test hook: monotonic clock in nanoseconds. nullptr = steady_clock.
  /// Lets TTL tests advance time deterministically instead of sleeping.
  std::uint64_t (*now_ns)() = nullptr;
};

class CostCache {
 public:
  /// `shards` buckets each with their own lock; rounded up to at least 1.
  /// `max_entries_per_shard` bounds each shard's size: when an insert would
  /// exceed it, the oldest entry of that shard is evicted (FIFO). 0 =
  /// unbounded (the default — sweeps rely on full memoization).
  explicit CostCache(std::size_t shards = 16,
                     std::size_t max_entries_per_shard = 0);

  /// Full-policy constructor (TTL / admission — see CacheOptions).
  explicit CostCache(const CacheOptions& options);

  /// Return the cached value for `key` (the canonical parameter tuple of a
  /// grid point), computing it with `compute` on a miss. `compute` runs
  /// outside any shard lock, so concurrent misses on *different* keys never
  /// serialize; concurrent misses on the same key may both compute, but only
  /// the first result is inserted (computation is deterministic, so both
  /// results are identical anyway). Counters account every lookup exactly
  /// once: a lookup is a miss iff it did not return a fresh cached value, so
  /// `hits() + misses()` equals the number of calls — no double-counting
  /// when misses race. Without TTL/admission, `misses()` additionally equals
  /// the number of inserts; with them, a miss may instead be an in-place
  /// refresh (`expirations()`) or a rejected insert
  /// (`admission_rejections()`).
  ///
  /// Throws std::invalid_argument if any key component is NaN or infinite.
  PointCost get_or_compute(std::span<const double> key,
                           core::function_ref<PointCost()> compute);

  /// The canonical 64-bit tuple hash (exposed for tests): length-seeded
  /// splitmix over the canonicalized bit patterns, so `-0.0` and `0.0` hash
  /// identically and a tuple never collides with its own prefix.
  /// Throws std::invalid_argument on NaN/Inf components.
  [[nodiscard]] static std::uint64_t hash_key(std::span<const double> key);

  [[nodiscard]] std::uint64_t hits() const noexcept;
  [[nodiscard]] std::uint64_t misses() const noexcept;
  [[nodiscard]] std::uint64_t evictions() const noexcept;
  /// Stale entries refreshed in place (TTL mode). Expiry is lazy: an entry
  /// that ages out but is never probed again is not counted.
  [[nodiscard]] std::uint64_t expirations() const noexcept;
  /// Computed-but-not-inserted misses turned away by the doorkeeper
  /// (admission mode).
  [[nodiscard]] std::uint64_t admission_rejections() const noexcept;
  [[nodiscard]] std::size_t size() const;
  /// Entry records ever allocated across all shards (live + reusable).
  /// Test introspection: under a size bound this must stay O(bound) — freed
  /// entries are reused per key arity, never stranded on the free list.
  [[nodiscard]] std::size_t entry_capacity() const;
  void clear();

 private:
  /// One stored tuple → value binding. The key doubles live in the shard's
  /// `key_arena` at [key_offset, key_offset + key_len).
  struct Entry {
    std::uint64_t hash = 0;
    std::uint32_t key_offset = 0;
    std::uint32_t key_len = 0;
    PointCost value{};
    /// Insertion/refresh time in clock nanoseconds; only written in TTL mode
    /// (stays 0 otherwise, and the clock is never read).
    std::uint64_t stamp = 0;
  };

  struct Shard {
    std::mutex mutex;
    /// Open-addressing slot array (power-of-two size): kEmptySlot,
    /// kTombstone, or an index into `entries`.
    std::vector<std::int32_t> slots;
    std::size_t live = 0;        ///< entries currently reachable
    std::size_t tombstones = 0;  ///< deleted slots awaiting rehash
    std::vector<Entry> entries;      ///< stable-index entry store
    std::vector<std::int32_t> free;  ///< reusable `entries` indices
    std::vector<double> key_arena;   ///< inline tuple storage
    /// FIFO ring of entry indices in insertion order (bounded mode only).
    std::vector<std::int32_t> fifo;
    std::size_t fifo_head = 0;
    std::size_t fifo_size = 0;
    /// Doorkeeper (admission mode): direct-mapped table of key hashes that
    /// missed once while the shard was full. 0 = empty; hashes stored with
    /// bit 0 forced on so a real hash can never alias the empty marker.
    std::vector<std::uint64_t> door;
  };

  static constexpr std::int32_t kEmptySlot = -1;
  static constexpr std::int32_t kTombstone = -2;

  Shard& shard_for(std::uint64_t hash);

  /// Probe `shard` for `key`; returns the entry index or -1. Lock held.
  std::int32_t find_locked(Shard& shard, std::uint64_t hash,
                           std::span<const double> key) const;
  /// Insert a new entry (key known absent). Lock held. Grows/rehashes or
  /// FIFO-evicts as needed. `now` is the entry stamp (0 when TTL is off).
  PointCost insert_locked(Shard& shard, std::uint64_t hash,
                          std::span<const double> key, const PointCost& value,
                          std::uint64_t now);
  void rehash_locked(Shard& shard, std::size_t min_slots);
  void evict_oldest_locked(Shard& shard);

  /// Current clock reading (TTL mode). Never called when `ttl_ns_ == 0`.
  [[nodiscard]] std::uint64_t now_ns() const;
  [[nodiscard]] bool stale(const Entry& e, std::uint64_t now) const noexcept {
    return now - e.stamp > ttl_ns_;
  }
  /// Doorkeeper check for a full shard: true = admit (second miss), false =
  /// turn away and remember the key (first miss). Lock held.
  [[nodiscard]] bool door_admit_locked(Shard& shard, std::uint64_t hash);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t max_entries_per_shard_ = 0;
  std::uint64_t ttl_ns_ = 0;
  bool admission_ = false;
  std::uint64_t (*clock_)() = nullptr;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> expirations_{0};
  std::atomic<std::uint64_t> admission_rejections_{0};
};

}  // namespace stamp::sweep
