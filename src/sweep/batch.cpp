#include "sweep/batch.hpp"

#include "fault/injector.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sweep/journal.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace stamp::sweep {
namespace {

/// Same validation (and same error text) as the axis_int lookup in
/// setup_point, applied to an already-decoded axis value.
int checked_axis_int(double v, std::string_view name) {
  if (!std::isfinite(v) ||
      v < static_cast<double>(std::numeric_limits<int>::min()) ||
      v > static_cast<double>(std::numeric_limits<int>::max()))
    throw std::invalid_argument("sweep: axis '" + std::string(name) +
                                "' value is not representable as int");
  return static_cast<int>(v);
}

std::uint64_t next_evaluator_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// ---------------------------------------------------------------------------
// The scalar reference path (the pre-batch implementation, kept verbatim).
// ---------------------------------------------------------------------------

struct ReferenceScratch {
  std::vector<ProcessProfile> profiles;
  std::vector<int> candidates;
};

ReferenceScratch& reference_scratch() {
  thread_local ReferenceScratch scratch;
  return scratch;
}

PointCost reference_placement_cost(const PointSetup& s, int n,
                                   Objective objective,
                                   std::vector<ProcessProfile>& profiles) {
  profiles.assign(static_cast<std::size_t>(n), strong_scaled(s.profile, n));
  PlacementResult r;
  switch (s.strategy) {
    case PlacementStrategy::FillFirst:
      r = place_fill_first(profiles, s.machine, objective);
      break;
    case PlacementStrategy::RoundRobin:
      r = place_round_robin(profiles, s.machine, objective);
      break;
    case PlacementStrategy::Greedy:
      r = place_greedy(profiles, s.machine, objective);
      break;
  }
  return PointCost{r.eval.total, r.eval.feasible, n};
}

}  // namespace

PointCost compute_point_cost_reference(const PointSetup& s,
                                       Objective objective) {
  const int limit = std::max(1, std::min(s.processes,
                                         s.machine.topology.total_threads()));
  ReferenceScratch& scratch = reference_scratch();
  scratch.candidates.clear();
  for (int n = 1; n < limit; n *= 2) scratch.candidates.push_back(n);
  scratch.candidates.push_back(limit);

  PointCost best{};
  bool have = false;
  for (const int n : scratch.candidates) {
    const PointCost c =
        reference_placement_cost(s, n, objective, scratch.profiles);
    const bool better_feasibility = c.feasible && !best.feasible;
    const bool same_feasibility = c.feasible == best.feasible;
    if (!have || better_feasibility ||
        (same_feasibility && metric_value(c.cost, objective) <
                                 metric_value(best.cost, objective))) {
      best = c;
      have = true;
    }
  }
  return best;
}

SweepRecord evaluate_point_reference(const SweepConfig& cfg,
                                     std::size_t index) {
  SweepRecord rec;
  rec.index = index;
  rec.params = cfg.grid.point(index);
  const PointSetup s = setup_point(cfg, rec.params);
  const PointCost pc = compute_point_cost_reference(s, cfg.objective);
  rec.feasible = pc.feasible;
  rec.processes = pc.processes;
  rec.metrics.D = metric_value(pc.cost, Objective::D);
  rec.metrics.PDP = metric_value(pc.cost, Objective::PDP);
  rec.metrics.EDP = metric_value(pc.cost, Objective::EDP);
  rec.metrics.ED2P = metric_value(pc.cost, Objective::ED2P);

  const ProcessProfile per_process = strong_scaled(s.profile, rec.processes);
  models::RoundSpec rs;
  rs.local_ops = per_process.c_fp + per_process.c_int;
  rs.msgs_out = per_process.m_s;
  rs.msgs_in = per_process.m_r;
  rs.shm_reads = per_process.d_r;
  rs.shm_writes = per_process.d_w;
  rs.max_location_accesses = per_process.kappa;
  const models::ClassicalParams cp =
      models::classical_from_machine(s.machine.params);
  for (int k = 0; k < models::kModelKindCount; ++k)
    rec.classical[static_cast<std::size_t>(k)] =
        models::round_time(static_cast<models::ModelKind>(k), rs, cp);
  return rec;
}

// ---------------------------------------------------------------------------
// The batch evaluator.
// ---------------------------------------------------------------------------

/// Per-thread reusable state. Everything is sized once (to kBatch) and reused
/// for every sub-batch the thread processes; the vectors only ever grow, so
/// the hot path performs no allocation once warm. `owner` ties the cached
/// machine/profile state to one evaluator instance: pool worker threads
/// outlive sweeps, so scratch from a previous sweep must never leak into the
/// next one.
struct BatchEvaluator::Scratch {
  std::uint64_t owner = 0;

  // The machine-group cache: the resolved setup of the most recent point,
  // reused while the machine-axis values repeat (bit-compared — consecutive
  // grid points decode the same slow-axis doubles bit-for-bit).
  PointSetup setup;
  models::ClassicalParams cp{};
  std::array<double, 5> machine_axis_values{};
  bool machine_valid = false;
  /// Index of `cp` in `cps` for the current sub-batch (-1 = not registered).
  int cp_slot = -1;

  // Structure-of-arrays staging for one sub-batch.
  std::vector<double> soa;               ///< axis-major decode (naxes × m)
  std::vector<unsigned char> evaluated;  ///< 1 = point produced a record
  std::vector<int> mgroup;               ///< per-slot index into `cps`
  std::vector<models::ClassicalParams> cps;  ///< machine groups this sub-batch
  std::vector<double> rs_local;
  std::vector<double> rs_msgs_out;
  std::vector<double> rs_msgs_in;
  std::vector<double> rs_shm_reads;
  std::vector<double> rs_shm_writes;
  std::vector<double> rs_max_loc;
  std::vector<double> model_out;

  // Placement-kernel scratch (per candidate process count).
  std::vector<int> candidates;
  std::vector<Cost> by_size;          ///< cost of a process in a g-group
  std::vector<double> power_by_size;
  std::vector<double> per_proc;
  std::vector<int> group_count;
  std::vector<int> proc_of;
  std::vector<std::size_t> order;
  std::vector<double> solo_power;
};

BatchEvaluator::BatchEvaluator(const SweepConfig& cfg, CostCache& cache,
                               const SweepOptions& options,
                               std::size_t record_offset)
    : cfg_(&cfg),
      cache_(&cache),
      options_(options),
      id_(next_evaluator_id()),
      offset_(record_offset),
      naxes_(cfg.grid.axes().size()),
      ax_cores_(cfg.grid.axis_index(axes::kCores)),
      ax_tpc_(cfg.grid.axis_index(axes::kThreadsPerCore)),
      ax_ell_(cfg.grid.axis_index(axes::kEllE)),
      ax_le_(cfg.grid.axis_index(axes::kLE)),
      ax_gsh_(cfg.grid.axis_index(axes::kGShE)),
      ax_kappa_(cfg.grid.axis_index(axes::kKappa)),
      ax_place_(cfg.grid.axis_index(axes::kPlacement)),
      ax_procs_(cfg.grid.axis_index(axes::kProcesses)) {}

BatchEvaluator::Scratch& BatchEvaluator::scratch() const {
  thread_local Scratch sc;
  if (sc.owner != id_) {
    sc.owner = id_;
    sc.machine_valid = false;
    sc.cp_slot = -1;
    if (sc.soa.size() < naxes_ * kBatch) sc.soa.resize(naxes_ * kBatch);
    if (sc.evaluated.size() < kBatch) {
      sc.evaluated.resize(kBatch);
      sc.mgroup.resize(kBatch);
      sc.rs_local.resize(kBatch);
      sc.rs_msgs_out.resize(kBatch);
      sc.rs_msgs_in.resize(kBatch);
      sc.rs_shm_reads.resize(kBatch);
      sc.rs_shm_writes.resize(kBatch);
      sc.rs_max_loc.resize(kBatch);
      sc.model_out.resize(kBatch);
    }
  }
  return sc;
}

std::uint64_t BatchEvaluator::run_range(std::size_t begin, std::size_t end,
                                        std::span<SweepRecord> records,
                                        bool fail_fast,
                                        std::mutex* error_mutex,
                                        std::exception_ptr* first_error) {
  Scratch& sc = scratch();
  std::uint64_t journaled = 0;
  for (std::size_t b = begin; b < end; b += kBatch) {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) break;
    const std::size_t e = std::min(end, b + kBatch);
    journaled +=
        run_subbatch(b, e, records, fail_fast, error_mutex, first_error, sc);
  }
  return journaled;
}

std::uint64_t BatchEvaluator::run_subbatch(std::size_t begin, std::size_t end,
                                           std::span<SweepRecord> records,
                                           bool fail_fast,
                                           std::mutex* error_mutex,
                                           std::exception_ptr* first_error,
                                           Scratch& sc) {
  const std::size_t m = end - begin;
  cfg_->grid.decode_chunk(begin, end,
                          std::span<double>(sc.soa.data(), naxes_ * m));
  std::fill_n(sc.evaluated.begin(), m, static_cast<unsigned char>(0));
  sc.cps.clear();
  sc.cp_slot = -1;

  std::exception_ptr failure;  // fail_fast: pending rethrow after journaling
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t idx = begin + i;
    if (options_.cancel != nullptr && options_.cancel->cancelled()) break;
    if (options_.resume != nullptr && options_.resume->completed(idx))
      continue;
    SweepRecord& rec = records[idx - offset_];
    try {
      evaluate_one(idx, i, m, rec, sc);
      sc.evaluated[i] = 1;
    } catch (...) {
      // A failed point leaves the same default record the scalar path left
      // (it assigned the record only on successful return).
      rec = SweepRecord{};
      if (fail_fast) {
        failure = std::current_exception();
        break;
      }
      if (error_mutex != nullptr && first_error != nullptr) {
        const std::lock_guard<std::mutex> lock(*error_mutex);
        if (!*first_error) *first_error = std::current_exception();
      }
    }
  }

  // Classical baselines must land in the records before they are journaled —
  // the journal serializes complete records.
  finalize_classical(begin, m, records, sc);

  std::uint64_t journaled = 0;
  if (options_.journal != nullptr) {
    for (std::size_t i = 0; i < m; ++i) {
      if (sc.evaluated[i] == 0) continue;
      options_.journal->append(records[begin + i - offset_]);
      ++journaled;
    }
  }
  if (failure) std::rethrow_exception(failure);
  return journaled;
}

void BatchEvaluator::evaluate_one(std::size_t index, std::size_t slot,
                                  std::size_t count, SweepRecord& rec,
                                  Scratch& sc) {
  rec.index = index;
  rec.params.resize(naxes_);
  const double* soa = sc.soa.data();
  for (std::size_t a = 0; a < naxes_; ++a)
    rec.params[a] = soa[a * count + slot];

  // Durability hooks fire per index, exactly like the scalar path: the
  // injection site decides before any work (an injected point emits no
  // span), the watchdog covers the expensive part of the evaluation.
  if (fault::injection_enabled() &&
      fault::Injector::current().decide(fault::FaultSite::SweepPointFail,
                                       static_cast<std::uint64_t>(index)))
    throw fault::SweepPointFailure(index);
  std::optional<fault::RetryState> watchdog;
  if (options_.point_deadline.count() > 0) {
    fault::RetryPolicy policy;
    policy.deadline = options_.point_deadline;
    watchdog.emplace(policy, static_cast<std::uint64_t>(index));
  }
  obs::ScopedSpan span = obs::ScopedSpan::if_enabled("sweep.point", "sweep");
  span.arg("index", static_cast<double>(index));

  setup_current(rec, sc);

  // One cache probe per point: all four metrics derive from the one
  // memoized (T, E) pair.
  const PointCost pc = cache_->get_or_compute(
      rec.params, [&] { return compute_uniform_point(sc); });
  rec.feasible = pc.feasible;
  rec.processes = pc.processes;
  rec.metrics.D = metric_value(pc.cost, Objective::D);
  rec.metrics.PDP = metric_value(pc.cost, Objective::PDP);
  rec.metrics.EDP = metric_value(pc.cost, Objective::EDP);
  rec.metrics.ED2P = metric_value(pc.cost, Objective::ED2P);

  // Stage the per-process round for the deferred classical batch.
  const ProcessProfile per_process =
      strong_scaled(sc.setup.profile, rec.processes);
  sc.rs_local[slot] = per_process.c_fp + per_process.c_int;
  sc.rs_msgs_out[slot] = per_process.m_s;
  sc.rs_msgs_in[slot] = per_process.m_r;
  sc.rs_shm_reads[slot] = per_process.d_r;
  sc.rs_shm_writes[slot] = per_process.d_w;
  sc.rs_max_loc[slot] = per_process.kappa;
  if (sc.cp_slot < 0) {
    sc.cps.push_back(sc.cp);
    sc.cp_slot = static_cast<int>(sc.cps.size()) - 1;
  }
  sc.mgroup[slot] = sc.cp_slot;

  if (watchdog.has_value() && watchdog->deadline_passed()) {
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global()
          .counter("sweep.point_deadline_exceeded")
          .add();
    throw fault::DeadlineExceeded();
  }
}

void BatchEvaluator::setup_current(const SweepRecord& rec, Scratch& sc) const {
  const std::array<int, 5> machine_axes{ax_cores_, ax_tpc_, ax_ell_, ax_le_,
                                        ax_gsh_};
  bool same = sc.machine_valid;
  if (same) {
    for (std::size_t k = 0; k < machine_axes.size(); ++k) {
      const int a = machine_axes[k];
      if (a < 0) continue;
      // Bit comparison, not ==: the cache must key on the decoded value
      // exactly (and a NaN axis value must never look equal to itself —
      // though a NaN machine never validates, so it is never cached).
      const double axis_value = rec.params[static_cast<std::size_t>(a)];
      if (std::bit_cast<std::uint64_t>(axis_value) !=
          std::bit_cast<std::uint64_t>(sc.machine_axis_values[k])) {
        same = false;
        break;
      }
    }
  }
  if (!same) {
    sc.machine_valid = false;  // stays false if setup_point throws
    sc.setup = setup_point(*cfg_, rec.params);
    sc.cp = models::classical_from_machine(sc.setup.machine.params);
    for (std::size_t k = 0; k < machine_axes.size(); ++k) {
      const int a = machine_axes[k];
      sc.machine_axis_values[k] =
          a >= 0 ? rec.params[static_cast<std::size_t>(a)] : 0.0;
    }
    sc.machine_valid = true;
    sc.cp_slot = -1;  // new machine -> new classical-params group
    return;           // setup_point resolved the per-point fields too
  }

  // Machine unchanged: re-resolve only the point-varying fields, with the
  // same validation (and error text) setup_point applies.
  PointSetup& s = sc.setup;
  s.profile = cfg_->profile;
  if (ax_kappa_ >= 0)
    s.profile.kappa = rec.params[static_cast<std::size_t>(ax_kappa_)];

  int proc_bound = cfg_->processes;
  if (ax_procs_ >= 0)
    proc_bound = checked_axis_int(
        rec.params[static_cast<std::size_t>(ax_procs_)], axes::kProcesses);
  if (proc_bound < 1)
    throw std::invalid_argument(
        "sweep: processes axis value must be >= 1, got " +
        std::to_string(proc_bound));
  s.processes = std::min(proc_bound, s.machine.topology.total_threads());

  int code = static_cast<int>(PlacementStrategy::FillFirst);
  if (ax_place_ >= 0)
    code = checked_axis_int(rec.params[static_cast<std::size_t>(ax_place_)],
                            axes::kPlacement);
  if (code < 0 || code > static_cast<int>(PlacementStrategy::Greedy))
    throw std::invalid_argument("sweep: unknown placement strategy code " +
                                std::to_string(code));
  s.strategy = static_cast<PlacementStrategy>(code);
}

PointCost BatchEvaluator::compute_uniform_point(Scratch& sc) const {
  // Identical selection to the scalar reference: powers of two below the
  // bound, then the bound; feasible candidates preferred, then the objective.
  const PointSetup& s = sc.setup;
  const int limit = std::max(1, std::min(s.processes,
                                         s.machine.topology.total_threads()));
  sc.candidates.clear();
  for (int n = 1; n < limit; n *= 2) sc.candidates.push_back(n);
  sc.candidates.push_back(limit);

  PointCost best{};
  bool have = false;
  for (const int n : sc.candidates) {
    const PointCost c = uniform_placement_cost(n, sc);
    const bool better_feasibility = c.feasible && !best.feasible;
    const bool same_feasibility = c.feasible == best.feasible;
    if (!have || better_feasibility ||
        (same_feasibility && metric_value(c.cost, cfg_->objective) <
                                 metric_value(best.cost, cfg_->objective))) {
      best = c;
      have = true;
    }
  }
  return best;
}

PointCost BatchEvaluator::uniform_placement_cost(int n, Scratch& sc) const {
  const MachineModel& machine = sc.setup.machine;
  const Topology& topo = machine.topology;
  const int procs = topo.total_processors();
  const int tpp = topo.threads_per_processor;
  const ProcessProfile prof = strong_scaled(sc.setup.profile, n);

  // All n processes are identical, so a process's cost depends only on its
  // group size — price each size once in a tight closed-form loop instead of
  // once per process. These calls produce bit-identical values to the ones
  // the scalar path computed per process, so every downstream max / sum /
  // comparison sees the same doubles in the same order.
  const int gmax = std::min(tpp, n);
  sc.by_size.resize(static_cast<std::size_t>(gmax) + 1);
  sc.power_by_size.resize(static_cast<std::size_t>(gmax) + 1);
  for (int g = 1; g <= gmax; ++g)
    sc.by_size[static_cast<std::size_t>(g)] =
        process_cost_in_group(prof, g, n, machine);
  for (int g = 1; g <= gmax; ++g)
    sc.power_by_size[static_cast<std::size_t>(g)] =
        sc.by_size[static_cast<std::size_t>(g)].power();

  // Resolve each process's processor exactly as place_* would.
  sc.proc_of.assign(static_cast<std::size_t>(n), 0);
  switch (sc.setup.strategy) {
    case PlacementStrategy::FillFirst:
      for (int i = 0; i < n; ++i)
        sc.proc_of[static_cast<std::size_t>(i)] = i / tpp;
      break;
    case PlacementStrategy::RoundRobin:
      for (int i = 0; i < n; ++i)
        sc.proc_of[static_cast<std::size_t>(i)] = i % procs;
      break;
    case PlacementStrategy::Greedy:
      greedy_assign(n, sc);
      break;
  }
  sc.group_count.assign(static_cast<std::size_t>(procs), 0);
  for (int i = 0; i < n; ++i)
    ++sc.group_count[static_cast<std::size_t>(
        sc.proc_of[static_cast<std::size_t>(i)])];

  // evaluate_placement + check_system, fused: accumulate total time/energy,
  // per-processor power and system power in the original process order (each
  // accumulator sees the same addition sequence, so the sums are bit-equal).
  sc.per_proc.assign(static_cast<std::size_t>(procs), 0.0);
  Cost total{};
  double system_power = 0;
  for (int i = 0; i < n; ++i) {
    const int p = sc.proc_of[static_cast<std::size_t>(i)];
    const int g = sc.group_count[static_cast<std::size_t>(p)];
    const Cost& c = sc.by_size[static_cast<std::size_t>(g)];
    total.time = std::max(total.time, c.time);
    total.energy += c.energy;
    const double pw = sc.power_by_size[static_cast<std::size_t>(g)];
    sc.per_proc[static_cast<std::size_t>(p)] += pw;
    system_power += pw;
  }

  const PowerEnvelope& env = machine.envelope;
  bool procs_ok = true;
  if (env.per_processor > 0) {
    for (int p = 0; p < procs; ++p) {
      if (!(sc.per_proc[static_cast<std::size_t>(p)] <= env.per_processor)) {
        procs_ok = false;
        break;
      }
    }
  }
  bool chips_ok = true;
  if (env.per_chip > 0) {
    for (int chip = 0; chip < topo.chips; ++chip) {
      double chip_demand = 0;
      for (int p = 0; p < topo.processors_per_chip; ++p)
        chip_demand += sc.per_proc[static_cast<std::size_t>(
            chip * topo.processors_per_chip + p)];
      if (chip_demand > env.per_chip) chips_ok = false;
    }
  }
  bool system_ok = true;
  if (env.system > 0) system_ok = system_power <= env.system;

  return PointCost{total, chips_ok && system_ok && procs_ok, n};
}

void BatchEvaluator::greedy_assign(int n, Scratch& sc) const {
  const MachineModel& machine = sc.setup.machine;
  const int procs = machine.topology.total_processors();
  const int tpp = machine.topology.threads_per_processor;

  // place_greedy sorts by descending solo power. Uniform profiles make every
  // key equal, so the comparator never returns true — but the permutation
  // std::sort produces is still implementation-defined, so run the *same*
  // sort over the same iota sequence with the same comparator shape to get
  // the same order the scalar path got.
  sc.order.resize(static_cast<std::size_t>(n));
  std::iota(sc.order.begin(), sc.order.end(), std::size_t{0});
  sc.solo_power.assign(static_cast<std::size_t>(n), sc.power_by_size[1]);
  std::sort(sc.order.begin(), sc.order.end(),
            [&](std::size_t a, std::size_t b) {
              return sc.solo_power[a] > sc.solo_power[b];
            });

  sc.group_count.assign(static_cast<std::size_t>(procs), 0);
  const double cap = machine.envelope.per_processor;
  for (const std::size_t idx : sc.order) {
    bool placed = false;
    for (int p = 0; p < procs && !placed; ++p) {
      const int k = sc.group_count[static_cast<std::size_t>(p)];
      if (k >= tpp) continue;
      bool ok = true;
      if (cap > 0) {
        // group_feasible on a candidate group of k+1 identical members.
        double demand = 0;
        const double pw = sc.power_by_size[static_cast<std::size_t>(k) + 1];
        for (int j = 0; j <= k; ++j) demand += pw;
        ok = demand <= cap;
      }
      if (ok) {
        sc.group_count[static_cast<std::size_t>(p)] = k + 1;
        sc.proc_of[idx] = p;
        placed = true;
      }
    }
    if (!placed) {
      // No feasible slot: emptiest processor with room (same tie-break).
      int best = -1;
      for (int p = 0; p < procs; ++p) {
        const int sz = sc.group_count[static_cast<std::size_t>(p)];
        if (sz < tpp &&
            (best < 0 || sz < sc.group_count[static_cast<std::size_t>(best)]))
          best = p;
      }
      ++sc.group_count[static_cast<std::size_t>(best)];
      sc.proc_of[idx] = best;
    }
  }
}

void BatchEvaluator::finalize_classical(std::size_t base, std::size_t count,
                                        std::span<SweepRecord> records,
                                        Scratch& sc) {
  std::size_t i = 0;
  while (i < count) {
    if (sc.evaluated[i] == 0) {
      ++i;
      continue;
    }
    // Extend over the run of evaluated points sharing one machine group, so
    // the model parameters are loop-invariant across the whole span.
    const int grp = sc.mgroup[i];
    std::size_t j = i + 1;
    while (j < count && sc.evaluated[j] != 0 && sc.mgroup[j] == grp) ++j;
    const std::size_t len = j - i;

    models::RoundSpecBatch batch;
    batch.local_ops = {sc.rs_local.data() + i, len};
    batch.msgs_out = {sc.rs_msgs_out.data() + i, len};
    batch.msgs_in = {sc.rs_msgs_in.data() + i, len};
    batch.shm_reads = {sc.rs_shm_reads.data() + i, len};
    batch.shm_writes = {sc.rs_shm_writes.data() + i, len};
    batch.max_location_accesses = {sc.rs_max_loc.data() + i, len};
    const models::ClassicalParams& cp = sc.cps[static_cast<std::size_t>(grp)];
    for (int k = 0; k < models::kModelKindCount; ++k) {
      models::round_time_batch(static_cast<models::ModelKind>(k), batch, cp,
                               std::span<double>(sc.model_out.data(), len));
      for (std::size_t t = 0; t < len; ++t)
        records[base + i + t - offset_].classical[static_cast<std::size_t>(k)] =
            sc.model_out[t];
    }
    i = j;
  }
}

}  // namespace stamp::sweep
