#include "sweep/sweep.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "report/json.hpp"
#include "sweep/batch.hpp"
#include "sweep/journal.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

// The plain run_sweep* overloads delegate to the options-taking ones; that
// internal call must stay quiet under -DSTAMP_WARN_DEPRECATED=ON.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace stamp::sweep {
namespace {

double axis_or(const SweepConfig& cfg, std::span<const double> vals,
               std::string_view name, double fallback) {
  const int i = cfg.grid.axis_index(name);
  return i >= 0 ? vals[static_cast<std::size_t>(i)] : fallback;
}

/// An integer-coded axis value. The grid stores doubles, so validate before
/// the narrowing cast: a non-finite or out-of-int-range value would make the
/// cast undefined behavior, not just a nonsense parameter.
int axis_int(const SweepConfig& cfg, std::span<const double> vals,
             std::string_view name, int fallback) {
  const double v = axis_or(cfg, vals, name, static_cast<double>(fallback));
  if (!std::isfinite(v) ||
      v < static_cast<double>(std::numeric_limits<int>::min()) ||
      v > static_cast<double>(std::numeric_limits<int>::max()))
    throw std::invalid_argument("sweep: axis '" + std::string(name) +
                                "' value is not representable as int");
  return static_cast<int>(v);
}

}  // namespace

PointSetup setup_point(const SweepConfig& cfg, std::span<const double> vals) {
  PointSetup s;
  s.machine = cfg.base;
  Topology& t = s.machine.topology;
  t.processors_per_chip =
      axis_int(cfg, vals, axes::kCores, t.processors_per_chip);
  t.threads_per_processor =
      axis_int(cfg, vals, axes::kThreadsPerCore, t.threads_per_processor);
  MachineParams& p = s.machine.params;
  p.ell_e = axis_or(cfg, vals, axes::kEllE, p.ell_e);
  p.L_e = axis_or(cfg, vals, axes::kLE, p.L_e);
  p.g_sh_e = axis_or(cfg, vals, axes::kGShE, p.g_sh_e);
  s.machine.validate();  // rejects nonsense grids (e.g. inter < intra)

  s.profile = cfg.profile;
  s.profile.kappa = axis_or(cfg, vals, axes::kKappa, s.profile.kappa);

  const int proc_bound = axis_int(cfg, vals, axes::kProcesses, cfg.processes);
  if (proc_bound < 1)
    throw std::invalid_argument(
        "sweep: processes axis value must be >= 1, got " +
        std::to_string(proc_bound));
  s.processes = std::min(proc_bound, t.total_threads());

  const int code =
      axis_int(cfg, vals, axes::kPlacement,
               static_cast<int>(PlacementStrategy::FillFirst));
  if (code < 0 || code > static_cast<int>(PlacementStrategy::Greedy))
    throw std::invalid_argument("sweep: unknown placement strategy code " +
                                std::to_string(code));
  s.strategy = static_cast<PlacementStrategy>(code);
  return s;
}

ProcessProfile strong_scaled(const ProcessProfile& total, int n) {
  ProcessProfile p = total;
  const double inv = 1.0 / n;
  p.c_fp *= inv;
  p.c_int *= inv;
  p.d_r *= inv;
  p.d_w *= inv;
  p.m_s *= inv;
  p.m_r *= inv;
  return p;
}

namespace {

SweepResult make_result_shell(const SweepConfig& cfg) {
  SweepResult out;
  out.axis_names.reserve(cfg.grid.axes().size());
  for (const GridAxis& a : cfg.grid.axes()) out.axis_names.push_back(a.name);
  out.workload = cfg.workload;
  out.objective = cfg.objective;
  out.records.resize(cfg.grid.size());
  return out;
}

/// Replay the resume state's completed points into the result (verbatim —
/// byte-identical serialization is the contract) and pre-seed the cost cache
/// with their memoized placement evaluations, so a still-missing point that
/// shares a replayed point's canonical parameter tuple hits instead of
/// recomputing.
void seed_from_resume(SweepResult& out, CostCache& cache,
                      const ResumeState& resume) {
  if (resume.grid_points() != out.records.size())
    throw std::invalid_argument(
        "sweep: resume state covers " + std::to_string(resume.grid_points()) +
        " grid points but the sweep has " +
        std::to_string(out.records.size()));
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    if (!resume.completed(i)) continue;
    const SweepRecord& rec = resume.record(i);
    out.records[i] = rec;
    const PointCost pc{Cost{rec.metrics.D, rec.metrics.PDP}, rec.feasible,
                       rec.processes};
    (void)cache.get_or_compute(rec.params, [&] { return pc; });
    ++out.stats.resumed_points;
  }
  if (out.stats.resumed_points > 0 && obs::metrics_enabled())
    obs::MetricsRegistry::global()
        .counter("sweep.resume.replayed")
        .add(out.stats.resumed_points);
}

/// Shared post-loop bookkeeping: make journaled records durable, count the
/// points cancellation left unevaluated, and stamp the cancelled flag.
void finish_run(SweepResult& out, const SweepOptions& opts,
                std::uint64_t journaled) {
  out.stats.journaled_points = journaled;
  if (opts.journal != nullptr) opts.journal->sync();
  out.cancelled = opts.cancel != nullptr && opts.cancel->cancelled();
  if (out.cancelled) {
    // An evaluated record always selects >= 1 process; a skipped one keeps
    // the default 0, so the two are distinguishable without extra state.
    for (const SweepRecord& rec : out.records)
      if (rec.processes == 0) ++out.stats.skipped_points;
  }
}

}  // namespace

std::string_view to_string(PlacementStrategy s) noexcept {
  switch (s) {
    case PlacementStrategy::FillFirst: return "fill-first";
    case PlacementStrategy::RoundRobin: return "round-robin";
    case PlacementStrategy::Greedy: return "greedy";
  }
  return "?";
}

SweepConfig SweepConfig::canonical() {
  SweepConfig c;
  c.grid.axis(std::string(axes::kCores), {2, 4, 8, 16})
      .axis(std::string(axes::kThreadsPerCore), {1, 2, 4})
      .axis(std::string(axes::kEllE), {12, 40})
      .axis(std::string(axes::kLE), {24, 96})
      .axis(std::string(axes::kGShE), {2, 8})
      .axis(std::string(axes::kKappa), {0, 8})
      .axis(std::string(axes::kPlacement), {0, 1, 2});
  c.base = presets::niagara();
  // A communicating job whose distribution genuinely trades time against
  // power: real local work plus both substrates' traffic. These are *total*
  // counts, strong-scaled over the candidate process counts.
  c.profile.c_fp = 2000;
  c.profile.c_int = 4000;
  c.profile.d_r = 1024;
  c.profile.d_w = 256;
  c.profile.m_s = 128;
  c.profile.m_r = 128;
  c.profile.units = 4;
  c.processes = 64;
  c.objective = Objective::EDP;
  c.workload = "uniform-comm";
  return c;
}

SweepConfig SweepConfig::tiny() {
  SweepConfig c = canonical();
  c.grid = ParamGrid{};
  c.grid.axis(std::string(axes::kCores), {2, 4})
      .axis(std::string(axes::kThreadsPerCore), {1, 2})
      .axis(std::string(axes::kKappa), {0, 4})
      .axis(std::string(axes::kPlacement), {0, 1});
  c.workload = "uniform-comm-tiny";
  return c;
}

SweepConfig SweepConfig::large() {
  SweepConfig c = canonical();
  c.grid = ParamGrid{};
  // 4 × 3 × 16 × 16 × 8 × 8 × 3 × 2 = 1,179,648 points. The refined machine
  // axes stay within the base preset's validity region (inter-processor
  // ℓ/L/g never drop below the intra-processor values).
  c.grid.axis(std::string(axes::kCores), {2, 4, 8, 16})
      .axis(std::string(axes::kThreadsPerCore), {1, 2, 4})
      .axis(std::string(axes::kEllE), linspace(8, 40, 16))
      .axis(std::string(axes::kLE), linspace(16, 96, 16))
      .axis(std::string(axes::kGShE), linspace(1, 8, 8))
      .axis(std::string(axes::kKappa), linspace(0, 14, 8))
      .axis(std::string(axes::kPlacement), {0, 1, 2})
      .axis(std::string(axes::kProcesses), {16, 64});
  c.workload = "uniform-comm-large";
  // Over a million unique tuples: bound the cache so memoization does not
  // grow with the grid (evictions change recompute rates, never results).
  c.cache_entries_per_shard = 4096;
  return c;
}

SweepResult run_sweep_serial(const SweepConfig& cfg) {
  return run_sweep_serial(cfg, SweepOptions{});
}

SweepResult run_sweep_serial(const SweepConfig& cfg,
                             const SweepOptions& options) {
  obs::ScopedSpan span = obs::ScopedSpan::if_enabled("sweep.run", "sweep");
  span.arg("points", static_cast<double>(cfg.grid.size()));
  SweepResult out = make_result_shell(cfg);
  CostCache cache(16, cfg.cache_entries_per_shard);
  if (options.resume != nullptr)
    seed_from_resume(out, cache, *options.resume);
  BatchEvaluator evaluator(cfg, cache, options);
  std::uint64_t journaled = 0;
  try {
    journaled = evaluator.run_range(0, out.records.size(), out.records,
                                    /*fail_fast=*/true, nullptr, nullptr);
  } catch (...) {
    // A failed sweep must not lose the points that did complete: make the
    // journal tail durable before the error reaches the caller.
    if (options.journal != nullptr) options.journal->sync();
    throw;
  }
  out.stats.cache_hits = cache.hits();
  out.stats.cache_misses = cache.misses();
  out.stats.cache_evictions = cache.evictions();
  finish_run(out, options, journaled);
  return out;
}

SweepResult run_sweep(const SweepConfig& cfg, Pool& pool) {
  return run_sweep(cfg, pool, SweepOptions{});
}

SweepResult run_sweep(const SweepConfig& cfg, Pool& pool,
                      const SweepOptions& options) {
  obs::ScopedSpan span = obs::ScopedSpan::if_enabled("sweep.run", "sweep");
  span.arg("points", static_cast<double>(cfg.grid.size()));
  span.arg("threads", static_cast<double>(pool.threads()));
  SweepResult out = make_result_shell(cfg);
  CostCache cache(static_cast<std::size_t>(pool.threads()) * 8,
                  cfg.cache_entries_per_shard);
  if (options.resume != nullptr)
    seed_from_resume(out, cache, *options.resume);
  const std::uint64_t steals_before = pool.steals();
  BatchEvaluator evaluator(cfg, cache, options);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<std::uint64_t> journaled{0};
  // Records are written by grid index into a pre-sized vector, so completion
  // order (which is scheduling-dependent) never shows in the output. On a
  // point failure every other point still runs (and reaches the journal)
  // before the first error is rethrown — that drain-then-fail order is what
  // makes kill-and-resume deterministic.
  try {
    pool.parallel_for_ranges(
        out.records.size(),
        [&](std::size_t begin, std::size_t end) {
          journaled.fetch_add(
              evaluator.run_range(begin, end, out.records,
                                  /*fail_fast=*/false, &error_mutex,
                                  &first_error),
              std::memory_order_relaxed);
        },
        options.cancel);
  } catch (...) {
    if (options.journal != nullptr) options.journal->sync();
    throw;
  }
  {
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(error_mutex);
      err = first_error;
    }
    if (err) {
      if (options.journal != nullptr) options.journal->sync();
      std::rethrow_exception(err);
    }
  }
  out.stats.cache_hits = cache.hits();
  out.stats.cache_misses = cache.misses();
  out.stats.cache_evictions = cache.evictions();
  out.stats.pool_steals = pool.steals() - steals_before;
  finish_run(out, options, journaled.load(std::memory_order_relaxed));
  return out;
}

void write_json(const SweepResult& result, std::ostream& os) {
  report::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "stamp-sweep/v1");
  w.kv("workload", result.workload);
  w.kv("objective", to_string(result.objective));
  w.key("axes").begin_array();
  for (const std::string& name : result.axis_names) w.value(name);
  w.end_array();
  w.key("points").begin_array();
  for (const SweepRecord& rec : result.records) {
    w.begin_object();
    w.key("params").begin_object();
    for (std::size_t a = 0; a < result.axis_names.size(); ++a)
      w.kv(result.axis_names[a], rec.params[a]);
    w.end_object();
    w.kv("processes", rec.processes);
    w.kv("feasible", rec.feasible);
    w.key("metrics").begin_object();
    w.kv("D", rec.metrics.D);
    w.kv("PDP", rec.metrics.PDP);
    w.kv("EDP", rec.metrics.EDP);
    w.kv("ED2P", rec.metrics.ED2P);
    w.end_object();
    w.key("models").begin_object();
    for (int k = 0; k < models::kModelKindCount; ++k)
      w.kv(models::to_string(static_cast<models::ModelKind>(k)),
           rec.classical[static_cast<std::size_t>(k)]);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  os.flush();
  if (!os.good())
    throw std::runtime_error(
        "sweep: writing stamp-sweep/v1 artifact failed (output stream error)");
}

std::string to_json(const SweepResult& result) {
  std::ostringstream ss;
  write_json(result, ss);
  return ss.str();
}

}  // namespace stamp::sweep
