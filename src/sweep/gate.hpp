#pragma once
/// \file gate.hpp
/// \brief The regression gate: compare a fresh sweep artifact against a
///        checked-in baseline with per-metric relative tolerances.
///
/// CI runs `tools/stamp_gate sweeps/baseline.json <fresh>` on every PR; a
/// non-zero exit means a cost-model constant, a placement strategy, or the
/// serialization drifted. The comparison is structural *and* numeric:
/// points are keyed by their full parameter tuple, every metric and every
/// classical-model prediction is checked, and NaN (serialized as JSON null)
/// is always a failure — a silent NaN is the worst kind of drift.

#include "report/json_parse.hpp"

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::sweep {

/// Relative tolerance per metric. A drift passes when
/// |fresh - base| <= tol * max(|base|, |fresh|) — exactly-at-tolerance is a
/// pass. The model defaults are tight because the model is deterministic
/// arithmetic; loosen them only for artifacts produced from measured runs.
struct GateTolerances {
  double D = 0.02;
  double PDP = 0.02;
  double EDP = 0.05;
  double ED2P = 0.05;
  double models = 0.02;  ///< applies to every classical-model entry

  /// Tolerance for a metric name ("D", "PDP", "EDP", "ED2P"; anything else
  /// gets `models`).
  [[nodiscard]] double for_metric(std::string_view name) const noexcept;
};

/// One reason the gate failed.
struct GateIssue {
  enum class Kind {
    MissingInBaseline,  ///< fresh has a point the baseline lacks
    MissingInFresh,     ///< baseline has a point the fresh sweep lacks
    MissingMetric,      ///< a point lacks a metric the other side has
    NotANumber,         ///< a metric is NaN/null on either side
    FeasibilityFlip,    ///< feasible flag differs
    Drift,              ///< relative difference exceeds tolerance
    SchemaMismatch,     ///< schema/axes/workload differ
  };

  Kind kind = Kind::Drift;
  std::string point;   ///< canonical "axis=value,..." key ("" for schema)
  std::string metric;  ///< metric or model name ("" when structural)
  double baseline = 0;
  double fresh = 0;
  double relative = 0;  ///< |fresh-base| / max(|base|, |fresh|)

  [[nodiscard]] std::string describe() const;
};

struct GateReport {
  bool ok = true;
  std::size_t points_compared = 0;
  std::vector<GateIssue> issues;
};

/// Compare two parsed `stamp-sweep/v1` documents.
/// Throws report::JsonParseError / std::runtime_error on malformed documents.
[[nodiscard]] GateReport compare_sweeps(const report::JsonValue& baseline,
                                        const report::JsonValue& fresh,
                                        const GateTolerances& tol = {});

/// Parse both documents from text and compare.
[[nodiscard]] GateReport compare_sweeps_text(std::string_view baseline,
                                             std::string_view fresh,
                                             const GateTolerances& tol = {});

/// Human-readable report (one line per issue plus a verdict).
void print_report(const GateReport& report, std::ostream& os);

}  // namespace stamp::sweep
