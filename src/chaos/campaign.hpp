#pragma once
/// \file campaign.hpp
/// \brief `chaos::Campaign` — deterministic enumeration of a scenario's
///        fault space, trial-by-trial invariant checking, and failing-
///        schedule collection.
///
/// A campaign first runs the scenario once under an empty replay schedule
/// ("observe" mode): nothing fires, but the injector counts every decision
/// stream — the census of the reachable fault space. It then enumerates
/// single-injection schedules (per selected site, per observed stream, per
/// decision index up to `budget`) and, from the singles that actually fired,
/// guided pair-wise combinations — each trial replayed verbatim through a
/// private `fault::Injector` on its own thread (`InjectorScope`), watched by
/// a `RetryPolicy`-clock watchdog, and judged by artifact byte-identity
/// against the uninjected reference.
///
/// Trials are parallelized over a `sweep::Pool`; results are keyed by trial
/// index and the report contains no wall-clock data, so the
/// `stamp-campaign/v1` artifact is byte-identical at any `--jobs`.

#include "chaos/scenario.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "sweep/pool.hpp"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace stamp::chaos {

enum class TrialOutcome : std::uint8_t {
  Pass,   ///< artifact matched the uninjected reference
  Fail,   ///< artifact diverged — an invariant violation
  Error,  ///< the scenario threw (also an invariant violation)
  Hang,   ///< the watchdog expired before the trial finished
};

[[nodiscard]] const char* outcome_name(TrialOutcome outcome) noexcept;

/// Everything one replayed trial produced.
struct TrialRun {
  TrialOutcome outcome = TrialOutcome::Pass;
  std::string artifact;  ///< scenario artifact (empty on error/hang)
  std::string error;     ///< what() of an escaped exception / watchdog note
  fault::Schedule fired;                   ///< injections that actually fired
  std::vector<fault::StreamStats> streams;  ///< decision-stream census
};

/// Run `scenario` once under `schedule` (verbatim replay) on a dedicated
/// thread with a private injector. `reference` is the expected artifact
/// (nullptr skips the comparison — used for the reference run itself).
/// `watchdog_ms <= 0` disables the watchdog. Never throws for scenario
/// failures; those come back as the outcome.
[[nodiscard]] TrialRun run_trial(
    const std::shared_ptr<const Scenario>& scenario,
    const fault::Schedule& schedule, int watchdog_ms,
    const std::string* reference);

struct CampaignOptions {
  /// Restrict enumeration to these sites (empty = every site the scenario
  /// declares). Sites the scenario does not declare sweep with magnitude 0.
  std::vector<fault::FaultSite> sites;
  std::uint64_t budget = 16;       ///< decision indices swept per stream
  std::uint64_t max_trials = 2048; ///< cap on single-injection trials
  std::uint64_t pair_budget = 64;  ///< cap on pair-wise trials
  int watchdog_ms = 20000;         ///< per-trial hang budget (<= 0: none)
  bool shrink = false;             ///< ddmin failing schedules
  int shrink_failures = 4;         ///< shrink at most this many failures
  std::uint64_t shrink_trial_cap = 256;  ///< ddmin trial budget per failure
};

struct TrialResult {
  fault::Schedule schedule;  ///< what the trial was asked to replay
  fault::Schedule fired;     ///< what actually fired
  TrialOutcome outcome = TrialOutcome::Pass;
  std::string artifact;  ///< only kept for non-pass trials
  std::string error;
};

/// A failing trial's schedule after delta-debugging.
struct ShrunkFailure {
  std::size_t trial = 0;  ///< index into CampaignResult::trials
  fault::Schedule minimal;
  std::uint64_t trials_used = 0;  ///< ddmin probe trials spent
  bool verified = false;  ///< the minimal schedule re-ran and still failed
};

struct CampaignResult {
  std::string scenario;
  std::string reference;  ///< the uninjected invariant artifact
  std::vector<fault::FaultSite> sites;  ///< sites actually enumerated
  std::uint64_t budget = 0;
  std::uint64_t singles = 0;  ///< single-injection trials run
  std::uint64_t pairs = 0;    ///< pair-wise trials run
  std::uint64_t dropped = 0;  ///< enumerated beyond max_trials/pair_budget
  std::vector<TrialResult> trials;       ///< singles then pairs, stable order
  std::vector<std::size_t> failures;     ///< indices of non-pass trials
  std::vector<ShrunkFailure> minimal;    ///< shrunk failures (when enabled)
};

class Campaign {
 public:
  Campaign(std::shared_ptr<const Scenario> scenario, CampaignOptions options);

  /// Enumerate and run the whole campaign, parallelizing trials over `pool`.
  /// Throws std::runtime_error when the uninjected reference run itself
  /// fails (the scenario is broken — no trial verdict is meaningful).
  [[nodiscard]] CampaignResult run(sweep::Pool& pool) const;

 private:
  std::shared_ptr<const Scenario> scenario_;
  CampaignOptions options_;
};

/// Serialize as the `stamp-campaign/v1` JSON document (newline-terminated).
/// Pure function of the result — no timing data, byte-identical at any
/// worker count.
void write_campaign_json(std::ostream& os, const CampaignResult& result);

}  // namespace stamp::chaos
