#include "chaos/shrink.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace stamp::chaos {

namespace {

using Entries = std::vector<fault::ScheduleEntry>;

[[nodiscard]] fault::Schedule to_schedule(const Entries& entries) {
  fault::Schedule schedule;
  schedule.entries = entries;
  schedule.canonicalize();
  return schedule;
}

/// The i-th of n contiguous chunks of `entries` (near-equal sizes).
[[nodiscard]] Entries chunk_of(const Entries& entries, std::size_t i,
                               std::size_t n) {
  const std::size_t size = entries.size();
  const std::size_t begin = i * size / n;
  const std::size_t end = (i + 1) * size / n;
  return Entries(entries.begin() + static_cast<std::ptrdiff_t>(begin),
                 entries.begin() + static_cast<std::ptrdiff_t>(end));
}

/// `entries` minus its i-th of n chunks.
[[nodiscard]] Entries complement_of(const Entries& entries, std::size_t i,
                                    std::size_t n) {
  const std::size_t size = entries.size();
  const std::size_t begin = i * size / n;
  const std::size_t end = (i + 1) * size / n;
  Entries out;
  out.reserve(size - (end - begin));
  for (std::size_t k = 0; k < size; ++k)
    if (k < begin || k >= end) out.push_back(entries[k]);
  return out;
}

}  // namespace

ShrinkResult shrink_schedule(const std::shared_ptr<const Scenario>& scenario,
                             const std::string& reference,
                             const fault::Schedule& failing, int watchdog_ms,
                             std::uint64_t max_trials) {
  ShrinkResult result;
  Entries entries = failing.entries;
  std::sort(entries.begin(), entries.end(), fault::schedule_entry_less);

  // A probe: does the candidate sub-schedule still violate the invariant?
  // Out of budget => answer "no" (conservative: never shrinks to a passing
  // schedule, only stops shrinking early).
  const auto still_fails = [&](const Entries& candidate) -> bool {
    if (result.trials_used >= max_trials) return false;
    ++result.trials_used;
    const TrialRun run = run_trial(scenario, to_schedule(candidate),
                                   watchdog_ms, &reference);
    return run.outcome != TrialOutcome::Pass;
  };

  // Classic ddmin: try chunks (a failing chunk replaces the whole set),
  // then complements (a failing complement drops one chunk), then double
  // the granularity; at granularity == size the complements are
  // single-entry removals, so the fixpoint is 1-minimal.
  std::size_t granularity = 2;
  while (entries.size() >= 2 && result.trials_used < max_trials) {
    bool reduced = false;
    for (std::size_t i = 0; i < granularity && !reduced; ++i) {
      const Entries candidate = chunk_of(entries, i, granularity);
      if (candidate.empty() || candidate.size() == entries.size()) continue;
      if (still_fails(candidate)) {
        entries = candidate;
        granularity = 2;
        reduced = true;
      }
    }
    if (!reduced) {
      for (std::size_t i = 0; i < granularity && !reduced; ++i) {
        const Entries candidate = complement_of(entries, i, granularity);
        if (candidate.empty() || candidate.size() == entries.size()) continue;
        if (still_fails(candidate)) {
          entries = candidate;
          granularity = std::max<std::size_t>(2, granularity - 1);
          reduced = true;
        }
      }
    }
    if (!reduced) {
      if (granularity >= entries.size()) break;  // 1-minimal
      granularity = std::min(granularity * 2, entries.size());
    }
  }

  result.minimal = to_schedule(entries);
  // Final verification: the minimal schedule must itself reproduce the
  // failure (not just have been reached through failing intermediates).
  ++result.trials_used;
  const TrialRun verify =
      run_trial(scenario, result.minimal, watchdog_ms, &reference);
  result.verified = verify.outcome != TrialOutcome::Pass;
  return result;
}

}  // namespace stamp::chaos
