#pragma once
/// \file shrink.hpp
/// \brief Delta-debugging (ddmin) over a failing schedule's injection list:
///        drop halves, then ever-smaller chunks, down to single decisions,
///        until a minimal failing schedule remains.
///
/// The shrinker re-runs the scenario under candidate sub-schedules (verbatim
/// replay) and keeps any candidate that still violates the invariant. The
/// result is 1-minimal with respect to the final granularity: removing any
/// single remaining injection makes the failure disappear (unless the trial
/// budget ran out first, in which case the best-so-far schedule is returned
/// unverified).

#include "chaos/campaign.hpp"
#include "chaos/scenario.hpp"
#include "fault/schedule.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace stamp::chaos {

struct ShrinkResult {
  fault::Schedule minimal;        ///< smallest failing schedule found
  std::uint64_t trials_used = 0;  ///< probe trials spent (including verify)
  bool verified = false;          ///< `minimal` re-ran and still failed
};

/// ddmin over `failing`'s entries. `reference` is the invariant artifact a
/// passing trial must reproduce; `watchdog_ms` bounds each probe trial
/// (hangs count as failures — they reproduce a violation); `max_trials`
/// bounds the total probes.
[[nodiscard]] ShrinkResult shrink_schedule(
    const std::shared_ptr<const Scenario>& scenario,
    const std::string& reference, const fault::Schedule& failing,
    int watchdog_ms, std::uint64_t max_trials);

}  // namespace stamp::chaos
