#include "chaos/campaign.hpp"

#include "chaos/shrink.hpp"
#include "fault/retry.hpp"
#include "report/json.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

namespace stamp::chaos {

const char* outcome_name(TrialOutcome outcome) noexcept {
  switch (outcome) {
    case TrialOutcome::Pass: return "pass";
    case TrialOutcome::Fail: return "fail";
    case TrialOutcome::Error: return "error";
    case TrialOutcome::Hang: return "hang";
  }
  return "unknown";
}

TrialRun run_trial(const std::shared_ptr<const Scenario>& scenario,
                   const fault::Schedule& schedule, int watchdog_ms,
                   const std::string* reference) {
  // The injector and completion state are shared_ptrs: a hung trial's thread
  // is detached, and whatever it still touches must outlive this frame.
  auto injector = std::make_shared<fault::Injector>();
  injector->arm_replay(schedule);

  struct Completion {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool errored = false;
    std::string artifact;
    std::string error;
  };
  auto completion = std::make_shared<Completion>();

  std::thread worker([scenario, injector, completion] {
    // The override makes every hook site this thread (and any executor
    // thread it spawns) reaches draw from the trial's private injector.
    const fault::InjectorScope scope(*injector);
    std::string artifact;
    std::string error;
    bool errored = false;
    try {
      artifact = scenario->run();
    } catch (const std::exception& e) {
      errored = true;
      error = e.what();
    } catch (...) {
      errored = true;
      error = "unknown exception";
    }
    {
      const std::scoped_lock lock(completion->mutex);
      completion->done = true;
      completion->errored = errored;
      completion->artifact = std::move(artifact);
      completion->error = std::move(error);
    }
    completion->cv.notify_all();
  });

  bool finished;
  {
    std::unique_lock lock(completion->mutex);
    if (watchdog_ms > 0) {
      // The watchdog clock is the fault layer's own deadline machinery: a
      // RetryState with a deadline-only policy, polled between cv waits.
      fault::RetryPolicy policy;
      policy.deadline = std::chrono::milliseconds(watchdog_ms);
      const fault::RetryState clock(policy);
      while (!completion->done && !clock.deadline_passed())
        completion->cv.wait_for(lock, std::chrono::milliseconds(20));
      finished = completion->done;
    } else {
      completion->cv.wait(lock, [&] { return completion->done; });
      finished = true;
    }
  }

  TrialRun out;
  if (!finished) {
    // The trial is wedged; abandon its thread (the shared_ptr captures keep
    // its state alive) and report the hang.
    worker.detach();
    out.outcome = TrialOutcome::Hang;
    out.error = "watchdog: trial exceeded " + std::to_string(watchdog_ms) +
                "ms";
    out.fired = injector->recorded();
    return out;
  }
  worker.join();

  out.fired = injector->recorded();
  out.streams = injector->observed_streams();
  if (completion->errored) {
    out.outcome = TrialOutcome::Error;
    out.error = completion->error;
    return out;
  }
  out.artifact = completion->artifact;
  out.outcome = (reference == nullptr || out.artifact == *reference)
                    ? TrialOutcome::Pass
                    : TrialOutcome::Fail;
  return out;
}

Campaign::Campaign(std::shared_ptr<const Scenario> scenario,
                   CampaignOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  if (scenario_ == nullptr)
    throw std::invalid_argument("Campaign: null scenario");
}

namespace {

/// The sites a campaign enumerates, in a deterministic order: the
/// scenario's declaration order filtered by the request, then requested
/// sites the scenario does not declare (magnitude 0), in request order.
[[nodiscard]] std::vector<SiteSweep> select_sites(
    const Scenario& scenario, const std::vector<fault::FaultSite>& requested) {
  const std::vector<SiteSweep> declared = scenario.sites();
  if (requested.empty()) return declared;
  std::vector<SiteSweep> selected;
  for (const SiteSweep& sweep : declared)
    if (std::find(requested.begin(), requested.end(), sweep.site) !=
        requested.end())
      selected.push_back(sweep);
  for (const fault::FaultSite site : requested) {
    const auto known = [&](const SiteSweep& s) { return s.site == site; };
    if (std::find_if(selected.begin(), selected.end(), known) ==
        selected.end())
      selected.push_back(SiteSweep{site, 0.0});
  }
  return selected;
}

}  // namespace

CampaignResult Campaign::run(sweep::Pool& pool) const {
  CampaignResult result;
  result.scenario = scenario_->name();
  result.budget = options_.budget;

  // Reference run: empty replay = observe mode. Nothing fires, every
  // decision stream is counted — the census enumeration walks.
  const TrialRun reference =
      run_trial(scenario_, fault::Schedule{}, options_.watchdog_ms, nullptr);
  if (reference.outcome != TrialOutcome::Pass)
    throw std::runtime_error(std::string("campaign: reference run of '") +
                             scenario_->name() + "' failed: " +
                             (reference.error.empty() ? "hang"
                                                      : reference.error));
  result.reference = reference.artifact;

  const std::vector<SiteSweep> sweeps =
      select_sites(*scenario_, options_.sites);
  for (const SiteSweep& sweep : sweeps) result.sites.push_back(sweep.site);

  // Phase 1: single-injection schedules — site (selection order), then
  // stream key ascending, then decision index ascending, up to the budget.
  std::vector<fault::Schedule> planned;
  for (const SiteSweep& sweep : sweeps) {
    for (const fault::StreamStats& stream : reference.streams) {
      if (stream.site != sweep.site) continue;
      const std::uint64_t limit = std::min(stream.decisions, options_.budget);
      for (std::uint64_t d = 0; d < limit; ++d) {
        if (planned.size() >= options_.max_trials) {
          ++result.dropped;
          continue;
        }
        fault::Schedule schedule;
        schedule.entries.push_back(
            fault::ScheduleEntry{sweep.site, stream.key, d, sweep.magnitude});
        planned.push_back(std::move(schedule));
      }
    }
  }
  result.singles = planned.size();

  const auto run_batch = [&](std::size_t offset) {
    const std::size_t n = planned.size() - offset;
    pool.parallel_for(n, [&](std::size_t i) {
      const std::size_t t = offset + i;
      const TrialRun run = run_trial(scenario_, planned[t],
                                     options_.watchdog_ms, &result.reference);
      TrialResult& trial = result.trials[t];
      trial.schedule = planned[t];
      trial.fired = run.fired;
      trial.outcome = run.outcome;
      trial.error = run.error;
      if (run.outcome != TrialOutcome::Pass) trial.artifact = run.artifact;
    });
  };

  result.trials.resize(planned.size());
  run_batch(0);

  // Phase 2: guided pairs — combine the injections that provably fire
  // (each single's recorded `fired` entries), i < j order, deduplicated on
  // the canonical combined schedule, capped by pair_budget.
  const std::size_t single_count = planned.size();
  std::set<std::string> seen_pairs;
  for (std::size_t i = 0; i < single_count; ++i) {
    if (result.trials[i].fired.empty()) continue;
    for (std::size_t j = i + 1; j < single_count; ++j) {
      if (result.trials[j].fired.empty()) continue;
      fault::Schedule combined =
          merge_schedules(result.trials[i].fired, result.trials[j].fired);
      if (combined.size() < 2) continue;  // same injection twice
      if (planned.size() - single_count >= options_.pair_budget) {
        ++result.dropped;
        continue;
      }
      if (!seen_pairs.insert(combined.to_json()).second) continue;
      planned.push_back(std::move(combined));
    }
  }
  result.pairs = planned.size() - single_count;
  result.trials.resize(planned.size());
  run_batch(single_count);

  for (std::size_t t = 0; t < result.trials.size(); ++t)
    if (result.trials[t].outcome != TrialOutcome::Pass)
      result.failures.push_back(t);

  // Phase 3: shrink the first few failures to minimal replayable repros.
  if (options_.shrink) {
    const std::size_t limit =
        std::min<std::size_t>(result.failures.size(),
                              static_cast<std::size_t>(std::max(
                                  options_.shrink_failures, 0)));
    for (std::size_t f = 0; f < limit; ++f) {
      const std::size_t t = result.failures[f];
      // Shrink what actually fired when anything did (fired ⊆ planned and
      // is the true cause); fall back to the planned schedule otherwise.
      const fault::Schedule& failing = result.trials[t].fired.empty()
                                           ? result.trials[t].schedule
                                           : result.trials[t].fired;
      const ShrinkResult shrunk =
          shrink_schedule(scenario_, result.reference, failing,
                          options_.watchdog_ms, options_.shrink_trial_cap);
      result.minimal.push_back(
          ShrunkFailure{t, shrunk.minimal, shrunk.trials_used,
                        shrunk.verified});
    }
  }
  return result;
}

namespace {

void write_entries(report::JsonWriter& json, const fault::Schedule& schedule) {
  json.begin_array();
  for (const fault::ScheduleEntry& e : schedule.entries) {
    json.begin_object();
    json.kv("site", fault::site_name(e.site));
    json.kv("key", static_cast<long long>(e.key));
    json.kv("decision", static_cast<long long>(e.decision));
    json.kv("magnitude", e.magnitude);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

void write_campaign_json(std::ostream& os, const CampaignResult& result) {
  report::JsonWriter json(os);
  json.begin_object();
  json.kv("schema", "stamp-campaign/v1");
  json.kv("scenario", result.scenario);
  json.kv("reference", result.reference);
  json.key("sites").begin_array();
  for (const fault::FaultSite site : result.sites)
    json.value(fault::site_name(site));
  json.end_array();
  json.kv("budget", static_cast<long long>(result.budget));
  json.kv("singles", static_cast<long long>(result.singles));
  json.kv("pairs", static_cast<long long>(result.pairs));
  json.kv("dropped", static_cast<long long>(result.dropped));
  json.kv("trials", static_cast<long long>(result.trials.size()));
  json.kv("violations", static_cast<long long>(result.failures.size()));
  json.key("results").begin_array();
  for (std::size_t t = 0; t < result.trials.size(); ++t) {
    const TrialResult& trial = result.trials[t];
    json.begin_object();
    json.kv("trial", static_cast<long long>(t));
    json.kv("outcome", outcome_name(trial.outcome));
    json.key("schedule");
    write_entries(json, trial.schedule);
    json.key("fired");
    write_entries(json, trial.fired);
    if (trial.outcome != TrialOutcome::Pass) {
      json.kv("artifact", trial.artifact);
      json.kv("error", trial.error);
    }
    json.end_object();
  }
  json.end_array();
  json.key("failures").begin_array();
  for (const std::size_t t : result.failures)
    json.value(static_cast<long long>(t));
  json.end_array();
  json.key("minimal").begin_array();
  for (const ShrunkFailure& shrunk : result.minimal) {
    json.begin_object();
    json.kv("trial", static_cast<long long>(shrunk.trial));
    json.kv("entries", static_cast<long long>(shrunk.minimal.size()));
    json.kv("trials_used", static_cast<long long>(shrunk.trials_used));
    json.kv("verified", shrunk.verified ? 1 : 0);
    json.key("schedule");
    write_entries(json, shrunk.minimal);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
}

}  // namespace stamp::chaos
