#pragma once
/// \file scenario.hpp
/// \brief `chaos::Scenario` — a pluggable, invariant-bearing workload the
///        campaign engine explores fault schedules against.
///
/// A scenario is the campaign's unit of truth: `run()` executes one bounded
/// workload under the calling thread's current injector
/// (`fault::Injector::current()`) and returns a small *invariant artifact* —
/// a string that must be byte-identical to the uninjected reference run's
/// whenever the workload's resilience machinery (STM retries, mailbox
/// resends, supervised failover, simulator re-placement) masked the injected
/// faults. Anything schedule-dependent (timings, retry counts, abort counts)
/// is deliberately excluded from the artifact; a mismatch therefore means a
/// real invariant violation, not noise.
///
/// Scenarios must be thread-safe as objects (campaign trials run
/// concurrently, each on its own thread with its own injector override) and
/// deterministic modulo the armed schedule.

#include "fault/plan.hpp"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::chaos {

/// One fault site a scenario exposes to campaign enumeration, and the
/// magnitude an enumerated injection at that site carries.
struct SiteSweep {
  fault::FaultSite site = fault::FaultSite::StmAbort;
  double magnitude = 0;
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// The fault sites this scenario's workload reaches, with the magnitude an
  /// injection at each carries. Campaign enumeration sweeps these (filtered
  /// by `--sites`).
  [[nodiscard]] virtual std::vector<SiteSweep> sites() const = 0;

  /// Run the workload once under the calling thread's current injector and
  /// return the invariant artifact. May throw (an escaped exception is a
  /// trial failure in its own right); must terminate for every schedule that
  /// injects at most a handful of faults.
  [[nodiscard]] virtual std::string run() const = 0;
};

/// Registered scenario names, in registry order.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Construct a scenario by name; nullptr for unknown names.
[[nodiscard]] std::shared_ptr<const Scenario> make_scenario(
    std::string_view name);

}  // namespace stamp::chaos
