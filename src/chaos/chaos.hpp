#pragma once
/// \file chaos.hpp
/// \brief Umbrella header for the chaos campaign engine: pluggable
///        invariant-bearing scenarios, deterministic fault-space
///        enumeration with replayed trials, and failing-schedule shrinking.
///
/// The campaign engine sits on top of `src/fault/`'s record/replay
/// machinery: a trial is a scenario run under a verbatim-replayed
/// `fault::Schedule` on a private injector, judged by artifact byte-identity
/// against the uninjected reference. See `stamp_chaos campaign`.

#include "chaos/campaign.hpp"
#include "chaos/scenario.hpp"
#include "chaos/shrink.hpp"
