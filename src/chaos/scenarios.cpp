/// \file scenarios.cpp
/// \brief The built-in campaign scenarios: the classic `stamp_chaos`
///        workloads (STM storm, bounded retries, mailbox pipeline,
///        supervised failover, degraded simulation) re-expressed behind the
///        `chaos::Scenario` interface, hardened so their resilience
///        machinery *masks* injected faults — plus the test-only
///        `seeded_probe` scenario whose deliberate invariant violation the
///        chaos-campaign CI gate must find and shrink.
///
/// Every artifact contains only fault-masked semantic outcomes (final
/// values, op totals, delivery counts, completion flags) — never timings,
/// retry counts, or abort counts, which legitimately vary per schedule.

#include "chaos/scenario.hpp"

#include "api/evaluator.hpp"
#include "fault/injector.hpp"
#include "machine/trace.hpp"
#include "msg/mailbox.hpp"
#include "runtime/executor.hpp"
#include "stm/stm.hpp"
#include "stm/tarray.hpp"

#include <sstream>
#include <stdexcept>

namespace stamp::chaos {

namespace {

/// Disjoint-TVar increments across 4 processes with unbounded retries: any
/// injected abort is retried away, so the committed slot values are
/// schedule-independent.
class StmStormScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "stm_storm";
  }

  [[nodiscard]] std::vector<SiteSweep> sites() const override {
    return {{fault::FaultSite::StmAbort, 0.0}};
  }

  [[nodiscard]] std::string run() const override {
    constexpr int kProcesses = 4;
    constexpr int kTxnsPerProcess = 64;
    Evaluator eval;
    stm::StmRuntime rt;
    stm::TArray<int> slots(kProcesses, 0);
    static_cast<void>(eval.run(
        kProcesses, Distribution::IntraProc, [&](runtime::Context& ctx) {
          for (int i = 0; i < kTxnsPerProcess; ++i) {
            rt.atomically(ctx, [&](stm::Transaction& tx) {
              auto& var = slots.var(static_cast<std::size_t>(ctx.id()));
              tx.write(var, tx.read(var) + 1);
            });
          }
        }));
    std::ostringstream os;
    os << "slots=";
    for (int p = 0; p < kProcesses; ++p) {
      if (p > 0) os << ",";
      os << slots.var(static_cast<std::size_t>(p)).peek();
    }
    os << ";commits=" << rt.stats().commits.load();
    return os.str();
  }
};

/// A single process committing 4 transactions under a bounded retry policy
/// (3 retries per transaction): up to 3 aborts per transaction are masked,
/// so every low-order schedule must still commit the full value.
class StmRetryBudgetScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "stm_retry_budget";
  }

  [[nodiscard]] std::vector<SiteSweep> sites() const override {
    return {{fault::FaultSite::StmAbort, 0.0}};
  }

  [[nodiscard]] std::string run() const override {
    constexpr int kTxns = 4;
    Evaluator eval;
    stm::StmRuntime rt;
    rt.set_retry_policy(fault::RetryPolicy::bounded(3));
    stm::TVar<int> v(0);
    long long exhausted = 0;
    static_cast<void>(
        eval.run(1, Distribution::IntraProc, [&](runtime::Context& ctx) {
          for (int i = 0; i < kTxns; ++i) {
            try {
              rt.atomically(ctx, [&](stm::Transaction& tx) {
                tx.write(v, tx.read(v) + 1);
              });
            } catch (const fault::RetryExhausted&) {
              ++exhausted;
            }
          }
        }));
    std::ostringstream os;
    os << "value=" << v.peek() << ";exhausted=" << exhausted;
    return os.str();
  }
};

/// Four logical tasks each delivering 24 messages through a lossy mailbox
/// with a resend-until-acknowledged protocol (dedup by message id, bounded
/// rounds): drops are resent, duplicates deduplicated, delays waited out —
/// the delivered set is schedule-independent.
class MailboxPipelineScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "mailbox_pipeline";
  }

  [[nodiscard]] std::vector<SiteSweep> sites() const override {
    return {{fault::FaultSite::MsgDrop, 0.0},
            {fault::FaultSite::MsgDuplicate, 0.0},
            {fault::FaultSite::MsgDelay, /*nanoseconds=*/10000.0}};
  }

  [[nodiscard]] std::string run() const override {
    constexpr std::size_t kTasks = 4;
    constexpr int kMessages = 24;
    constexpr int kMaxRounds = 64;
    std::ostringstream os;
    os << "delivered=";
    for (std::size_t task = 0; task < kTasks; ++task) {
      const fault::ActorScope actor(100 + task);
      msg::Mailbox<int> box;
      std::vector<bool> received(kMessages, false);
      int missing = kMessages;
      for (int round = 0; round < kMaxRounds && missing > 0; ++round) {
        for (int m = 0; m < kMessages; ++m)
          if (!received[static_cast<std::size_t>(m)]) box.send(m);
        while (const auto got = box.try_receive()) {
          const auto id = static_cast<std::size_t>(*got);
          if (!received[id]) {
            received[id] = true;
            --missing;
          }
        }
      }
      if (task > 0) os << ",";
      os << (kMessages - missing);
    }
    return os.str();
  }
};

/// The supervised executor re-running a fixed op workload around injected
/// fail-stops and stalls (up to 4 failovers): the recorded op totals on the
/// surviving placement are schedule-independent.
class SupervisedFailoverScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "supervised_failover";
  }

  [[nodiscard]] std::vector<SiteSweep> sites() const override {
    return {{fault::FaultSite::ProcFailStop, 0.0},
            {fault::FaultSite::ProcStall, /*nanoseconds=*/10000.0}};
  }

  [[nodiscard]] std::string run() const override {
    constexpr int kProcesses = 4;
    Evaluator eval;
    const auto supervised = eval.run_supervised(
        kProcesses, Distribution::IntraProc,
        [](runtime::Context& ctx) {
          ctx.int_ops(100.0 * (ctx.id() + 1));
          ctx.fp_ops(10.0 * (ctx.id() + 1));
        },
        /*max_failovers=*/4);
    const auto totals = supervised.result.total_counters();
    std::ostringstream os;
    os << "int=" << static_cast<long long>(totals.c_int)
       << ";fp=" << static_cast<long long>(totals.c_fp);
    return os.str();
  }
};

/// Replaying fixed traces on the machine simulator, re-placing around
/// injected core failures (the simulated twin of supervised failover):
/// completion is schedule-independent even when cores die or ops spike.
class SimDegradedScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "sim_degraded";
  }

  [[nodiscard]] std::vector<SiteSweep> sites() const override {
    return {{fault::FaultSite::SimCoreFail, 0.0},
            {fault::FaultSite::SimLatencySpike, /*scale=*/4.0}};
  }

  [[nodiscard]] std::string run() const override {
    constexpr int kProcesses = 4;
    constexpr int kMaxReplacements = 8;
    Evaluator eval;
    const Topology topo = eval.machine().topology;
    std::vector<machine::ProcessTrace> traces(
        static_cast<std::size_t>(kProcesses));
    for (auto& trace : traces) {
      trace.push_back({machine::TraceOp::Kind::Compute, 100.0, false, 20.0});
      trace.push_back({machine::TraceOp::Kind::ShmRead, 50.0, true, 0.0});
      trace.push_back({machine::TraceOp::Kind::Compute, 50.0, false, 0.0});
      trace.push_back({machine::TraceOp::Kind::ShmWrite, 25.0, true, 0.0});
    }
    auto placement = runtime::PlacementMap::one_per_processor(topo, kProcesses);
    std::vector<int> excluded;
    bool completed = false;
    for (int attempt = 0; attempt <= kMaxReplacements && !completed;
         ++attempt) {
      try {
        static_cast<void>(eval.simulate(traces, placement));
        completed = true;
      } catch (const fault::CoreFailure& failure) {
        excluded.push_back(failure.core());
        placement = runtime::PlacementMap::fill_first_excluding(
            topo, kProcesses, excluded);
      }
    }
    std::ostringstream os;
    os << "completed=" << (completed ? 1 : 0) << ";processes=" << kProcesses;
    return os.str();
  }
};

/// Test-only scenario with a deliberately-seeded invariant violation: it
/// walks 8 decisions on the hook-less TestProbe site and tolerates exactly
/// one injection — two or more corrupt the artifact. Single-injection
/// sweeps pass, pair-wise trials fail, and the minimal failing schedule is
/// exactly 2 entries — the ground truth the chaos-campaign CI gate asserts
/// the finder and shrinker against.
class SeededProbeScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "seeded_probe";
  }

  [[nodiscard]] std::vector<SiteSweep> sites() const override {
    return {{fault::FaultSite::TestProbe, 0.0}};
  }

  [[nodiscard]] std::string run() const override {
    constexpr std::uint64_t kSteps = 8;
    auto& injector = fault::Injector::current();
    int hits = 0;
    for (std::uint64_t step = 0; step < kSteps; ++step)
      if (injector.decide(fault::FaultSite::TestProbe, step)) ++hits;
    return hits < 2 ? "state=ok" : "state=corrupted";
  }
};

}  // namespace

std::vector<std::string> scenario_names() {
  return {"stm_storm",          "stm_retry_budget", "mailbox_pipeline",
          "supervised_failover", "sim_degraded",    "seeded_probe"};
}

std::shared_ptr<const Scenario> make_scenario(std::string_view name) {
  if (name == "stm_storm") return std::make_shared<StmStormScenario>();
  if (name == "stm_retry_budget")
    return std::make_shared<StmRetryBudgetScenario>();
  if (name == "mailbox_pipeline")
    return std::make_shared<MailboxPipelineScenario>();
  if (name == "supervised_failover")
    return std::make_shared<SupervisedFailoverScenario>();
  if (name == "sim_degraded") return std::make_shared<SimDegradedScenario>();
  if (name == "seeded_probe") return std::make_shared<SeededProbeScenario>();
  return nullptr;
}

}  // namespace stamp::chaos
