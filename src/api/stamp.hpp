#pragma once
/// \file stamp.hpp
/// \brief Umbrella header: the whole STAMP stack behind one include.
///
///     #include "api/stamp.hpp"
///     stamp::Evaluator eval({.machine = stamp::presets::niagara()});
///
/// Pulls in the facade (`stamp::Evaluator`) plus every subsystem it fronts,
/// so one include gives the core model, the instrumented runtime, the machine
/// simulator, the sweep engine, the guided search, and the observability
/// layer.

#include "api/evaluator.hpp"
#include "api/search_types.hpp"
#include "core/core.hpp"
#include "machine/simulator.hpp"
#include "machine/trace.hpp"
#include "obs/obs.hpp"
#include "runtime/executor.hpp"
#include "search/search.hpp"
#include "sweep/sweep.hpp"
