#pragma once
/// \file evaluator.hpp
/// \brief `stamp::Evaluator` — the single public entry point to the STAMP
///        stack.
///
/// Callers used to thread five subsystem types by hand: a `MachineModel`
/// into `runtime::run_distributed`, its `RunResult` plus a `PlacementMap`
/// into the cost model, per-process powers into the envelope checker,
/// synthesized traces into `machine::replay`, and a `SweepConfig` plus a
/// `Pool` into the sweep engine. The Evaluator owns the machine and the
/// objective once and exposes each workflow as one call — and because every
/// evaluation funnels through it, the observability layer (`src/obs/`) hangs
/// off the same object: construct with `tracing`/`metrics` on (or flip them
/// later) and every simulator replay, executor run, pool loop, and cache
/// access records spans and metrics you can export as Chrome trace JSON.
///
/// The old free functions remain as thin delegating shims with
/// `STAMP_DEPRECATED` notes (see `core/compat.hpp`).

#include "api/search_types.hpp"
#include "core/compat.hpp"
#include "core/core.hpp"
#include "fault/fault.hpp"
#include "machine/simulator.hpp"
#include "machine/trace.hpp"
#include "obs/obs.hpp"
#include "runtime/executor.hpp"
#include "sweep/sweep.hpp"

#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace stamp {

/// Everything an Evaluator pins down at construction.
struct EvaluatorOptions {
  MachineModel machine = presets::niagara();
  Objective objective = Objective::EDP;
  /// Enable the process-wide span recorder / metrics registry on
  /// construction. Both default off; when off, the instrumented subsystems
  /// pay one relaxed atomic load per site and record nothing.
  bool tracing = false;
  bool metrics = false;
};

/// Full model evaluation of one execution (or one profile set) on the
/// Evaluator's machine.
struct Evaluation {
  std::vector<Cost> process_costs;  ///< per-process analytic cost
  Cost total;                       ///< parallel composition (max T, sum E)
  Metrics metrics;                  ///< D / PDP / EDP / ED²P of `total`
  double objective_value = 0;       ///< metric_value(total, objective)
  SystemCheck envelope;             ///< hierarchical power feasibility
  bool feasible = false;            ///< envelope.feasible
};

/// A run together with the placement that shaped its costs.
struct RunOutcome {
  runtime::RunResult run;
  runtime::PlacementMap placement;
};

class Evaluator {
 public:
  Evaluator() : Evaluator(EvaluatorOptions{}) {}
  explicit Evaluator(EvaluatorOptions options);

  [[nodiscard]] const MachineModel& machine() const noexcept {
    return options_.machine;
  }
  [[nodiscard]] Objective objective() const noexcept {
    return options_.objective;
  }

  // -- execute ---------------------------------------------------------------

  /// Run `body` as `processes` STAMP processes placed per `distribution` on
  /// the Evaluator's machine topology. Blocks until all processes complete.
  [[nodiscard]] RunOutcome run(int processes, Distribution distribution,
                               const runtime::ProcessBody& body) const;

  // -- evaluate --------------------------------------------------------------

  /// Price a finished run's recorded counters under `placement` with the
  /// machine's cost model, and check the power envelope.
  [[nodiscard]] Evaluation evaluate(const runtime::RunResult& run,
                                    const runtime::PlacementMap& placement) const;

  /// Convenience: run, then evaluate under the same placement.
  [[nodiscard]] std::pair<RunOutcome, Evaluation> run_and_evaluate(
      int processes, Distribution distribution,
      const runtime::ProcessBody& body) const;

  /// Like `run`, but supervised: an injected fail-stop retires the hosting
  /// processor and the whole program re-runs on the surviving placement
  /// (fill-first over the remaining processors, same process count).
  [[nodiscard]] runtime::SupervisedResult run_supervised(
      int processes, Distribution distribution,
      const runtime::ProcessBody& body, int max_failovers = 1) const;

  // -- fault injection -------------------------------------------------------

  /// Arm `plan` on the process-wide fault injector (shared by all Evaluators,
  /// like the obs recorders: the hook sites it drives are process-wide). With
  /// no plan armed every hook site costs one relaxed atomic load. Same seed
  /// => same fault schedule at any thread count.
  static void with_faults(const fault::FaultPlan& plan) {
    fault::Injector::global().arm(plan);
  }
  /// Stop injecting; counters stay readable until the next `with_faults`.
  static void clear_faults() noexcept { fault::Injector::global().disarm(); }
  [[nodiscard]] static bool faults_armed() noexcept {
    return fault::Injector::global().armed();
  }
  /// The process-wide injector (for reading injection counters).
  [[nodiscard]] static fault::Injector& injector() noexcept {
    return fault::Injector::global();
  }

  // -- decide ----------------------------------------------------------------

  /// Best placement of `profiles` on the machine under the Evaluator's
  /// objective: best of {fill-first, round-robin, greedy, exact-if-uniform}.
  [[nodiscard]] PlacementResult best_placement(
      std::span<const ProcessProfile> profiles) const;

  // -- simulate --------------------------------------------------------------

  /// Replay per-process traces on the explicit-resource machine simulator.
  [[nodiscard]] machine::SimResult simulate(
      const std::vector<machine::ProcessTrace>& traces,
      const runtime::PlacementMap& placement,
      const machine::SimConfig& config = {}) const;

  /// Synthesize traces from a finished run's recorders (preserving the
  /// S-unit/S-round structure) and replay them.
  [[nodiscard]] machine::SimResult simulate_run(
      const runtime::RunResult& run, const runtime::PlacementMap& placement,
      CommMode comm = CommMode::Synchronous,
      const machine::SimConfig& config = {}) const;

  // -- sweep -----------------------------------------------------------------

  /// Evaluate a parameter grid exhaustively. `options` carries everything
  /// that shapes the run: worker threads (`options.threads` > 1 uses a
  /// work-stealing pool and produces a byte-identical artifact to the serial
  /// run), a write-ahead journal of completed points, resume from a previous
  /// journal, cooperative cancellation, and a per-point deadline — see
  /// `sweep::SweepOptions`. Evaluation streams through the batch evaluator
  /// (sweep/batch.hpp): the grid is decoded lazily in structure-of-arrays
  /// chunks, so a 10⁶–10⁸-point config (e.g. `SweepConfig::large()`) costs
  /// memory only for its records. The config's own base machine and
  /// objective apply (a sweep explores many machines; the Evaluator's
  /// machine is not forced onto it). The pool is cached on the Evaluator and
  /// reused by later `sweep`/`optimize` calls of the same width, so a loop
  /// of sweeps spawns its worker threads once, not per call.
  [[nodiscard]] sweep::SweepResult sweep(
      const sweep::SweepConfig& config,
      const sweep::SweepOptions& options = {}) const;

  /// \deprecated `threads` moved into `SweepOptions::threads` — call
  /// `sweep(config, {.threads = threads})`.
  STAMP_DEPRECATED(
      "pass threads via SweepOptions::threads: sweep(config, options)")
  [[nodiscard]] sweep::SweepResult sweep(const sweep::SweepConfig& config,
                                         int threads) const;

  /// \deprecated `threads` moved into `SweepOptions::threads` — call
  /// `sweep(config, options)` with `options.threads` set.
  STAMP_DEPRECATED(
      "pass threads via SweepOptions::threads: sweep(config, options)")
  [[nodiscard]] sweep::SweepResult sweep(const sweep::SweepConfig& config,
                                         int threads,
                                         const sweep::SweepOptions& options) const;

  // -- search ----------------------------------------------------------------

  /// Find the grid's optimum without pricing every point. Dispatches on
  /// `request.method` (src/search/search.hpp): branch-and-bound returns the
  /// bit-identical winning record the exhaustive sweep's argmin would pick
  /// while expanding only the subtrees its admissible bounds cannot prune;
  /// annealing is a seeded heuristic; exhaustive is the oracle. Leaf pricing
  /// reuses the Evaluator's cached pool when `request.threads` > 1.
  [[nodiscard]] SearchResult optimize(const SearchRequest& request) const;

  // -- observability ---------------------------------------------------------

  /// Flip the process-wide recorders (shared by all Evaluators by design:
  /// the subsystems they observe are process-wide too).
  static void set_tracing(bool on) noexcept { obs::set_tracing_enabled(on); }
  [[nodiscard]] static bool tracing() noexcept { return obs::tracing_enabled(); }
  static void set_metrics(bool on) noexcept { obs::set_metrics_enabled(on); }
  [[nodiscard]] static bool metrics_on() noexcept {
    return obs::metrics_enabled();
  }

  /// Export everything recorded so far as Chrome trace_event JSON
  /// (chrome://tracing, Perfetto).
  static void write_trace(std::ostream& os);
  [[nodiscard]] static std::string trace_json();
  /// Drop recorded spans (thread registrations survive).
  static void clear_trace();

  /// The process-wide metrics registry and its flat JSON export.
  [[nodiscard]] static obs::MetricsRegistry& metrics_registry() noexcept {
    return obs::MetricsRegistry::global();
  }
  static void write_metrics(std::ostream& os);

 private:
  /// Returns the cached pool, rebuilding it when the width changed. The
  /// caller must hold `sweep_pool_mutex_` (and keep holding it for the
  /// duration of the parallel loop using the pool).
  [[nodiscard]] sweep::Pool* pool_for(int threads) const;

  EvaluatorOptions options_;
  /// Sweep-pool cache: rebuilt only when a `sweep` call asks for a different
  /// width. Mutable because pooling threads is a caching detail of the
  /// logically-const sweep; the mutex serializes concurrent sweep calls on
  /// one Evaluator (the pool itself allows only one loop at a time anyway).
  mutable std::mutex sweep_pool_mutex_;
  mutable std::unique_ptr<sweep::Pool> sweep_pool_;
};

}  // namespace stamp
