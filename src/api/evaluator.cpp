#include "api/evaluator.hpp"

#include "machine/trace.hpp"
#include "search/search.hpp"

#include <ostream>
#include <sstream>
#include <utility>

// The facade IS the replacement for the deprecated entry points it delegates
// to; calling them here must stay quiet under -DSTAMP_WARN_DEPRECATED=ON.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace stamp {

Evaluator::Evaluator(EvaluatorOptions options) : options_(std::move(options)) {
  options_.machine.validate();
  if (options_.tracing) obs::set_tracing_enabled(true);
  if (options_.metrics) obs::set_metrics_enabled(true);
}

RunOutcome Evaluator::run(int processes, Distribution distribution,
                          const runtime::ProcessBody& body) const {
  RunOutcome out;
  out.placement = runtime::PlacementMap::for_distribution(
      options_.machine.topology, processes, distribution);
  out.run = runtime::run_processes(out.placement, body);
  return out;
}

Evaluation Evaluator::evaluate(const runtime::RunResult& run,
                               const runtime::PlacementMap& placement) const {
  const MachineModel& m = options_.machine;
  Evaluation ev;
  ev.process_costs = run.process_costs(placement, m.params, m.energy);
  ev.total = run.total_cost(placement, m.params, m.energy);
  ev.metrics = metrics_from(ev.total);
  ev.objective_value = metric_value(ev.total, options_.objective);

  std::vector<double> powers;
  std::vector<int> processor_of;
  powers.reserve(ev.process_costs.size());
  processor_of.reserve(ev.process_costs.size());
  for (std::size_t i = 0; i < ev.process_costs.size(); ++i) {
    powers.push_back(ev.process_costs[i].power());
    processor_of.push_back(placement.processor_of(static_cast<int>(i)));
  }
  ev.envelope = check_system(powers, processor_of, m.topology, m.envelope);
  ev.feasible = ev.envelope.feasible;
  return ev;
}

std::pair<RunOutcome, Evaluation> Evaluator::run_and_evaluate(
    int processes, Distribution distribution,
    const runtime::ProcessBody& body) const {
  RunOutcome outcome = run(processes, distribution, body);
  Evaluation ev = evaluate(outcome.run, outcome.placement);
  return {std::move(outcome), std::move(ev)};
}

runtime::SupervisedResult Evaluator::run_supervised(
    int processes, Distribution distribution, const runtime::ProcessBody& body,
    int max_failovers) const {
  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(options_.machine.topology,
                                              processes, distribution);
  return runtime::run_supervised(placement, body, max_failovers);
}

PlacementResult Evaluator::best_placement(
    std::span<const ProcessProfile> profiles) const {
  return place_best(profiles, options_.machine, options_.objective);
}

machine::SimResult Evaluator::simulate(
    const std::vector<machine::ProcessTrace>& traces,
    const runtime::PlacementMap& placement,
    const machine::SimConfig& config) const {
  return machine::replay(traces, placement, options_.machine, config);
}

machine::SimResult Evaluator::simulate_run(const runtime::RunResult& run,
                                           const runtime::PlacementMap& placement,
                                           CommMode comm,
                                           const machine::SimConfig& config) const {
  std::vector<machine::ProcessTrace> traces;
  traces.reserve(run.recorders.size());
  for (const runtime::Recorder& r : run.recorders)
    traces.push_back(machine::trace_of_recorder(r, comm));
  return machine::replay(traces, placement, options_.machine, config);
}

sweep::SweepResult Evaluator::sweep(const sweep::SweepConfig& config,
                                    const sweep::SweepOptions& options) const {
  if (options.threads <= 1) return sweep::run_sweep_serial(config, options);
  // The lock covers the whole run: it both guards the pool cache and
  // serializes concurrent sweep/optimize calls on one Evaluator (the pool
  // supports only one parallel loop at a time anyway).
  std::lock_guard<std::mutex> lock(sweep_pool_mutex_);
  return sweep::run_sweep(config, *pool_for(options.threads), options);
}

sweep::SweepResult Evaluator::sweep(const sweep::SweepConfig& config,
                                    int threads) const {
  sweep::SweepOptions options;
  options.threads = threads;
  return sweep(config, options);
}

sweep::SweepResult Evaluator::sweep(const sweep::SweepConfig& config,
                                    int threads,
                                    const sweep::SweepOptions& options) const {
  sweep::SweepOptions merged = options;
  merged.threads = threads;
  return sweep(config, merged);
}

SearchResult Evaluator::optimize(const SearchRequest& request) const {
  if (request.threads <= 1 || request.method == SearchMethod::Anneal)
    return search::run_search(request, nullptr);
  std::lock_guard<std::mutex> lock(sweep_pool_mutex_);
  return search::run_search(request, pool_for(request.threads));
}

sweep::Pool* Evaluator::pool_for(int threads) const {
  // Caller holds sweep_pool_mutex_.
  if (!sweep_pool_ || sweep_pool_->threads() != threads)
    sweep_pool_ = std::make_unique<sweep::Pool>(threads);
  return sweep_pool_.get();
}

void Evaluator::write_trace(std::ostream& os) {
  obs::write_chrome_trace(obs::TraceRecorder::global().snapshot(), os);
}

std::string Evaluator::trace_json() {
  std::ostringstream ss;
  write_trace(ss);
  return ss.str();
}

void Evaluator::clear_trace() { obs::TraceRecorder::global().clear(); }

void Evaluator::write_metrics(std::ostream& os) {
  obs::MetricsRegistry::global().write_json(os);
}

}  // namespace stamp
