#pragma once
/// \file search_types.hpp
/// \brief The decide-layer request/result types of `Evaluator::optimize` —
///        one request object describing *what* to find and *how*, one result
///        object carrying the winner, the search statistics, and a
///        deterministic trace.
///
/// A `SearchRequest` wraps the same `sweep::SweepConfig` a sweep evaluates,
/// but instead of pricing every grid point it asks the search subsystem
/// (`src/search/`) for the argmin only: branch-and-bound over axis prefixes
/// with admissible lower bounds (exact — bit-identical winner to the
/// exhaustive sweep), simulated annealing + greedy local search (heuristic,
/// a pure function of `seed`), or the exhaustive scan itself (the oracle the
/// other two are verified against). Results serialize as the stable
/// `stamp-search/v1` artifact, byte-identical at any thread count.

#include "core/cancel.hpp"
#include "sweep/sweep.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stamp {

/// How `Evaluator::optimize` explores the grid.
enum class SearchMethod : int {
  /// Depth-first branch-and-bound over grid-axis prefixes. Exact: returns
  /// the bit-identical winning record of the exhaustive sweep, visiting (on
  /// discriminating objectives) a small fraction of the points.
  BranchAndBound = 0,
  /// Simulated annealing over single-axis steps with a greedy local-search
  /// polish. Heuristic: no optimality guarantee, but the whole run is a pure
  /// function of `seed` (counter-based PRNG, no shared generator state).
  Anneal = 1,
  /// Price every point and scan for the argmin — the oracle.
  Exhaustive = 2,
};

[[nodiscard]] std::string_view to_string(SearchMethod m) noexcept;

struct SearchRequest {
  /// The grid, base machine, total-workload profile, and objective to
  /// optimize — exactly what `Evaluator::sweep` would evaluate exhaustively.
  sweep::SweepConfig config;

  SearchMethod method = SearchMethod::BranchAndBound;

  /// Seed of the deterministic counter-based PRNG (src/fault/prng.hpp) that
  /// drives annealing moves and the branch-and-bound warm start. Two runs
  /// with the same request produce byte-identical artifacts.
  std::uint64_t seed = 1;

  /// Worker threads for exact leaf pricing (BranchAndBound) and the
  /// exhaustive scan; <= 1 runs serially. The search trajectory itself is
  /// always expanded serially, so the artifact does not depend on this.
  int threads = 1;

  /// BranchAndBound: seed the incumbent with a short annealing run before
  /// expanding, so deep subtrees prune from the first comparison.
  bool warm_start = true;

  /// Annealing chain length (also caps the warm-start chain at 512).
  std::uint64_t anneal_iterations = 4096;

  /// BranchAndBound: subtrees of at most this many points are priced
  /// exactly (batch evaluator) instead of expanded further.
  std::size_t leaf_block = 64;

  /// Record per-event search history into `SearchResult::trace`. The first
  /// `max_trace_events` events are kept; recording is deterministic, so a
  /// truncated trace is still byte-identical across runs and thread counts.
  bool record_trace = true;
  std::size_t max_trace_events = 100000;

  /// Cooperative cancellation, checked per node expansion / annealing step /
  /// leaf point. A cancelled search returns its best-so-far with
  /// `SearchResult::cancelled = true`.
  const core::CancelToken* cancel = nullptr;
};

/// One step of the search history. Field meaning by kind:
///  - `expand`: a node (axis prefix of `depth` values, grid-index range
///    [begin, end)) was expanded; `bound` is its admissible lower bound.
///  - `prune`: the node was discarded — every point in it provably loses to
///    the incumbent (`incumbent` carries the incumbent's value).
///  - `leaf`: the range [begin, end) was priced exactly.
///  - `incumbent`: the point at grid index `begin` became the best-so-far
///    with objective value `incumbent`.
struct SearchTraceEvent {
  enum class Kind : int { Expand = 0, Prune = 1, Leaf = 2, Incumbent = 3 };

  Kind kind = Kind::Expand;
  int depth = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  double bound = 0;
  double incumbent = 0;

  friend bool operator==(const SearchTraceEvent&,
                         const SearchTraceEvent&) = default;
};

[[nodiscard]] std::string_view to_string(SearchTraceEvent::Kind k) noexcept;

/// Counters of the work a search performed. Everything here is a
/// deterministic function of the request (the expansion is serial); cache
/// statistics, which depend on thread interleaving, are deliberately not
/// part of this struct or the artifact.
struct SearchStats {
  std::uint64_t nodes_expanded = 0;
  std::uint64_t nodes_pruned = 0;
  std::uint64_t leaf_blocks = 0;       ///< subtrees priced exactly
  std::uint64_t points_evaluated = 0;  ///< exact point evaluations
  std::uint64_t bound_evaluations = 0;
  std::uint64_t incumbent_updates = 0;
  bool trace_truncated = false;

  friend bool operator==(const SearchStats&, const SearchStats&) = default;
};

struct SearchResult {
  std::vector<std::string> axis_names;  ///< grid axes, in order
  std::string workload;
  Objective objective = Objective::EDP;
  SearchMethod method = SearchMethod::BranchAndBound;
  std::uint64_t seed = 0;
  std::size_t grid_points = 0;

  /// The winner: for BranchAndBound and Exhaustive, the bit-identical record
  /// the exhaustive sweep's argmin produces (feasible preferred, then lower
  /// objective value, ties to the lowest grid index); for Anneal, the best
  /// record the chain visited.
  sweep::SweepRecord best{};
  bool found = false;  ///< false for an empty grid or an immediate cancel

  SearchStats stats;
  std::vector<SearchTraceEvent> trace;
  bool cancelled = false;
};

}  // namespace stamp
