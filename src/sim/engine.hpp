#pragma once
/// \file engine.hpp
/// \brief A minimal discrete-event simulation engine: a time-ordered event
///        queue with deterministic FIFO tie-breaking.
///
/// Used by the machine simulator's tests and available as a general substrate
/// for building other simulated components.

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace stamp::sim {

/// Simulated time, in the model's unit-operation time units.
using Time = double;

class Engine {
 public:
  using Callback = std::function<void(Engine&)>;

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  void schedule_at(Time at, Callback cb) {
    if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
    queue_.push(Event{at, next_seq_++, std::move(cb)});
  }

  /// Schedule `cb` `delay` time units from now.
  void schedule_in(Time delay, Callback cb) {
    if (delay < 0) throw std::invalid_argument("schedule_in: negative delay");
    schedule_at(now_ + delay, std::move(cb));
  }

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Process one event; returns false if the queue was empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.cb(*this);
    return true;
  }

  /// Run until the queue drains (or `max_events` is hit — a runaway guard).
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = 100'000'000) {
    std::size_t processed = 0;
    while (processed < max_events && step()) ++processed;
    if (!queue_.empty() && processed >= max_events)
      throw std::runtime_error("sim::Engine: event budget exhausted");
    return processed;
  }

  /// Run until simulated time would exceed `until`; events at exactly `until`
  /// are processed. Returns events processed.
  std::size_t run_until(Time until) {
    std::size_t processed = 0;
    while (!queue_.empty() && queue_.top().at <= until) {
      step();
      ++processed;
    }
    if (now_ < until) now_ = until;
    return processed;
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A FIFO server: sequential resource with per-request service times.
/// `serve(arrival, service)` returns the completion time and advances the
/// server's busy horizon — the standard queueing building block used for
/// memory ports and interconnect links.
class FifoServer {
 public:
  /// \returns completion time of a request arriving at `arrival` that needs
  ///          `service` time units of the resource.
  Time serve(Time arrival, Time service) {
    if (service < 0) throw std::invalid_argument("FifoServer: negative service");
    const Time start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + service;
    busy_ += service;
    return next_free_;
  }

  [[nodiscard]] Time next_free() const noexcept { return next_free_; }
  /// Total busy time accumulated (for utilization reports).
  [[nodiscard]] Time busy_time() const noexcept { return busy_; }

 private:
  Time next_free_ = 0;
  Time busy_ = 0;
};

}  // namespace stamp::sim
