#include "search/bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stamp::search {
namespace {

/// Relative slack between a computed bound and the exactly-evaluated values
/// it prunes against. The exact path accumulates its sums in a different
/// association order than the closed forms here, so two mathematically equal
/// quantities can differ by a few ulps; 1e-9 dwarfs that while costing no
/// pruning power (distinct grid points differ by far more than 1e-9
/// relative, and exact ties land strictly above the shaved bound, forcing
/// the descend-and-tie-break path that exactness requires).
constexpr double kSlack = 1.0 - 1e-9;

}  // namespace

BoundContext::BoundContext(const sweep::SweepConfig& cfg) : cfg_(&cfg) {
  const auto range = [&](std::string_view name) {
    AxisRange r;
    r.index = cfg.grid.axis_index(name);
    if (r.index >= 0) {
      const auto& values =
          cfg.grid.axes()[static_cast<std::size_t>(r.index)].values;
      r.lo = *std::min_element(values.begin(), values.end());
      r.hi = *std::max_element(values.begin(), values.end());
    }
    return r;
  };
  cores_ = range(sweep::axes::kCores);
  tpc_ = range(sweep::axes::kThreadsPerCore);
  ell_e_ = range(sweep::axes::kEllE);
  le_ = range(sweep::axes::kLE);
  gsh_e_ = range(sweep::axes::kGShE);
  kappa_ = range(sweep::axes::kKappa);
  procs_ = range(sweep::axes::kProcesses);

  const ProcessProfile& p = cfg.profile;
  const EnergyParams& w = cfg.base.energy;
  energy_ = p.units * (p.c_fp * w.w_fp + p.c_int * w.w_int + p.d_r * w.w_d_r +
                       p.d_w * w.w_d_w + p.m_s * w.w_m_s + p.m_r * w.w_m_r);
  local_total_ = p.c_fp + p.c_int;
  shm_total_ = p.d_r + p.d_w;
  msg_total_ = p.m_s + p.m_r;
}

double BoundContext::resolve(const AxisRange& ax,
                             std::span<const double> prefix, double base,
                             bool want_hi) const noexcept {
  if (ax.index < 0) return base;
  const auto i = static_cast<std::size_t>(ax.index);
  if (i < prefix.size()) return prefix[i];
  return want_hi ? ax.hi : ax.lo;
}

double BoundContext::lower_bound(std::span<const double> prefix) const {
  const MachineModel& base = cfg_->base;
  const MachineParams& mp = base.params;
  const Topology& topo = base.topology;

  // Optimistic (range-min) communication parameters for the free suffix;
  // exact values once the prefix fixes the axis.
  const double ell_e = resolve(ell_e_, prefix, mp.ell_e, /*want_hi=*/false);
  const double le = resolve(le_, prefix, mp.L_e, /*want_hi=*/false);
  const double gsh_e = resolve(gsh_e_, prefix, mp.g_sh_e, /*want_hi=*/false);
  const double kappa =
      resolve(kappa_, prefix, cfg_->profile.kappa, /*want_hi=*/false);

  // The largest process count any completion can select: candidates are
  // clamped to min(process bound, total hardware threads), both maximized
  // over the subtree. Scanning every n in [1, n_max] covers a superset of
  // the real candidate set (powers of two plus the clamp), which is
  // admissible — min over more candidates is never larger.
  const double cores_hi =
      resolve(cores_, prefix, topo.processors_per_chip, /*want_hi=*/true);
  const double tpc_hi =
      resolve(tpc_, prefix, topo.threads_per_processor, /*want_hi=*/true);
  const double procs_hi = resolve(procs_, prefix,
                                  static_cast<double>(cfg_->processes),
                                  /*want_hi=*/true);
  const int tpc_max = std::max(1, static_cast<int>(tpc_hi));
  const int threads_max = topo.chips * std::max(1, static_cast<int>(cores_hi)) *
                          tpc_max;
  const int n_max =
      std::max(1, std::min(static_cast<int>(std::min(
                               procs_hi, static_cast<double>(threads_max))),
                           threads_max));

  double best_time = std::numeric_limits<double>::infinity();
  for (int n = 1; n <= n_max; ++n) {
    double t = local_total_ / n;
    const int gmax = std::min(tpc_max, n);
    // Largest intra fraction any placement of n processes can reach: a
    // process in a full group of gmax under the uniform-communication split.
    const double f_max =
        n > 1 ? static_cast<double>(gmax - 1) / (n - 1) : 0.0;
    if (shm_total_ > 0) {
      t += kappa;
      // Cheapest latency bracket over the group sizes available to some
      // process: everyone co-located (intra only) when a processor can hold
      // all n; otherwise at least one inter hop is unavoidable.
      if (n > 1) t += gmax == n ? std::min(mp.ell_a, ell_e) : ell_e;
      t += (shm_total_ / n) * (mp.g_sh_a * f_max + gsh_e * (1.0 - f_max));
    }
    if (msg_total_ > 0) {
      if (n > 1) t += gmax == n ? std::min(mp.L_a, le) : le;
      t += (msg_total_ / n) * (mp.g_mp_a * f_max + mp.g_mp_e * (1.0 - f_max));
    }
    best_time = std::min(best_time, t);
  }
  best_time *= cfg_->profile.units;

  const double value =
      metric_value(Cost{best_time, energy_}, cfg_->objective);
  return std::max(0.0, value * kSlack);
}

}  // namespace stamp::search
