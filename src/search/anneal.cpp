#include "fault/prng.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "search/detail.hpp"
#include "search/search.hpp"
#include "sweep/batch.hpp"
#include "sweep/cache.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace stamp::search {
namespace {

// PRNG streams: each random decision is counter_draw(seed, stream, counter),
// so the whole chain is a pure function of the request seed — no generator
// state to share or misorder.
constexpr std::uint64_t kStreamInit = 1;    ///< starting point digits
constexpr std::uint64_t kStreamMove = 2;    ///< axis pick + step direction
constexpr std::uint64_t kStreamAccept = 3;  ///< Metropolis acceptance

// Geometric cooling schedule over the chain, in *relative* objective delta:
// a move 50% worse is routinely accepted early, essentially never at the
// end. Relative deltas make the schedule unit-free across objectives.
constexpr double kTempHi = 0.5;
constexpr double kTempLo = 1e-4;

/// Cap on greedy-polish passes; each pass moves to the steepest-descent
/// neighbor, so the cap only matters on pathological plateaus.
constexpr std::size_t kMaxPolishSteps = 1024;

/// Exact single-point pricing through the batch evaluator, memoized by grid
/// index (the chain revisits points). Returns nullopt when the point was
/// skipped by cancellation.
class PointEval {
 public:
  PointEval(const sweep::SweepConfig& cfg, sweep::CostCache& cache,
            const core::CancelToken* cancel, std::uint64_t* evaluated)
      : cfg_(cfg), cache_(cache), evaluated_(evaluated) {
    opts_.cancel = cancel;
  }

  [[nodiscard]] std::optional<sweep::SweepRecord> eval(std::size_t index) {
    auto it = memo_.find(index);
    if (it == memo_.end()) {
      sweep::SweepRecord rec;
      const std::span<sweep::SweepRecord> one(&rec, 1);
      sweep::BatchEvaluator evaluator(cfg_, cache_, opts_,
                                      /*record_offset=*/index);
      evaluator.run_range(index, index + 1, one, /*fail_fast=*/true, nullptr,
                          nullptr);
      if (rec.processes == 0) return std::nullopt;  // cancelled
      ++*evaluated_;
      it = memo_.emplace(index, std::move(rec)).first;
    }
    return it->second;
  }

 private:
  const sweep::SweepConfig& cfg_;
  sweep::CostCache& cache_;
  sweep::SweepOptions opts_;
  std::uint64_t* evaluated_;
  std::unordered_map<std::size_t, sweep::SweepRecord> memo_;
};

}  // namespace

namespace detail {

AnnealOutcome anneal_chain(const SearchRequest& request,
                           sweep::CostCache& cache, std::uint64_t iterations,
                           SearchResult& result) {
  AnnealOutcome out;
  const sweep::SweepConfig& cfg = request.config;
  const auto& axes = cfg.grid.axes();
  const std::size_t naxes = axes.size();
  if (cfg.grid.size() == 0) return out;

  const std::uint64_t seed = request.seed;
  auto& incumbent_gauge =
      obs::MetricsRegistry::global().gauge("search.incumbent");
  const auto cancelled = [&] {
    return request.cancel != nullptr && request.cancel->cancelled();
  };

  // Row-major digit <-> index arithmetic over the axis sizes.
  std::vector<std::size_t> sizes(naxes), suffix(naxes, 1);
  for (std::size_t a = 0; a < naxes; ++a) sizes[a] = axes[a].values.size();
  for (std::size_t a = naxes; a-- > 1;) suffix[a - 1] = suffix[a] * sizes[a];
  const auto index_of = [&](const std::vector<std::size_t>& digits) {
    std::size_t idx = 0;
    for (std::size_t a = 0; a < naxes; ++a) idx += digits[a] * suffix[a];
    return idx;
  };
  std::vector<std::size_t> movable;  // axes a single step can change
  for (std::size_t a = 0; a < naxes; ++a)
    if (sizes[a] > 1) movable.push_back(a);

  PointEval eval(cfg, cache, request.cancel, &result.stats.points_evaluated);
  const auto note_best = [&](const sweep::SweepRecord& rec) {
    if (out.found && !record_beats(rec, out.best, cfg.objective)) return;
    out.best = rec;
    out.found = true;
    ++result.stats.incumbent_updates;
    const double value = metric_value(rec.metrics, cfg.objective);
    incumbent_gauge.set(value);
    push_event(request, result,
               {SearchTraceEvent::Kind::Incumbent, 0, rec.index,
                rec.index + 1, 0.0, value});
  };

  // Seeded starting point.
  std::vector<std::size_t> digits(naxes, 0);
  for (std::size_t a = 0; a < naxes; ++a)
    digits[a] = fault::counter_draw(seed, kStreamInit, a) % sizes[a];
  std::optional<sweep::SweepRecord> cur = eval.eval(index_of(digits));
  if (!cur) {
    out.cancelled = true;
    return out;
  }
  note_best(*cur);

  // Metropolis chain: one single-axis step per iteration, reflecting at the
  // axis ends so every proposal is a valid neighbor.
  for (std::uint64_t k = 0; k < iterations && !movable.empty(); ++k) {
    if (cancelled()) {
      out.cancelled = true;
      return out;
    }
    const std::size_t axis =
        movable[fault::counter_draw(seed, kStreamMove, 2 * k) %
                movable.size()];
    const bool up = (fault::counter_draw(seed, kStreamMove, 2 * k + 1) & 1) != 0;
    std::vector<std::size_t> cand_digits = digits;
    std::size_t& d = cand_digits[axis];
    if (up)
      d = d + 1 < sizes[axis] ? d + 1 : sizes[axis] - 2;
    else
      d = d > 0 ? d - 1 : 1;

    const std::optional<sweep::SweepRecord> cand =
        eval.eval(index_of(cand_digits));
    if (!cand) {
      out.cancelled = true;
      return out;
    }

    bool accept = record_beats(*cand, *cur, cfg.objective);
    if (!accept) {
      const double vc = metric_value(cur->metrics, cfg.objective);
      const double va = metric_value(cand->metrics, cfg.objective);
      double rel = (va - vc) / std::max(std::abs(vc), 1e-12);
      // Stepping from feasible to infeasible is worse than any value delta
      // the schedule routinely accepts; the reverse direction was already
      // accepted above via record_beats.
      if (cur->feasible && !cand->feasible) rel += 1.0;
      const double frac =
          iterations > 1 ? static_cast<double>(k) / (iterations - 1) : 1.0;
      const double temp = kTempHi * std::pow(kTempLo / kTempHi, frac);
      accept = fault::u01(fault::counter_draw(seed, kStreamAccept, k)) <
               std::exp(-rel / temp);
    }
    if (accept) {
      digits = cand_digits;
      cur = cand;
      note_best(*cur);
    }
  }

  // Greedy steepest-descent polish from the chain's best point: scan all
  // single-axis neighbors, move to the best strictly-improving one, repeat.
  if (out.found && !movable.empty()) {
    std::size_t best_index = out.best.index;
    for (std::size_t a = 0; a < naxes; ++a) {
      digits[a] = (best_index / suffix[a]) % sizes[a];
    }
    for (std::size_t step = 0; step < kMaxPolishSteps; ++step) {
      std::optional<sweep::SweepRecord> best_neighbor;
      std::vector<std::size_t> best_digits;
      for (const std::size_t axis : movable) {
        for (const int dir : {-1, +1}) {
          if (cancelled()) {
            out.cancelled = true;
            return out;
          }
          if (dir < 0 && digits[axis] == 0) continue;
          if (dir > 0 && digits[axis] + 1 >= sizes[axis]) continue;
          std::vector<std::size_t> cand_digits = digits;
          cand_digits[axis] += static_cast<std::size_t>(dir);
          const std::optional<sweep::SweepRecord> cand =
              eval.eval(index_of(cand_digits));
          if (!cand) {
            out.cancelled = true;
            return out;
          }
          if (!record_beats(*cand, out.best, cfg.objective)) continue;
          if (!best_neighbor ||
              record_beats(*cand, *best_neighbor, cfg.objective)) {
            best_neighbor = cand;
            best_digits = std::move(cand_digits);
          }
        }
      }
      if (!best_neighbor) break;
      digits = best_digits;
      note_best(*best_neighbor);
    }
  }
  return out;
}

}  // namespace detail

SearchResult search_anneal(const SearchRequest& request) {
  auto span = obs::ScopedSpan::if_enabled("search.anneal", "search");
  SearchResult res = detail::make_shell(request);
  if (res.grid_points == 0) return res;
  sweep::CostCache cache(16, request.config.cache_entries_per_shard);
  detail::AnnealOutcome out =
      detail::anneal_chain(request, cache, request.anneal_iterations, res);
  res.best = out.best;
  res.found = out.found;
  res.cancelled =
      out.cancelled ||
      (request.cancel != nullptr && request.cancel->cancelled());
  return res;
}

}  // namespace stamp::search
