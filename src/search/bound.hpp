#pragma once
/// \file bound.hpp
/// \brief Admissible lower bounds on a sweep objective over a grid subtree —
///        the pruning engine of the branch-and-bound search.
///
/// A subtree fixes a prefix of the grid's axes and leaves the suffix free.
/// The bound relaxes the closed-form cost model (core/cost_model.hpp) to its
/// optimistic envelope over every completion of the prefix:
///
///  - **Energy is exact.** Equation (2) charges per-operation energy with no
///    latency, placement, or κ dependence, and strong scaling splits the
///    total counters over n processes whose energies sum straight back — so
///    every point of one config has the same total energy
///    E = units · (c_fp·w_fp + c_int·w_int + d_r·w_dr + d_w·w_dw +
///    m_s·w_ms + m_r·w_mr), whatever the machine axes say.
///  - **Time is bounded per candidate process count.** For each n up to the
///    subtree's largest possible count (a superset of the counts the real
///    selection tries — taking the min over more candidates only lowers the
///    bound), T(n) is bounded below by strong-scaled local work plus, per
///    communication substrate, the smallest latency bracket any placement
///    can achieve (all-intra when n fits one processor, otherwise at least
///    one inter-processor hop) and the bandwidth term at the largest
///    achievable intra fraction (inter bandwidth factors dominate intra by
///    MachineParams::validate, so more co-location is never slower). Free
///    machine axes (ℓ_e, L_e, g_sh_e) and κ enter at their axis minimum.
///
/// The objective bound combines exact E with the T bound (all four metrics
/// are nondecreasing in T for fixed E), then shaves a relative epsilon so
/// floating-point reassociation in the exact evaluation can never make a
/// true value dip below its "admissible" bound: at exact equality the search
/// must still descend and let the index tie-break decide, or it would not be
/// bit-identical to the exhaustive argmin.

#include "core/metrics.hpp"
#include "sweep/sweep.hpp"

#include <cstddef>
#include <span>

namespace stamp::search {

/// Precomputed per-config state for subtree bounds. The referenced config
/// must outlive the context.
class BoundContext {
 public:
  explicit BoundContext(const sweep::SweepConfig& cfg);

  /// Lower bound on the recorded objective value of every grid point whose
  /// first `prefix.size()` axis values equal `prefix` (grid axis order).
  /// Admissible against the sweep's actual selection: the selected candidate
  /// of any completion scores at least this, whatever feasibility preference
  /// picked. `prefix.size()` may be anything in [0, axes], including a full
  /// point.
  [[nodiscard]] double lower_bound(std::span<const double> prefix) const;

  /// The exact total energy shared by every point of the config.
  [[nodiscard]] double exact_energy() const noexcept { return energy_; }

 private:
  struct AxisRange {
    int index = -1;  ///< axis position in the grid, -1 when absent
    double lo = 0;   ///< min over the axis values
    double hi = 0;   ///< max over the axis values
  };

  /// The fixed value when the axis is inside the prefix, otherwise the
  /// range minimum (or maximum, for `want_hi`), otherwise `base`.
  [[nodiscard]] double resolve(const AxisRange& ax,
                               std::span<const double> prefix, double base,
                               bool want_hi) const noexcept;

  const sweep::SweepConfig* cfg_;
  AxisRange cores_, tpc_, ell_e_, le_, gsh_e_, kappa_, procs_;
  double energy_ = 0;       ///< exact total energy of any point
  double local_total_ = 0;  ///< c_fp + c_int of the total profile
  double shm_total_ = 0;    ///< d_r + d_w
  double msg_total_ = 0;    ///< m_s + m_r
};

}  // namespace stamp::search
