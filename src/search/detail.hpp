#pragma once
/// \file detail.hpp
/// \brief Internals shared by the search engines (bnb/anneal/exhaustive).
///        Not part of the public surface — include search/search.hpp.

#include "api/search_types.hpp"
#include "sweep/cache.hpp"

#include <cstdint>

namespace stamp::search::detail {

/// Result skeleton with the request's identifying fields filled in.
[[nodiscard]] SearchResult make_shell(const SearchRequest& request);

/// Append a trace event, honoring `record_trace` and the truncation cap
/// (recording is serial, so truncation is deterministic too).
void push_event(const SearchRequest& request, SearchResult& result,
                const SearchTraceEvent& event);

/// Outcome of one annealing chain (also the branch-and-bound warm start).
struct AnnealOutcome {
  sweep::SweepRecord best{};
  bool found = false;
  bool cancelled = false;
};

/// Run `iterations` annealing steps plus the greedy polish, memoizing exact
/// point evaluations in `cache` (shared with the caller so a warm start
/// pre-seeds branch-and-bound leaf pricing). Updates `result.stats`
/// (points_evaluated, incumbent_updates) and records incumbent trace events;
/// everything drawn from the PRNG is keyed (seed, stream, counter), so the
/// chain is a pure function of the request.
[[nodiscard]] AnnealOutcome anneal_chain(const SearchRequest& request,
                                         sweep::CostCache& cache,
                                         std::uint64_t iterations,
                                         SearchResult& result);

}  // namespace stamp::search::detail
