#pragma once
/// \file search.hpp
/// \brief Guided search over a sweep grid: find the optimal point without
///        pricing the whole Cartesian product.
///
/// Three engines behind one request/result API (api/search_types.hpp):
///
///  - `search_bnb` — depth-first branch-and-bound over grid-axis prefixes.
///    A subtree of a prefix is a *contiguous* grid-index range (decoding is
///    row-major, last axis fastest), so exact leaf pricing streams through
///    the same `sweep::BatchEvaluator` the exhaustive sweep uses and the
///    winner is the bit-identical record the sweep's argmin would produce:
///    children are expanded best-bound-first, a subtree is pruned only when
///    its admissible bound (search/bound.hpp) proves every point in it loses
///    to the incumbent — including the first-lowest-index tie-break.
///  - `search_anneal` — simulated annealing over single-axis steps with a
///    greedy local-search polish. Heuristic, and a pure function of the
///    request seed: every random decision is a counter-based draw
///    (fault::counter_draw), never shared-generator state.
///  - `search_exhaustive` — price everything, scan for the argmin. The
///    oracle the property tests compare the other two against.
///
/// Determinism contract: the search trajectory (expansion order, pruning
/// decisions, incumbent updates, the trace) is computed serially; worker
/// threads only price leaf blocks into index-keyed records. The
/// `stamp-search/v1` artifact is therefore byte-identical across thread
/// counts and repeated runs of the same request.

#include "api/search_types.hpp"
#include "sweep/pool.hpp"

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>

namespace stamp::search {

/// True when record `a` beats record `b` under the sweep's winner ordering:
/// feasible beats infeasible, then lower objective value, then lower grid
/// index. This is exactly the argmin `tools/stamp_sweep` (and the gate)
/// computes over a finished sweep — search and sweep must never disagree on
/// what "best" means.
[[nodiscard]] bool record_beats(const sweep::SweepRecord& a,
                                const sweep::SweepRecord& b,
                                Objective objective) noexcept;

/// Index (into `records`) of the winner under `record_beats`; `records.size()`
/// when `records` is empty. Skips never-evaluated records (processes == 0
/// with an all-default payload) only if `skip_unevaluated` is set — a
/// cancelled sweep leaves such holes.
[[nodiscard]] std::size_t best_record_index(
    std::span<const sweep::SweepRecord> records, Objective objective,
    bool skip_unevaluated = false) noexcept;

/// Run the method `request.method` asks for. `pool` (optional) prices leaf
/// blocks / the exhaustive scan in parallel; when null and
/// `request.threads > 1`, a temporary pool is spawned. Annealing is always
/// serial. Throws what point evaluation throws (invalid axis values), like
/// the sweep engine.
[[nodiscard]] SearchResult run_search(const SearchRequest& request,
                                      sweep::Pool* pool = nullptr);

/// The individual engines (run_search dispatches to these).
[[nodiscard]] SearchResult search_bnb(const SearchRequest& request,
                                      sweep::Pool* pool = nullptr);
[[nodiscard]] SearchResult search_anneal(const SearchRequest& request);
[[nodiscard]] SearchResult search_exhaustive(const SearchRequest& request,
                                             sweep::Pool* pool = nullptr);

/// Serialize in the stable `stamp-search/v1` schema: fixed key order,
/// numbers via JsonWriter's canonical formatting, trace events in recording
/// order. Throws std::runtime_error when the stream reports failure.
void write_json(const SearchResult& result, std::ostream& os);

/// Convenience: the artifact as a string.
[[nodiscard]] std::string to_json(const SearchResult& result);

}  // namespace stamp::search
