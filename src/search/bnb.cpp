#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "search/bound.hpp"
#include "search/detail.hpp"
#include "search/search.hpp"
#include "sweep/batch.hpp"
#include "sweep/cache.hpp"
#include "sweep/pool.hpp"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

namespace stamp::search {
namespace {

/// Leaf blocks at least this large are priced through the worker pool;
/// smaller ones are cheaper to run inline than to hand out.
constexpr std::size_t kPoolThreshold = 2 * sweep::BatchEvaluator::kBatch;

/// Depth-first best-bound-first exact search. Everything that shapes the
/// result — child ordering, pruning, incumbent updates, the trace — runs on
/// the calling thread; the pool only prices leaf records keyed by grid
/// index, so the artifact is identical at every thread count.
class BnbEngine {
 public:
  BnbEngine(const SearchRequest& request, SearchResult& result,
            sweep::Pool* pool)
      : req_(request),
        res_(result),
        cfg_(request.config),
        ctx_(request.config),
        cache_(pool != nullptr
                   ? static_cast<std::size_t>(pool->threads()) * 8
                   : 16,
               request.config.cache_entries_per_shard),
        pool_(pool),
        expand_counter_(obs::MetricsRegistry::global().counter("search.expand")),
        prune_counter_(obs::MetricsRegistry::global().counter("search.prune")),
        incumbent_gauge_(
            obs::MetricsRegistry::global().gauge("search.incumbent")) {
    eval_opts_.cancel = request.cancel;
    const auto& axes = cfg_.grid.axes();
    // suffix_[d] = number of grid points fixed-prefix-of-depth-d spans.
    // Row-major decode (last axis fastest) makes every such subtree a
    // contiguous index range.
    suffix_.assign(axes.size() + 1, 1);
    for (std::size_t d = axes.size(); d-- > 0;)
      suffix_[d] = suffix_[d + 1] * axes[d].values.size();
    prefix_.resize(axes.size());
  }

  void run() {
    const std::size_t total = cfg_.grid.size();
    if (total == 0) return;

    if (req_.warm_start) {
      // A short annealing chain seeds the incumbent so deep subtrees prune
      // from the first bound comparison. It shares the cost cache, so any
      // point it priced is free when a leaf block revisits it.
      const std::uint64_t iters =
          std::min<std::uint64_t>(req_.anneal_iterations, 512);
      detail::AnnealOutcome warm =
          detail::anneal_chain(req_, cache_, iters, res_);
      if (warm.found) {
        // The chain already counted its own incumbent updates/events.
        res_.best = warm.best;
        res_.found = true;
      }
      if (warm.cancelled) return;
    }

    ++res_.stats.bound_evaluations;
    expand(0, 0, ctx_.lower_bound({}));
  }

 private:
  [[nodiscard]] bool cancelled() const {
    return req_.cancel != nullptr && req_.cancel->cancelled();
  }

  /// Every point in [first_index, ...) of a subtree with bound `bound`
  /// provably loses to the incumbent: worse value, or an exact tie that the
  /// lower-index incumbent wins anyway. Only a *feasible* incumbent prunes —
  /// the winner ordering prefers feasibility over value, so an infeasible
  /// incumbent can be beaten by an arbitrarily expensive feasible point.
  [[nodiscard]] bool prunable(double bound, std::size_t first_index) const {
    if (!res_.found || !res_.best.feasible) return false;
    const double inc = metric_value(res_.best.metrics, cfg_.objective);
    if (bound > inc) return true;
    return bound == inc && res_.best.index < first_index;
  }

  void expand(std::size_t depth, std::size_t base, double bound) {
    if (cancelled()) return;
    const std::size_t count = suffix_[depth];
    const auto& axes = cfg_.grid.axes();
    if (depth == axes.size() || count <= req_.leaf_block) {
      price_leaf(static_cast<int>(depth), base, count);
      return;
    }

    ++res_.stats.nodes_expanded;
    expand_counter_.add();
    detail::push_event(req_, res_,
                       {SearchTraceEvent::Kind::Expand,
                        static_cast<int>(depth), base, base + count, bound,
                        incumbent_value()});

    // Bound every child, then visit best-bound-first (ties to grid order):
    // a strong early incumbent is what makes later siblings prunable.
    const auto& values = axes[depth].values;
    std::vector<std::pair<double, std::size_t>> order;
    order.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      prefix_[depth] = values[i];
      ++res_.stats.bound_evaluations;
      order.push_back({ctx_.lower_bound({prefix_.data(), depth + 1}), i});
    }
    std::sort(order.begin(), order.end());

    for (const auto& [child_bound, i] : order) {
      if (cancelled()) return;
      const std::size_t child_base = base + i * suffix_[depth + 1];
      if (prunable(child_bound, child_base)) {
        ++res_.stats.nodes_pruned;
        prune_counter_.add();
        detail::push_event(req_, res_,
                           {SearchTraceEvent::Kind::Prune,
                            static_cast<int>(depth + 1), child_base,
                            child_base + suffix_[depth + 1], child_bound,
                            incumbent_value()});
        continue;
      }
      prefix_[depth] = values[i];
      expand(depth + 1, child_base, child_bound);
    }
  }

  void price_leaf(int depth, std::size_t base, std::size_t count) {
    if (count == 0) return;
    ++res_.stats.leaf_blocks;
    detail::push_event(req_, res_,
                       {SearchTraceEvent::Kind::Leaf, depth, base,
                        base + count, 0.0, incumbent_value()});

    if (leaf_.size() < count) leaf_.resize(count);
    // A cancelled point keeps processes == 0; reset so a record left over
    // from a previous block can never masquerade as freshly evaluated.
    for (std::size_t i = 0; i < count; ++i) leaf_[i].processes = 0;

    const std::span<sweep::SweepRecord> records(leaf_.data(), count);
    sweep::BatchEvaluator eval(cfg_, cache_, eval_opts_,
                               /*record_offset=*/base);
    if (pool_ != nullptr && pool_->threads() > 1 && count >= kPoolThreshold) {
      std::mutex error_mutex;
      std::exception_ptr first_error;
      pool_->parallel_for_ranges(
          count,
          [&](std::size_t lo, std::size_t hi) {
            eval.run_range(base + lo, base + hi, records, /*fail_fast=*/false,
                           &error_mutex, &first_error);
          },
          req_.cancel);
      if (first_error) std::rethrow_exception(first_error);
    } else {
      eval.run_range(base, base + count, records, /*fail_fast=*/true, nullptr,
                     nullptr);
    }

    // Serial scan in index order — the argmin the exhaustive sweep computes.
    for (std::size_t i = 0; i < count; ++i) {
      const sweep::SweepRecord& rec = leaf_[i];
      if (rec.processes == 0) continue;  // skipped by cancellation
      ++res_.stats.points_evaluated;
      if (!res_.found || record_beats(rec, res_.best, cfg_.objective)) {
        res_.best = rec;
        res_.found = true;
        ++res_.stats.incumbent_updates;
        const double value = metric_value(rec.metrics, cfg_.objective);
        incumbent_gauge_.set(value);
        detail::push_event(req_, res_,
                           {SearchTraceEvent::Kind::Incumbent, depth,
                            rec.index, rec.index + 1, 0.0, value});
      }
    }
  }

  [[nodiscard]] double incumbent_value() const {
    return res_.found ? metric_value(res_.best.metrics, cfg_.objective) : 0.0;
  }

  const SearchRequest& req_;
  SearchResult& res_;
  const sweep::SweepConfig& cfg_;
  BoundContext ctx_;
  sweep::CostCache cache_;
  sweep::Pool* pool_;
  sweep::SweepOptions eval_opts_;
  obs::Counter& expand_counter_;
  obs::Counter& prune_counter_;
  obs::Gauge& incumbent_gauge_;
  std::vector<std::size_t> suffix_;  ///< subtree sizes per depth
  std::vector<double> prefix_;       ///< fixed axis values down the DFS path
  std::vector<sweep::SweepRecord> leaf_;  ///< leaf pricing buffer
};

}  // namespace

SearchResult search_bnb(const SearchRequest& request, sweep::Pool* pool) {
  auto span = obs::ScopedSpan::if_enabled("search.bnb", "search");
  SearchResult res = detail::make_shell(request);
  BnbEngine engine(request, res, pool);
  engine.run();
  res.cancelled = request.cancel != nullptr && request.cancel->cancelled();
  return res;
}

}  // namespace stamp::search
