#include "search/search.hpp"

#include "models/models.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "report/json.hpp"
#include "search/detail.hpp"
#include "sweep/batch.hpp"
#include "sweep/cache.hpp"

#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace stamp {

std::string_view to_string(SearchMethod m) noexcept {
  switch (m) {
    case SearchMethod::BranchAndBound:
      return "bnb";
    case SearchMethod::Anneal:
      return "anneal";
    case SearchMethod::Exhaustive:
      return "exhaustive";
  }
  return "unknown";
}

std::string_view to_string(SearchTraceEvent::Kind k) noexcept {
  switch (k) {
    case SearchTraceEvent::Kind::Expand:
      return "expand";
    case SearchTraceEvent::Kind::Prune:
      return "prune";
    case SearchTraceEvent::Kind::Leaf:
      return "leaf";
    case SearchTraceEvent::Kind::Incumbent:
      return "incumbent";
  }
  return "unknown";
}

}  // namespace stamp

namespace stamp::search {

namespace detail {

SearchResult make_shell(const SearchRequest& request) {
  SearchResult res;
  res.axis_names.reserve(request.config.grid.axes().size());
  for (const auto& axis : request.config.grid.axes())
    res.axis_names.push_back(axis.name);
  res.workload = request.config.workload;
  res.objective = request.config.objective;
  res.method = request.method;
  res.seed = request.seed;
  res.grid_points = request.config.grid.size();
  return res;
}

void push_event(const SearchRequest& request, SearchResult& result,
                const SearchTraceEvent& event) {
  if (!request.record_trace) return;
  if (result.trace.size() >= request.max_trace_events) {
    result.stats.trace_truncated = true;
    return;
  }
  result.trace.push_back(event);
}

}  // namespace detail

bool record_beats(const sweep::SweepRecord& a, const sweep::SweepRecord& b,
                  Objective objective) noexcept {
  if (a.feasible != b.feasible) return a.feasible;
  const double va = metric_value(a.metrics, objective);
  const double vb = metric_value(b.metrics, objective);
  if (va != vb) return va < vb;
  return a.index < b.index;
}

std::size_t best_record_index(std::span<const sweep::SweepRecord> records,
                              Objective objective,
                              bool skip_unevaluated) noexcept {
  std::size_t best = records.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (skip_unevaluated && records[i].processes == 0) continue;
    if (best == records.size() ||
        record_beats(records[i], records[best], objective))
      best = i;
  }
  return best;
}

SearchResult search_exhaustive(const SearchRequest& request,
                               sweep::Pool* pool) {
  auto span = obs::ScopedSpan::if_enabled("search.exhaustive", "search");
  SearchResult res = detail::make_shell(request);
  const sweep::SweepConfig& cfg = request.config;
  const std::size_t total = cfg.grid.size();
  if (total == 0) return res;

  // The oracle holds the whole grid's records at once (like a sweep run) —
  // fine for the test grids it exists for, deliberate for large ones.
  std::vector<sweep::SweepRecord> records(total);
  sweep::CostCache cache(pool ? static_cast<std::size_t>(pool->threads()) * 8
                              : 16,
                         cfg.cache_entries_per_shard);
  sweep::SweepOptions opts;
  opts.cancel = request.cancel;
  sweep::BatchEvaluator eval(cfg, cache, opts);
  if (pool && pool->threads() > 1) {
    std::mutex error_mutex;
    std::exception_ptr first_error;
    pool->parallel_for_ranges(
        total,
        [&](std::size_t begin, std::size_t end) {
          eval.run_range(begin, end, records, /*fail_fast=*/false,
                         &error_mutex, &first_error);
        },
        request.cancel);
    if (first_error) std::rethrow_exception(first_error);
  } else {
    eval.run_range(0, total, records, /*fail_fast=*/true, nullptr, nullptr);
  }

  // Serial argmin scan in index order: identical incumbent history (and
  // artifact) at every thread count.
  auto& incumbent_gauge =
      obs::MetricsRegistry::global().gauge("search.incumbent");
  for (std::size_t i = 0; i < total; ++i) {
    const sweep::SweepRecord& rec = records[i];
    if (rec.processes == 0) continue;  // skipped by cancellation
    ++res.stats.points_evaluated;
    if (!res.found || record_beats(rec, res.best, cfg.objective)) {
      res.best = rec;
      res.found = true;
      ++res.stats.incumbent_updates;
      const double value = metric_value(rec.metrics, cfg.objective);
      incumbent_gauge.set(value);
      detail::push_event(request, res,
                         {SearchTraceEvent::Kind::Incumbent, 0, rec.index,
                          rec.index + 1, 0.0, value});
    }
  }
  res.stats.leaf_blocks = 1;
  res.cancelled = request.cancel != nullptr && request.cancel->cancelled();
  return res;
}

SearchResult run_search(const SearchRequest& request, sweep::Pool* pool) {
  // Annealing is strictly serial; the other engines only use threads for
  // exact leaf pricing, never for the search trajectory itself.
  std::unique_ptr<sweep::Pool> owned;
  if (pool == nullptr && request.threads > 1 &&
      request.method != SearchMethod::Anneal) {
    owned = std::make_unique<sweep::Pool>(request.threads);
    pool = owned.get();
  }
  switch (request.method) {
    case SearchMethod::BranchAndBound:
      return search_bnb(request, pool);
    case SearchMethod::Anneal:
      return search_anneal(request);
    case SearchMethod::Exhaustive:
      return search_exhaustive(request, pool);
  }
  throw std::invalid_argument("search: unknown SearchMethod");
}

void write_json(const SearchResult& result, std::ostream& os) {
  report::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "stamp-search/v1");
  w.kv("workload", result.workload);
  w.kv("objective", to_string(result.objective));
  w.kv("method", to_string(result.method));
  w.kv("seed", static_cast<long long>(result.seed));
  w.kv("grid_points", static_cast<long long>(result.grid_points));
  w.key("axes").begin_array();
  for (const std::string& name : result.axis_names) w.value(name);
  w.end_array();
  w.key("best");
  if (!result.found) {
    w.null();
  } else {
    const sweep::SweepRecord& rec = result.best;
    w.begin_object();
    w.kv("index", static_cast<long long>(rec.index));
    w.key("params").begin_object();
    for (std::size_t a = 0;
         a < result.axis_names.size() && a < rec.params.size(); ++a)
      w.kv(result.axis_names[a], rec.params[a]);
    w.end_object();
    w.kv("processes", rec.processes);
    w.kv("feasible", rec.feasible);
    w.key("metrics").begin_object();
    w.kv("D", rec.metrics.D);
    w.kv("PDP", rec.metrics.PDP);
    w.kv("EDP", rec.metrics.EDP);
    w.kv("ED2P", rec.metrics.ED2P);
    w.end_object();
    w.key("models").begin_object();
    for (int k = 0; k < models::kModelKindCount; ++k)
      w.kv(models::to_string(static_cast<models::ModelKind>(k)),
           rec.classical[static_cast<std::size_t>(k)]);
    w.end_object();
    w.end_object();
  }
  w.key("stats").begin_object();
  w.kv("nodes_expanded", static_cast<long long>(result.stats.nodes_expanded));
  w.kv("nodes_pruned", static_cast<long long>(result.stats.nodes_pruned));
  w.kv("leaf_blocks", static_cast<long long>(result.stats.leaf_blocks));
  w.kv("points_evaluated",
       static_cast<long long>(result.stats.points_evaluated));
  w.kv("bound_evaluations",
       static_cast<long long>(result.stats.bound_evaluations));
  w.kv("incumbent_updates",
       static_cast<long long>(result.stats.incumbent_updates));
  w.kv("trace_truncated", result.stats.trace_truncated);
  w.end_object();
  w.kv("cancelled", result.cancelled);
  w.key("trace").begin_array();
  for (const SearchTraceEvent& e : result.trace) {
    w.begin_object();
    w.kv("kind", to_string(e.kind));
    w.kv("depth", e.depth);
    w.kv("begin", static_cast<long long>(e.begin));
    w.kv("end", static_cast<long long>(e.end));
    w.kv("bound", e.bound);
    w.kv("incumbent", e.incumbent);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  os.flush();
  if (!os.good())
    throw std::runtime_error(
        "search: writing stamp-search/v1 artifact failed (output stream "
        "error)");
}

std::string to_json(const SearchResult& result) {
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

}  // namespace stamp::search
