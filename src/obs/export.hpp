#pragma once
/// \file export.hpp
/// \brief Exporters for recorded observability data: Chrome trace_event JSON
///        (loadable in chrome://tracing or Perfetto) and a structural
///        validator/summarizer for the emitted traces.

#include "obs/span.hpp"

#include <cstddef>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace stamp::report {
class JsonValue;
}  // namespace stamp::report

namespace stamp::obs {

/// Write `events` in Chrome's JSON-object trace format:
///   {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": ...,
///    "dur": ..., "pid": 1, "tid": ..., "args": {...}}, ...],
///    "displayTimeUnit": "ms"}
/// Timestamps are microseconds, per the format. The output parses back
/// through `report::JsonValue::parse`.
void write_chrome_trace(std::span<const TraceEvent> events, std::ostream& os);
[[nodiscard]] std::string chrome_trace_json(std::span<const TraceEvent> events);

/// What a structurally valid trace contained.
struct TraceSummary {
  std::size_t events = 0;
  std::size_t complete_spans = 0;  ///< ph == "X"
  std::size_t instants = 0;        ///< ph == "i"
  double total_span_us = 0;        ///< sum of "X" durations
  std::map<std::string, std::size_t> events_by_category;
  std::map<std::string, std::size_t> events_by_name;
};

/// Validate a parsed Chrome trace document and summarize it. Throws
/// std::runtime_error naming the first structural problem: missing
/// "traceEvents", an event that is not an object, a missing/ill-typed
/// name/cat/ph/ts/tid field, a negative ts, or an "X" event without a
/// non-negative "dur".
[[nodiscard]] TraceSummary summarize_chrome_trace(const report::JsonValue& doc);

/// Convenience: parse then summarize.
[[nodiscard]] TraceSummary summarize_chrome_trace(const std::string& json_text);

}  // namespace stamp::obs
