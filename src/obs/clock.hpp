#pragma once
/// \file clock.hpp
/// \brief Wall-clock helpers for the observability layer.
///
/// Chrome's trace_event format timestamps in microseconds; spans are stamped
/// against a per-recorder epoch so traces start near t = 0 and stay readable
/// in chrome://tracing without offset gymnastics.

#include <chrono>

namespace stamp::obs {

using Clock = std::chrono::steady_clock;

/// Microseconds elapsed since `epoch`, as the double Chrome expects.
[[nodiscard]] inline double micros_since(Clock::time_point epoch) noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

/// Nanoseconds elapsed since `start`, for latency histograms.
[[nodiscard]] inline std::uint64_t nanos_since(Clock::time_point start) noexcept {
  const auto d = Clock::now() - start;
  return d.count() > 0 ? static_cast<std::uint64_t>(
                             std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                                 .count())
                       : 0;
}

}  // namespace stamp::obs
