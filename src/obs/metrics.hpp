#pragma once
/// \file metrics.hpp
/// \brief A lock-sharded registry of named counters, gauges, and histograms.
///
/// Instruments are cheap to update (one atomic RMW) and stable in memory:
/// the registry hands out references that stay valid for its lifetime, so hot
/// paths can look an instrument up once and then update lock-free. Lookup
/// itself takes only the owning shard's lock, so concurrent lookups of
/// different names rarely contend.
///
/// Instrumented library code guards every update behind
/// `obs::metrics_enabled()` — a single relaxed atomic load — so the disabled
/// default costs one predictable branch per site.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time level (queue depth, active workers, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed log2-bucket histogram of non-negative integer samples (typically
/// latencies in nanoseconds). Bucket 0 holds exact zeros; bucket i >= 1 holds
/// samples in [2^(i-1), 2^i). Recording is one relaxed RMW per sample plus
/// the running sum, so concurrent recorders never serialize.
class Histogram {
 public:
  /// Bucket 0 plus one bucket per bit position of a 64-bit sample.
  static constexpr int kBucketCount = 65;

  /// Index of the bucket that holds `v`.
  [[nodiscard]] static constexpr int bucket_of(std::uint64_t v) noexcept {
    return std::bit_width(v);  // 0 -> 0, [2^(i-1), 2^i) -> i
  }
  /// Smallest sample landing in bucket `i` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(int i) noexcept {
    return i <= 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One flattened instrument, for export and inspection.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  Kind kind = Kind::Counter;
  std::string name;
  double value = 0;                         ///< counter/gauge value; histogram mean
  std::uint64_t count = 0;                  ///< histogram sample count
  std::uint64_t sum = 0;                    ///< histogram sample sum
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  ///< (lower, n)
};

class MetricsRegistry {
 public:
  /// `shards` hash buckets, each with its own lock; rounded up to 1.
  explicit MetricsRegistry(std::size_t shards = 8);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. References stay valid for the registry's
  /// lifetime; a name identifies one instrument per kind.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// All instruments, sorted by (kind, name). Non-zero-cost (locks every
  /// shard); meant for export, not hot paths.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Flat metrics JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, buckets: [[lower, n], ...]}}}.
  /// Keys are sorted; empty histogram buckets are omitted. The output parses
  /// back through `report::JsonValue::parse`.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Zero every instrument (references stay valid).
  void reset();

  /// The process-wide registry the instrumented subsystems report into.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  };

  [[nodiscard]] Shard& shard_for(std::string_view name) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// The branch every instrumented site takes: one relaxed load.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on) noexcept;

}  // namespace stamp::obs
