#include "obs/export.hpp"

#include "report/json.hpp"
#include "report/json_parse.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stamp::obs {

void write_chrome_trace(std::span<const TraceEvent> events, std::ostream& os) {
  report::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : events) {
    w.begin_object();
    w.kv("name", ev.name);
    w.kv("cat", ev.category);
    w.kv("ph", std::string_view(&ev.phase, 1));
    w.kv("ts", ev.ts_us);
    if (ev.phase == 'X') w.kv("dur", ev.dur_us);
    w.kv("pid", 1);
    w.kv("tid", ev.tid);
    if (!ev.args.empty()) {
      w.key("args").begin_object();
      for (const auto& [key, value] : ev.args) w.kv(key, value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  os << "\n";
}

std::string chrome_trace_json(std::span<const TraceEvent> events) {
  std::ostringstream ss;
  write_chrome_trace(events, ss);
  return ss.str();
}

namespace {

[[noreturn]] void bad_trace(std::size_t index, const std::string& what) {
  throw std::runtime_error("trace event " + std::to_string(index) + ": " + what);
}

const report::JsonValue& field(const report::JsonValue& event, std::size_t index,
                               const char* key) {
  const report::JsonValue* v = event.find(key);
  if (!v) bad_trace(index, std::string("missing \"") + key + "\"");
  return *v;
}

}  // namespace

TraceSummary summarize_chrome_trace(const report::JsonValue& doc) {
  if (doc.kind() != report::JsonValue::Kind::Object)
    throw std::runtime_error("trace: root is not an object");
  const report::JsonValue* events = doc.find("traceEvents");
  if (!events) throw std::runtime_error("trace: missing \"traceEvents\"");
  if (events->kind() != report::JsonValue::Kind::Array)
    throw std::runtime_error("trace: \"traceEvents\" is not an array");

  TraceSummary summary;
  for (std::size_t i = 0; i < events->items().size(); ++i) {
    const report::JsonValue& ev = events->items()[i];
    if (ev.kind() != report::JsonValue::Kind::Object)
      bad_trace(i, "not an object");
    const std::string& name = field(ev, i, "name").as_string();
    const std::string& cat = field(ev, i, "cat").as_string();
    const std::string& ph = field(ev, i, "ph").as_string();
    const double ts = field(ev, i, "ts").as_number();
    (void)field(ev, i, "tid").as_number();
    if (ts < 0) bad_trace(i, "negative ts");
    if (ph == "X") {
      const double dur = field(ev, i, "dur").as_number();
      if (dur < 0) bad_trace(i, "negative dur");
      ++summary.complete_spans;
      summary.total_span_us += dur;
    } else if (ph == "i") {
      ++summary.instants;
    } else {
      bad_trace(i, "unsupported phase \"" + ph + "\"");
    }
    ++summary.events;
    ++summary.events_by_category[cat];
    ++summary.events_by_name[name];
  }
  return summary;
}

TraceSummary summarize_chrome_trace(const std::string& json_text) {
  return summarize_chrome_trace(report::JsonValue::parse(json_text));
}

}  // namespace stamp::obs
