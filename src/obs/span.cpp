#include "obs/span.hpp"

#include <algorithm>

namespace stamp::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};

/// Identity of the next TraceRecorder; lets the thread-local cache tell a
/// new recorder apart from a destroyed one that reused the same address.
std::atomic<std::uint64_t> g_next_recorder_id{1};

struct TlEntry {
  const void* recorder = nullptr;
  std::uint64_t id = 0;
  std::shared_ptr<void> log;
};
thread_local std::vector<TlEntry> tl_logs;
}  // namespace detail

void set_tracing_enabled(bool on) noexcept {
  TraceRecorder::global().set_enabled(on);
}

TraceRecorder::TraceRecorder()
    : epoch_(Clock::now()),
      id_(detail::g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
  if (this == &global())
    detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

TraceRecorder::ThreadLog& TraceRecorder::local_log() {
  for (const detail::TlEntry& e : detail::tl_logs)
    if (e.recorder == this && e.id == id_)
      return *static_cast<ThreadLog*>(e.log.get());

  auto log = std::make_shared<ThreadLog>();
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    log->tid = next_tid_++;
    logs_.push_back(log);
  }
  detail::tl_logs.push_back({this, id_, log});
  return *log;
}

void TraceRecorder::begin(std::string name, std::string category) {
  if (!enabled()) return;
  const double ts = micros_since(epoch_);
  ThreadLog& log = local_log();
  const std::lock_guard<std::mutex> lock(log.mutex);
  log.stack.push_back({std::move(name), std::move(category), ts, {}});
}

void TraceRecorder::arg(std::string key, double value) {
  if (!enabled()) return;
  ThreadLog& log = local_log();
  const std::lock_guard<std::mutex> lock(log.mutex);
  if (!log.stack.empty())
    log.stack.back().args.emplace_back(std::move(key), value);
}

void TraceRecorder::end() {
  if (!enabled()) return;
  const double now = micros_since(epoch_);
  ThreadLog& log = local_log();
  const std::lock_guard<std::mutex> lock(log.mutex);
  if (log.stack.empty()) return;
  OpenSpan open = std::move(log.stack.back());
  log.stack.pop_back();
  TraceEvent ev;
  ev.name = std::move(open.name);
  ev.category = std::move(open.category);
  ev.phase = 'X';
  ev.ts_us = open.ts_us;
  ev.dur_us = std::max(0.0, now - open.ts_us);
  ev.tid = log.tid;
  ev.args = std::move(open.args);
  log.events.push_back(std::move(ev));
}

void TraceRecorder::instant(std::string name, std::string category) {
  if (!enabled()) return;
  const double ts = micros_since(epoch_);
  ThreadLog& log = local_log();
  const std::lock_guard<std::mutex> lock(log.mutex);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'i';
  ev.ts_us = ts;
  ev.tid = log.tid;
  log.events.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    logs = logs_;
  }
  std::vector<TraceEvent> out;
  for (const auto& log : logs) {
    const std::lock_guard<std::mutex> lock(log->mutex);
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.tid < b.tid;
  });
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::size_t n = 0;
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& log : logs_) {
    const std::lock_guard<std::mutex> log_lock(log->mutex);
    n += log->events.size();
  }
  return n;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& log : logs_) {
    const std::lock_guard<std::mutex> log_lock(log->mutex);
    log->events.clear();
    log->stack.clear();
  }
}

int TraceRecorder::thread_count() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return static_cast<int>(logs_.size());
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;  // never destroyed: spans may close during static teardown
}

}  // namespace stamp::obs
