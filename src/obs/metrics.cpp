#include "obs/metrics.hpp"

#include "report/json.hpp"

#include <functional>
#include <ostream>
#include <sstream>

namespace stamp::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) const {
  const std::size_t h = std::hash<std::string_view>{}(name);
  return *shards_[h % shards_.size()];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard& s = shard_for(name);
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.counters.find(name);
  if (it == s.counters.end())
    it = s.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard& s = shard_for(name);
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end())
    it = s.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Shard& s = shard_for(name);
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end())
    it = s.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  // Collect per kind into name-sorted maps (shards partition by hash, so a
  // merge across shards is needed to restore global name order).
  std::map<std::string, MetricSample> counters;
  std::map<std::string, MetricSample> gauges;
  std::map<std::string, MetricSample> histograms;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [name, c] : shard->counters) {
      MetricSample m;
      m.kind = MetricSample::Kind::Counter;
      m.name = name;
      m.value = static_cast<double>(c->value());
      counters.emplace(name, std::move(m));
    }
    for (const auto& [name, g] : shard->gauges) {
      MetricSample m;
      m.kind = MetricSample::Kind::Gauge;
      m.name = name;
      m.value = g->value();
      gauges.emplace(name, std::move(m));
    }
    for (const auto& [name, h] : shard->histograms) {
      MetricSample m;
      m.kind = MetricSample::Kind::Histogram;
      m.name = name;
      m.count = h->count();
      m.sum = h->sum();
      m.value = h->mean();
      for (int i = 0; i < Histogram::kBucketCount; ++i) {
        const std::uint64_t n = h->bucket(i);
        if (n > 0) m.buckets.emplace_back(Histogram::bucket_lower(i), n);
      }
      histograms.emplace(name, std::move(m));
    }
  }
  std::vector<MetricSample> out;
  out.reserve(counters.size() + gauges.size() + histograms.size());
  for (auto& [_, m] : counters) out.push_back(std::move(m));
  for (auto& [_, m] : gauges) out.push_back(std::move(m));
  for (auto& [_, m] : histograms) out.push_back(std::move(m));
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::vector<MetricSample> samples = snapshot();
  report::JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const MetricSample& m : samples)
    if (m.kind == MetricSample::Kind::Counter) w.kv(m.name, m.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const MetricSample& m : samples)
    if (m.kind == MetricSample::Kind::Gauge) w.kv(m.name, m.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const MetricSample& m : samples) {
    if (m.kind != MetricSample::Kind::Histogram) continue;
    w.key(m.name).begin_object();
    w.kv("count", static_cast<long long>(m.count));
    w.kv("sum", static_cast<long long>(m.sum));
    w.kv("mean", m.value);
    w.key("buckets").begin_array();
    for (const auto& [lower, n] : m.buckets) {
      w.begin_array();
      w.value(static_cast<long long>(lower));
      w.value(static_cast<long long>(n));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

void MetricsRegistry::reset() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [_, c] : shard->counters) c->reset();
    for (const auto& [_, g] : shard->gauges) g->reset();
    for (const auto& [_, h] : shard->histograms) h->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry(16);
  return *registry;  // never destroyed: instruments outlive static teardown
}

}  // namespace stamp::obs
