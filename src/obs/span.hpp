#pragma once
/// \file span.hpp
/// \brief Thread-local span recording: nested begin/end scopes, instant
///        events, and a process-wide recorder behind one atomic flag.
///
/// Each thread appends to its own log (one mutex per log, uncontended except
/// during snapshot), so recording never serializes threads against each
/// other. Spans nest per thread via an open-span stack; `snapshot()` merges
/// all logs into one timestamp-sorted event list for export.
///
/// The disabled default is free-ish by design: instrumented code creates
/// spans through `ScopedSpan::if_enabled`, which reads one relaxed atomic
/// and branches — no allocation, no clock read, no lock.

#include "obs/clock.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stamp::obs {

/// One recorded event, Chrome trace_event flavored.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';   ///< 'X' = complete span, 'i' = instant
  double ts_us = 0;   ///< start, microseconds since the recorder's epoch
  double dur_us = 0;  ///< duration ('X' only)
  int tid = 0;        ///< recorder-assigned thread id (1-based)
  std::vector<std::pair<std::string, double>> args;  ///< numeric annotations
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Enable/disable recording. While disabled, begin/end/instant are no-ops
  /// (so a half-open span across a disable simply never completes).
  void set_enabled(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Open a span on the calling thread. Every begin must be matched by an
  /// `end` on the same thread; nesting is per thread.
  void begin(std::string name, std::string category);
  /// Attach a numeric annotation to the innermost open span (no-op without
  /// one).
  void arg(std::string key, double value);
  /// Close the innermost open span (no-op without one).
  void end();
  /// A zero-duration marker.
  void instant(std::string name, std::string category);

  /// All completed events from every thread, sorted by (ts, tid). Open spans
  /// are not included.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Completed events recorded so far (cheaper than snapshot().size()).
  [[nodiscard]] std::size_t event_count() const;
  /// Drop all completed events and open spans; keeps thread registrations
  /// and the epoch.
  void clear();

  /// Number of distinct threads that have recorded into this recorder.
  [[nodiscard]] int thread_count() const;

  /// The process-wide recorder the instrumented subsystems report into.
  [[nodiscard]] static TraceRecorder& global();

 private:
  struct OpenSpan {
    std::string name;
    std::string category;
    double ts_us = 0;
    std::vector<std::pair<std::string, double>> args;
  };
  struct ThreadLog {
    mutable std::mutex mutex;
    int tid = 0;
    std::vector<TraceEvent> events;
    std::vector<OpenSpan> stack;
  };

  [[nodiscard]] ThreadLog& local_log();

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  int next_tid_ = 1;
  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;
  const std::uint64_t id_;  ///< distinguishes recorders reusing an address
};

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// The branch every instrumented site takes: one relaxed load. True iff the
/// process-wide recorder is enabled.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
/// Enable/disable the process-wide recorder (and the fast flag).
void set_tracing_enabled(bool on) noexcept;

/// RAII span. Inactive instances (default-constructed, or `if_enabled` with
/// tracing off) cost one branch in the destructor.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceRecorder& recorder, std::string name, std::string category)
      : recorder_(&recorder) {
    recorder.begin(std::move(name), std::move(category));
  }

  /// Record on the process-wide recorder iff tracing is enabled.
  [[nodiscard]] static ScopedSpan if_enabled(const char* name,
                                             const char* category) {
    return tracing_enabled() ? ScopedSpan(TraceRecorder::global(), name, category)
                             : ScopedSpan();
  }

  ScopedSpan(ScopedSpan&& o) noexcept : recorder_(std::exchange(o.recorder_, nullptr)) {}
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      finish();
      recorder_ = std::exchange(o.recorder_, nullptr);
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  [[nodiscard]] bool active() const noexcept { return recorder_ != nullptr; }

  /// Annotate the span (no-op when inactive).
  void arg(std::string key, double value) {
    if (recorder_) recorder_->arg(std::move(key), value);
  }

 private:
  void finish() noexcept {
    if (recorder_) {
      recorder_->end();
      recorder_ = nullptr;
    }
  }

  TraceRecorder* recorder_ = nullptr;
};

}  // namespace stamp::obs
