#pragma once
/// \file obs.hpp
/// \brief Umbrella header for the observability layer: spans, metrics,
///        exporters.
///
/// The layer is disabled by default; enabling it (`set_tracing_enabled`,
/// `set_metrics_enabled`, or `stamp::Evaluator`'s options) flips one atomic
/// flag per facility. Instrumented subsystems — the machine simulator, the
/// runtime executor, the sweep pool and cache — check that flag and record
/// into the process-wide `TraceRecorder::global()` / `MetricsRegistry::global()`.

#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
