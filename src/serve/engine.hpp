#pragma once
/// \file engine.hpp
/// \brief `ServeEngine` — the deterministic core of the evaluation server:
///        one parsed request in, one response line out.
///
/// The engine owns what every request shares: the resolved grid
/// configuration (a `SweepConfig` preset, fixed at startup — the server
/// prices points of *one* declared grid, so responses are comparable and
/// cacheable across requests and runs) and the long-lived `CostCache` in its
/// TTL/admission mode. It knows nothing about sockets, queues, workers, or
/// deadlines-as-wall-clock — the server layer (server.hpp) owns those and
/// hands the engine a per-request `CancelToken` that a deadline or drain may
/// trip; the engine honors it cooperatively between grid points.
///
/// Determinism contract: for every request kind except `stats` (which the
/// server answers itself) and a tripped cancel, `handle()` is a pure
/// function of (request, grid preset) — same bytes out on every call, under
/// any concurrency, with any fault plan armed on the *transport* sites.
/// That is the property the chaos scenario and serve-chaos CI job compare.

#include "api/evaluator.hpp"
#include "core/cancel.hpp"
#include "serve/protocol.hpp"
#include "sweep/cache.hpp"
#include "sweep/sweep.hpp"

#include <chrono>
#include <cstdint>
#include <string>

namespace stamp::serve {

struct EngineOptions {
  /// Grid preset the server prices: "tiny" or "canonical".
  std::string grid = "tiny";
  /// Shared-cache policy (sweep/cache.hpp). Defaults: modest bound with
  /// admission control on — a serving cache is a working set, not a full
  /// memoization table.
  std::size_t cache_shards = 16;
  std::size_t cache_entries_per_shard = 4096;
  std::chrono::nanoseconds cache_ttl{0};
  bool cache_admission = true;
  /// Upper bound on `end - begin` of one sweep_chunk request: a chunk is a
  /// unit of admission-controlled work, not a whole sweep.
  std::uint64_t max_chunk_points = 4096;
};

class ServeEngine {
 public:
  /// Throws std::invalid_argument for an unknown grid preset.
  explicit ServeEngine(const EngineOptions& options);

  /// Execute one request and return its response line (no trailing '\n').
  /// Never throws for request-shaped problems — those become 400/500
  /// response lines; `cancel` tripping mid-evaluation becomes 504. `stats`
  /// requests are the server's to answer and get a 400 here.
  [[nodiscard]] std::string handle(const ServeRequest& request,
                                   const core::CancelToken* cancel);

  [[nodiscard]] const sweep::SweepConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t grid_points() const noexcept {
    return grid_points_;
  }
  [[nodiscard]] sweep::CostCache& cache() noexcept { return cache_; }

 private:
  [[nodiscard]] std::string handle_evaluate(const ServeRequest& request,
                                            const core::CancelToken* cancel);
  [[nodiscard]] std::string handle_sweep_chunk(const ServeRequest& request,
                                               const core::CancelToken* cancel);
  [[nodiscard]] std::string handle_search(const ServeRequest& request,
                                          const core::CancelToken* cancel);
  [[nodiscard]] std::string handle_best_placement(const ServeRequest& request);
  [[nodiscard]] std::string handle_burn(const ServeRequest& request,
                                        const core::CancelToken* cancel);

  EngineOptions options_;
  sweep::SweepConfig config_;
  std::vector<std::string> axis_names_;
  std::uint64_t grid_points_ = 0;
  sweep::CostCache cache_;
  Evaluator evaluator_;
};

}  // namespace stamp::serve
