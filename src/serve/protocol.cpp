#include "serve/protocol.hpp"

#include "report/json.hpp"
#include "report/json_parse.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace stamp::serve {
namespace {

using report::JsonValue;
using report::JsonWriter;

/// A numeric field that must be a non-negative integer (ids, indices,
/// millisecond durations). JSON numbers are doubles, so "integer" means
/// integral-valued and exactly representable.
std::uint64_t require_u64(const JsonValue& obj, std::string_view key,
                          std::uint64_t fallback, bool required) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required)
      throw ProtocolError("missing field '" + std::string(key) + "'");
    return fallback;
  }
  if (v->kind() != JsonValue::Kind::Number)
    throw ProtocolError("field '" + std::string(key) + "' must be a number");
  const double d = v->as_number();
  if (!(d >= 0) || d != std::floor(d) || d > 9.007199254740992e15)
    throw ProtocolError("field '" + std::string(key) +
                        "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

SearchMethod parse_method(const JsonValue& obj) {
  const JsonValue* v = obj.find("method");
  if (v == nullptr) return SearchMethod::BranchAndBound;
  if (v->kind() != JsonValue::Kind::String)
    throw ProtocolError("field 'method' must be a string");
  const std::string& m = v->as_string();
  if (m == "bnb") return SearchMethod::BranchAndBound;
  if (m == "anneal") return SearchMethod::Anneal;
  if (m == "exhaustive") return SearchMethod::Exhaustive;
  throw ProtocolError("unknown search method '" + m + "'");
}

/// The shared point payload: the record exactly as the sweep artifact
/// serializes it (params keyed by axis name, selected process count,
/// feasibility, all four metrics, classical-model predictions keyed by model
/// name), so a serve response and a sweep artifact agree bit for bit on the
/// same grid point — which is what lets the fleet coordinator journal wire
/// points and merge a byte-identical artifact.
void write_point(JsonWriter& w, std::span<const std::string> axis_names,
                 const sweep::SweepRecord& record) {
  w.begin_object();
  w.kv("index", static_cast<long long>(record.index));
  w.key("params").begin_object();
  const std::size_t naxes =
      std::min(axis_names.size(), record.params.size());
  for (std::size_t a = 0; a < naxes; ++a)
    w.kv(axis_names[a], record.params[a]);
  w.end_object();
  w.kv("processes", record.processes);
  w.kv("feasible", record.feasible);
  w.key("metrics").begin_object();
  w.kv("D", record.metrics.D);
  w.kv("PDP", record.metrics.PDP);
  w.kv("EDP", record.metrics.EDP);
  w.kv("ED2P", record.metrics.ED2P);
  w.end_object();
  w.key("models").begin_object();
  for (int k = 0; k < models::kModelKindCount; ++k)
    w.kv(models::to_string(static_cast<models::ModelKind>(k)),
         record.classical[static_cast<std::size_t>(k)]);
  w.end_object();
  w.end_object();
}

/// Every response opens the same way; key order is part of the schema.
JsonWriter& begin_response(JsonWriter& w, std::uint64_t id, int status,
                           RequestKind kind) {
  w.begin_object();
  w.kv("schema", kSchema);
  w.kv("id", static_cast<long long>(id));
  w.kv("status", status);
  w.kv("op", to_string(kind));
  return w;
}

}  // namespace

std::string_view to_string(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::Evaluate: return "evaluate";
    case RequestKind::SweepChunk: return "sweep_chunk";
    case RequestKind::Search: return "search";
    case RequestKind::BestPlacement: return "best_placement";
    case RequestKind::Burn: return "burn";
    case RequestKind::Stats: return "stats";
  }
  return "unknown";
}

namespace {
void parse_body(const JsonValue& root, ServeRequest& req);
}  // namespace

ServeRequest parse_request(std::string_view line) {
  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const report::JsonParseError& e) {
    throw ProtocolError(std::string("bad JSON: ") + e.what());
  }
  if (root.kind() != JsonValue::Kind::Object)
    throw ProtocolError("request must be a JSON object");

  ServeRequest req;
  req.id = require_u64(root, "id", 0, /*required=*/true);

  // From here on the id is known: re-tag any parse failure with it so the
  // 400 line reaches the matching client request instead of id 0.
  try {
    parse_body(root, req);
  } catch (const ProtocolError& e) {
    throw ProtocolError(e.what(), req.id);
  }
  return req;
}

namespace {

void parse_body(const JsonValue& root, ServeRequest& req) {
  const JsonValue* op = root.find("op");
  if (op == nullptr || op->kind() != JsonValue::Kind::String)
    throw ProtocolError("missing string field 'op'");
  const std::string& name = op->as_string();
  if (name == "evaluate") {
    req.kind = RequestKind::Evaluate;
    req.index = require_u64(root, "index", 0, /*required=*/true);
  } else if (name == "sweep_chunk") {
    req.kind = RequestKind::SweepChunk;
    req.begin = require_u64(root, "begin", 0, /*required=*/true);
    req.end = require_u64(root, "end", 0, /*required=*/true);
  } else if (name == "search") {
    req.kind = RequestKind::Search;
    req.method = parse_method(root);
    req.seed = require_u64(root, "seed", 1, /*required=*/false);
  } else if (name == "best_placement") {
    req.kind = RequestKind::BestPlacement;
    const std::uint64_t n =
        require_u64(root, "processes", 0, /*required=*/true);
    if (n == 0 || n > 100000)
      throw ProtocolError("field 'processes' must be in [1, 100000]");
    req.processes = static_cast<int>(n);
  } else if (name == "burn") {
    req.kind = RequestKind::Burn;
    req.busy_ms = require_u64(root, "busy_ms", 0, /*required=*/false);
  } else if (name == "stats") {
    req.kind = RequestKind::Stats;
  } else {
    throw ProtocolError("unknown op '" + name + "'");
  }
  req.deadline_ms = require_u64(root, "deadline_ms", 0, /*required=*/false);
}

}  // namespace

std::string ok_evaluate(std::uint64_t id,
                        std::span<const std::string> axis_names,
                        const sweep::SweepRecord& record) {
  std::ostringstream os;
  JsonWriter w(os);
  begin_response(w, id, 200, RequestKind::Evaluate);
  w.key("point");
  write_point(w, axis_names, record);
  w.end_object();
  return os.str();
}

std::string ok_sweep_chunk(std::uint64_t id,
                           std::span<const std::string> axis_names,
                           std::uint64_t begin,
                           std::span<const sweep::SweepRecord> records) {
  std::ostringstream os;
  JsonWriter w(os);
  begin_response(w, id, 200, RequestKind::SweepChunk);
  w.kv("begin", static_cast<long long>(begin));
  w.kv("end", static_cast<long long>(begin + records.size()));
  w.key("points").begin_array();
  for (const sweep::SweepRecord& rec : records)
    write_point(w, axis_names, rec);
  w.end_array();
  w.end_object();
  return os.str();
}

std::string ok_search(std::uint64_t id,
                      std::span<const std::string> axis_names,
                      const SearchResult& result) {
  std::ostringstream os;
  JsonWriter w(os);
  begin_response(w, id, 200, RequestKind::Search);
  w.kv("method", to_string(result.method));
  w.kv("seed", static_cast<long long>(result.seed));
  w.kv("grid_points", static_cast<long long>(result.grid_points));
  w.kv("found", result.found);
  if (result.found) {
    w.key("best");
    write_point(w, axis_names, result.best);
  }
  w.key("stats").begin_object();
  w.kv("nodes_expanded", static_cast<long long>(result.stats.nodes_expanded));
  w.kv("nodes_pruned", static_cast<long long>(result.stats.nodes_pruned));
  w.kv("leaf_blocks", static_cast<long long>(result.stats.leaf_blocks));
  w.kv("points_evaluated",
       static_cast<long long>(result.stats.points_evaluated));
  w.end_object();
  w.end_object();
  return os.str();
}

std::string ok_best_placement(std::uint64_t id, int processes,
                              const PlacementResult& result) {
  std::ostringstream os;
  JsonWriter w(os);
  begin_response(w, id, 200, RequestKind::BestPlacement);
  w.kv("processes", processes);
  w.kv("strategy", result.strategy);
  w.kv("objective_value", result.eval.objective);
  w.kv("feasible", result.eval.feasible);
  w.key("total").begin_object();
  w.kv("time", result.eval.total.time);
  w.kv("energy", result.eval.total.energy);
  w.end_object();
  w.kv("placements_examined", result.placements_examined);
  w.key("processor_of").begin_array();
  for (const int p : result.eval.placement.processor_of) w.value(p);
  w.end_array();
  w.end_object();
  return os.str();
}

std::string ok_burn(std::uint64_t id, std::uint64_t busy_ms) {
  std::ostringstream os;
  JsonWriter w(os);
  begin_response(w, id, 200, RequestKind::Burn);
  w.kv("busy_ms", static_cast<long long>(busy_ms));
  w.end_object();
  return os.str();
}

std::string error_response(std::uint64_t id, int status,
                           std::string_view message) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kSchema);
  w.kv("id", static_cast<long long>(id));
  w.kv("status", status);
  w.kv("error", message);
  w.end_object();
  return os.str();
}

}  // namespace stamp::serve
