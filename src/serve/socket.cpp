#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace stamp::serve {
namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// poll one fd for readability; true when readable, false on timeout.
/// EINTR restarts the wait (a SIGINT mid-poll is drain business, not EOF).
bool poll_readable(int fd, int timeout_ms) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // surface the error via the read
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket Socket::connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  const sockaddr_in addr = loopback(port);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno == EINTR) {
    // POSIX: a connect() interrupted by a signal keeps completing
    // asynchronously — *retrying* it yields EALREADY (or EISCONN once
    // established), which would read as failure. Wait for writability and
    // take the verdict from SO_ERROR instead.
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    int prc;
    do {
      prc = ::poll(&p, 1, 60000);
    } while (prc < 0 && errno == EINTR);
    int err = 0;
    socklen_t len = sizeof err;
    if (prc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return Socket{};
    }
    rc = 0;
  }
  if (rc < 0) {
    ::close(fd);
    return Socket{};
  }
  // Requests are single small lines that want answering now, not batching.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

Socket::ReadStatus Socket::read_line(std::string& out, int timeout_ms,
                                     std::size_t max_line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::Line;
    }
    if (buffer_.size() > max_line) return ReadStatus::Error;
    if (fd_ < 0) return ReadStatus::Error;
    if (!poll_readable(fd_, timeout_ms)) return ReadStatus::Timeout;
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n == 0) return buffer_.empty() ? ReadStatus::Eof : ReadStatus::Error;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ReadStatus::Error;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Socket::write_all(std::string_view data) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n;
    do {
      // MSG_NOSIGNAL: a vanished peer is a false return, never a SIGPIPE —
      // the server must not depend on the tool having ignored the signal.
      n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::open(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = loopback(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string what =
        std::string("serve: bind(127.0.0.1:") + std::to_string(port) +
        ") failed: " + std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(what);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string what =
        std::string("serve: listen() failed: ") + std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(what);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string what =
        std::string("serve: getsockname() failed: ") + std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(what);
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<Socket> Listener::accept_for(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!poll_readable(fd_, timeout_ms)) return std::nullopt;
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

}  // namespace stamp::serve
