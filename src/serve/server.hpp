#pragma once
/// \file server.hpp
/// \brief The long-running evaluation server: admission control over a
///        bounded queue, per-request deadlines, supervised workers, and
///        graceful drain.
///
/// Thread anatomy (all owned by `Server`):
///
///   accept loop ── one thread polling the listener; each connection gets a
///                  reader thread.
///   readers     ── parse request lines and *admit* them: a
///                  `msg::BoundedMailbox<Job>` is the only path to the
///                  workers, so a full queue is an explicit `503 overloaded`
///                  response, never unbounded memory. Admission runs under a
///                  `fault::ActorScope` keyed by the request id, so the
///                  mailbox's injected drop/delay/duplicate faults follow
///                  the request deterministically.
///   workers     ── `receive()` jobs and execute them on the shared
///                  `ServeEngine`, supervised: an injected
///                  `ServeWorkerFail` crash is caught and the job re-placed
///                  (retried) under `fault::RetryPolicy`; only an exhausted
///                  budget surfaces as a 500.
///   deadline    ── one timer thread holding a min-heap of (deadline,
///                  CancelToken); an overdue request's token is tripped and
///                  the evaluation bails out cooperatively into a 504.
///
/// `drain()` is the graceful-shutdown contract the tools wire to
/// SIGINT/SIGTERM: stop accepting (new connections *and* new requests),
/// close the mailbox, let the workers finish every admitted job, join
/// everything, then close the connections. Safe to call twice; the
/// destructor calls it as a backstop.

#include "core/cancel.hpp"
#include "fault/retry.hpp"
#include "msg/bounded_mailbox.hpp"
#include "serve/engine.hpp"
#include "serve/socket.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace stamp::serve {

struct ServerOptions {
  /// 0 = ephemeral; read the real port back with `port()`.
  std::uint16_t port = 0;
  int workers = 2;
  /// Capacity of the admission queue (jobs admitted but not yet executing).
  std::size_t queue_depth = 64;
  /// Per-request deadline when the request carries none; 0 = no deadline.
  std::chrono::milliseconds default_deadline{0};
  /// How long a reader waits for queue space before rejecting with 503.
  /// Zero still goes through the waiting send path (so the fault hooks and
  /// close semantics apply), it just never sleeps.
  std::chrono::milliseconds admission_wait{0};
  /// Worker supervision: retry budget/backoff for crashed attempts.
  fault::RetryPolicy supervision = fault::RetryPolicy::bounded(3);
  EngineOptions engine{};
};

/// Monotonic counters, all exact. `stats` responses and the drained metrics
/// flush read these.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;           ///< parsed request lines
  std::uint64_t accepted = 0;           ///< admitted to the queue
  std::uint64_t rejected_overload = 0;  ///< 503: queue full
  std::uint64_t rejected_draining = 0;  ///< 503: drain in progress
  std::uint64_t bad_requests = 0;       ///< 400 at the protocol layer
  std::uint64_t deadline_hits = 0;      ///< 504s
  std::uint64_t worker_restarts = 0;    ///< supervised crash retries
  std::uint64_t responses = 0;          ///< lines successfully written
  std::uint64_t write_errors = 0;       ///< responses lost to a gone peer
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, then spawn the worker/deadline/accept threads. Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  /// The bound port (valid after `start()`).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown; see the file comment. Idempotent.
  void drain();

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] ServeEngine& engine() noexcept { return engine_; }

 private:
  /// One connection shared between its reader thread and the jobs in
  /// flight; the write mutex serializes response lines from workers.
  struct Conn {
    explicit Conn(Socket s) : sock(std::move(s)) {}
    Socket sock;
    std::mutex write_mutex;
  };

  struct Job {
    ServeRequest request;
    std::shared_ptr<Conn> conn;
    std::shared_ptr<core::CancelToken> cancel;
  };

  /// Min-heap timer thread tripping request CancelTokens at their deadline.
  class DeadlineScheduler {
   public:
    void start();
    void stop();
    void add(std::chrono::steady_clock::time_point when,
             std::shared_ptr<core::CancelToken> token);

   private:
    struct Item {
      std::chrono::steady_clock::time_point when;
      std::shared_ptr<core::CancelToken> token;
      bool operator>(const Item& other) const noexcept {
        return when > other.when;
      }
    };
    void loop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap_;
    bool stop_ = false;
    std::thread thread_;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Conn>& conn);
  void worker_loop();
  void admit(const ServeRequest& request, const std::shared_ptr<Conn>& conn);
  void execute(Job& job);
  void respond(Conn& conn, const std::string& line);
  [[nodiscard]] std::string stats_response(std::uint64_t id);

  ServerOptions options_;
  ServeEngine engine_;
  msg::BoundedMailbox<Job> mailbox_;
  DeadlineScheduler deadlines_;
  Listener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool drained_ = false;
  std::mutex lifecycle_mutex_;  ///< serializes start/drain

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;

  struct AtomicStats {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_overload{0};
    std::atomic<std::uint64_t> rejected_draining{0};
    std::atomic<std::uint64_t> bad_requests{0};
    std::atomic<std::uint64_t> deadline_hits{0};
    std::atomic<std::uint64_t> worker_restarts{0};
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> write_errors{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace stamp::serve
