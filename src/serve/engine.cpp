#include "serve/engine.hpp"

#include "fault/retry.hpp"
#include "obs/span.hpp"
#include "sweep/batch.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stamp::serve {
namespace {

sweep::SweepConfig resolve_grid(const std::string& name,
                                std::size_t cache_entries_per_shard) {
  sweep::SweepConfig cfg;
  if (name == "tiny") {
    cfg = sweep::SweepConfig::tiny();
  } else if (name == "canonical") {
    cfg = sweep::SweepConfig::canonical();
  } else {
    throw std::invalid_argument("serve: unknown grid preset '" + name +
                                "' (expected tiny|canonical)");
  }
  // The engine owns a policy cache; the config's own per-sweep bound must
  // not fight it (BatchEvaluator reads the cache it is handed, not this).
  cfg.cache_entries_per_shard = cache_entries_per_shard;
  return cfg;
}

sweep::CacheOptions cache_options(const EngineOptions& options) {
  sweep::CacheOptions cache;
  cache.shards = options.cache_shards;
  cache.max_entries_per_shard = options.cache_entries_per_shard;
  cache.ttl = options.cache_ttl;
  cache.admission = options.cache_admission;
  return cache;
}

EvaluatorOptions evaluator_options(const sweep::SweepConfig& cfg) {
  EvaluatorOptions options;
  options.machine = cfg.base;
  options.objective = cfg.objective;
  return options;
}

bool tripped(const core::CancelToken* cancel) noexcept {
  return cancel != nullptr && cancel->cancelled();
}

}  // namespace

ServeEngine::ServeEngine(const EngineOptions& options)
    : options_(options),
      config_(resolve_grid(options.grid, options.cache_entries_per_shard)),
      cache_(cache_options(options)),
      evaluator_(evaluator_options(config_)) {
  grid_points_ = config_.grid.size();
  axis_names_.reserve(config_.grid.axes().size());
  for (const sweep::GridAxis& axis : config_.grid.axes())
    axis_names_.push_back(axis.name);
}

std::string ServeEngine::handle(const ServeRequest& request,
                                const core::CancelToken* cancel) {
  // to_string returns string literals, so .data() is null-terminated.
  const obs::ScopedSpan span =
      obs::ScopedSpan::if_enabled(to_string(request.kind).data(), "serve");
  try {
    switch (request.kind) {
      case RequestKind::Evaluate:
        return handle_evaluate(request, cancel);
      case RequestKind::SweepChunk:
        return handle_sweep_chunk(request, cancel);
      case RequestKind::Search:
        return handle_search(request, cancel);
      case RequestKind::BestPlacement:
        return handle_best_placement(request);
      case RequestKind::Burn:
        return handle_burn(request, cancel);
      case RequestKind::Stats:
        // Queue depth and acceptance counters live in the server layer; an
        // engine asked directly has nothing truthful to say.
        return error_response(request.id, 400,
                              "stats is answered by the server");
    }
    return error_response(request.id, 400, "unknown op");
  } catch (const fault::DeadlineExceeded&) {
    return error_response(request.id, 504, "deadline exceeded");
  } catch (const std::invalid_argument& e) {
    return error_response(request.id, 400, e.what());
  } catch (const std::out_of_range& e) {
    return error_response(request.id, 400, e.what());
  } catch (const std::exception& e) {
    return error_response(request.id, 500, e.what());
  }
}

std::string ServeEngine::handle_evaluate(const ServeRequest& request,
                                         const core::CancelToken* cancel) {
  if (request.index >= grid_points_)
    return error_response(request.id, 400, "index out of range");
  const auto index = static_cast<std::size_t>(request.index);
  std::vector<sweep::SweepRecord> records(1);
  sweep::SweepOptions options;
  options.cancel = cancel;
  sweep::BatchEvaluator evaluator(config_, cache_, options,
                                  /*record_offset=*/index);
  static_cast<void>(evaluator.run_range(index, index + 1, records,
                                        /*fail_fast=*/true, nullptr, nullptr));
  if (tripped(cancel))
    return error_response(request.id, 504, "deadline exceeded");
  return ok_evaluate(request.id, axis_names_, records.front());
}

std::string ServeEngine::handle_sweep_chunk(const ServeRequest& request,
                                            const core::CancelToken* cancel) {
  if (request.begin > request.end || request.end > grid_points_)
    return error_response(request.id, 400, "bad chunk range");
  if (request.end - request.begin > options_.max_chunk_points)
    return error_response(request.id, 400, "chunk too large");
  const auto begin = static_cast<std::size_t>(request.begin);
  const auto end = static_cast<std::size_t>(request.end);
  std::vector<sweep::SweepRecord> records(end - begin);
  sweep::SweepOptions options;
  options.cancel = cancel;
  sweep::BatchEvaluator evaluator(config_, cache_, options,
                                  /*record_offset=*/begin);
  static_cast<void>(evaluator.run_range(begin, end, records,
                                        /*fail_fast=*/true, nullptr, nullptr));
  if (tripped(cancel))
    return error_response(request.id, 504, "deadline exceeded");
  return ok_sweep_chunk(request.id, axis_names_, request.begin, records);
}

std::string ServeEngine::handle_search(const ServeRequest& request,
                                       const core::CancelToken* cancel) {
  SearchRequest search;
  search.config = config_;
  search.method = request.method;
  search.seed = request.seed;
  search.threads = 1;
  search.record_trace = false;
  search.cancel = cancel;
  const SearchResult result = evaluator_.optimize(search);
  if (result.cancelled)
    return error_response(request.id, 504, "deadline exceeded");
  return ok_search(request.id, axis_names_, result);
}

std::string ServeEngine::handle_best_placement(const ServeRequest& request) {
  const std::vector<ProcessProfile> profiles(
      static_cast<std::size_t>(request.processes),
      sweep::strong_scaled(config_.profile, request.processes));
  const PlacementResult result = evaluator_.best_placement(profiles);
  return ok_best_placement(request.id, request.processes, result);
}

std::string ServeEngine::handle_burn(const ServeRequest& request,
                                     const core::CancelToken* cancel) {
  // A load-generator op: occupy this worker for busy_ms, yielding to the
  // cancel token — it is how the overload and deadline paths are exercised
  // without depending on how fast the model evaluates on a given machine.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(request.busy_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (tripped(cancel))
      return error_response(request.id, 504, "deadline exceeded");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (tripped(cancel))
    return error_response(request.id, 504, "deadline exceeded");
  return ok_burn(request.id, request.busy_ms);
}

}  // namespace stamp::serve
