#pragma once
/// \file protocol.hpp
/// \brief The `stamp-serve/v1` wire protocol: newline-delimited JSON
///        requests and responses, parsed with `report::JsonValue` and
///        emitted with `report::JsonWriter`.
///
/// One request per line, one response line per request. Responses carry the
/// request's `id` (clients pipeline and match on it), an HTTP-flavoured
/// `status`, and a fixed key order — the response for a given request is a
/// pure function of the request and the server's grid configuration, byte
/// for byte, which is what the chaos harness and the serve-chaos CI job
/// `cmp` against an uninjected run.
///
/// Requests:
///   {"id":1,"op":"evaluate","index":5}
///   {"id":2,"op":"sweep_chunk","begin":0,"end":16}
///   {"id":3,"op":"search","method":"bnb","seed":7}
///   {"id":4,"op":"best_placement","processes":8}
///   {"id":5,"op":"burn","busy_ms":50}          (load generator)
///   {"id":6,"op":"stats"}                      (not byte-stable; excluded
///                                               from identity checks)
/// Any request may add "deadline_ms" to override the server default.
///
/// Statuses: 200 ok · 400 bad request · 500 internal error ·
/// 503 overloaded / draining (admission control) · 504 deadline exceeded.

#include "api/search_types.hpp"
#include "core/placement.hpp"
#include "sweep/sweep.hpp"

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stamp::serve {

inline constexpr std::string_view kSchema = "stamp-serve/v1";

/// Thrown by `parse_request` on malformed input; the message becomes the
/// 400 response body. Carries the request id when the line got far enough to
/// have one, so the error response still reaches the right client request
/// (a pipelining client matches responses by id; an id-less 400 would leave
/// it retrying a request the server will never accept).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what, std::uint64_t id = 0)
      : std::runtime_error(what), id_(id) {}
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_ = 0;
};

enum class RequestKind {
  Evaluate,
  SweepChunk,
  Search,
  BestPlacement,
  Burn,
  Stats,
};

[[nodiscard]] std::string_view to_string(RequestKind k) noexcept;

/// One parsed request. Fields beyond `id`/`kind` are meaningful per kind.
struct ServeRequest {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::Evaluate;
  std::uint64_t index = 0;             ///< evaluate: grid index
  std::uint64_t begin = 0;             ///< sweep_chunk: first grid index
  std::uint64_t end = 0;               ///< sweep_chunk: one past the last
  SearchMethod method = SearchMethod::BranchAndBound;  ///< search
  std::uint64_t seed = 1;              ///< search
  int processes = 1;                   ///< best_placement
  std::uint64_t busy_ms = 0;           ///< burn: how long to occupy a worker
  std::uint64_t deadline_ms = 0;       ///< 0 = server default
};

/// Parse one request line. Throws ProtocolError on anything malformed (bad
/// JSON, unknown op, missing or mistyped fields, non-integral numbers).
[[nodiscard]] ServeRequest parse_request(std::string_view line);

// -- responses (each returns one line WITHOUT the trailing '\n') -------------

[[nodiscard]] std::string ok_evaluate(std::uint64_t id,
                                      std::span<const std::string> axis_names,
                                      const sweep::SweepRecord& record);

[[nodiscard]] std::string ok_sweep_chunk(
    std::uint64_t id, std::span<const std::string> axis_names,
    std::uint64_t begin, std::span<const sweep::SweepRecord> records);

[[nodiscard]] std::string ok_search(std::uint64_t id,
                                    std::span<const std::string> axis_names,
                                    const SearchResult& result);

[[nodiscard]] std::string ok_best_placement(std::uint64_t id, int processes,
                                            const PlacementResult& result);

[[nodiscard]] std::string ok_burn(std::uint64_t id, std::uint64_t busy_ms);

/// An error line: {"schema":...,"id":N,"status":S,"error":"..."}.
[[nodiscard]] std::string error_response(std::uint64_t id, int status,
                                         std::string_view message);

}  // namespace stamp::serve
