#pragma once
/// \file serve.hpp
/// \brief Umbrella header for the serving layer: socket plumbing, the
///        stamp-serve/v1 protocol, the deterministic request engine, and the
///        supervised server.

#include "serve/engine.hpp"    // IWYU pragma: export
#include "serve/protocol.hpp"  // IWYU pragma: export
#include "serve/server.hpp"    // IWYU pragma: export
#include "serve/socket.hpp"    // IWYU pragma: export
