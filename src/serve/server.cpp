#include "serve/server.hpp"

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "report/json.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace stamp::serve {
namespace {

/// The injected fail-stop of a serve worker attempt. Internal to the
/// supervision loop: a crash is always caught there, so it never crosses the
/// module boundary.
class WorkerCrash : public std::runtime_error {
 public:
  explicit WorkerCrash(std::uint64_t request)
      : std::runtime_error("injected worker crash on request " +
                           std::to_string(request)) {}
};

/// Fires the ServeWorkerFail site (keyed by request id) when armed.
void maybe_crash(std::uint64_t request_id) {
  if (!fault::injection_enabled()) return;
  if (fault::Injector::current().decide(fault::FaultSite::ServeWorkerFail,
                                       request_id))
    throw WorkerCrash(request_id);
}

void count_metric(const char* name) {
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global().counter(name).add();
}

constexpr int kPollMs = 100;  ///< loop granularity for noticing drain

}  // namespace

// -- DeadlineScheduler --------------------------------------------------------

void Server::DeadlineScheduler::start() {
  thread_ = std::thread([this] { loop(); });
}

void Server::DeadlineScheduler::stop() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Server::DeadlineScheduler::add(
    std::chrono::steady_clock::time_point when,
    std::shared_ptr<core::CancelToken> token) {
  {
    const std::scoped_lock lock(mutex_);
    heap_.push(Item{when, std::move(token)});
  }
  cv_.notify_one();
}

void Server::DeadlineScheduler::loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stop_) return;
    if (heap_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (heap_.top().when <= now) {
      // request_cancel is one atomic store — cheap enough to do under the
      // lock, and doing so keeps the heap pop atomic with the trip.
      heap_.top().token->request_cancel();
      count_metric("serve.deadline");
      heap_.pop();
      continue;
    }
    cv_.wait_until(lock, heap_.top().when);
  }
}

// -- Server -------------------------------------------------------------------

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      engine_(options_.engine),
      mailbox_(options_.queue_depth == 0 ? 1 : options_.queue_depth) {
  if (options_.workers < 1) options_.workers = 1;
  options_.supervision.validate();
}

Server::~Server() { drain(); }

void Server::start() {
  const std::scoped_lock lock(lifecycle_mutex_);
  if (started_) return;
  listener_ = Listener::open(options_.port);
  port_ = listener_.local_port();
  deadlines_.start();
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::drain() {
  const std::scoped_lock lock(lifecycle_mutex_);
  if (!started_ || drained_) return;
  draining_.store(true, std::memory_order_relaxed);

  // 1. No new connections: the accept loop notices the flag within one poll.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // 2. No new requests: readers notice the flag within one poll and exit;
  //    every request they already admitted is safely in the mailbox.
  for (std::thread& reader : readers_)
    if (reader.joinable()) reader.join();
  readers_.clear();

  // 3. Finish in-flight: close the mailbox — workers drain the remaining
  //    queue, then receive() throws and they exit.
  mailbox_.close();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();

  deadlines_.stop();

  // 4. Only now hang up: every admitted job has had its response written.
  {
    const std::scoped_lock conns_lock(conns_mutex_);
    for (const std::shared_ptr<Conn>& conn : conns_) {
      conn->sock.shutdown_both();
      conn->sock.close();
    }
    conns_.clear();
  }

  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .gauge("serve.queue_depth")
        .set(0.0);
  }
  drained_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = stats_.connections.load(std::memory_order_relaxed);
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.rejected_overload =
      stats_.rejected_overload.load(std::memory_order_relaxed);
  s.rejected_draining =
      stats_.rejected_draining.load(std::memory_order_relaxed);
  s.bad_requests = stats_.bad_requests.load(std::memory_order_relaxed);
  s.deadline_hits = stats_.deadline_hits.load(std::memory_order_relaxed);
  s.worker_restarts = stats_.worker_restarts.load(std::memory_order_relaxed);
  s.responses = stats_.responses.load(std::memory_order_relaxed);
  s.write_errors = stats_.write_errors.load(std::memory_order_relaxed);
  return s;
}

void Server::accept_loop() {
  while (!draining()) {
    std::optional<Socket> sock = listener_.accept_for(kPollMs);
    if (!sock.has_value()) continue;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    count_metric("serve.accept");
    auto conn = std::make_shared<Conn>(std::move(*sock));
    const std::scoped_lock lock(conns_mutex_);
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Conn>& conn) {
  std::string line;
  while (!draining()) {
    const Socket::ReadStatus status =
        conn->sock.read_line(line, kPollMs);
    if (status == Socket::ReadStatus::Timeout) continue;
    if (status != Socket::ReadStatus::Line) return;  // EOF or error: hang up
    if (line.empty()) continue;

    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    ServeRequest request;
    try {
      request = parse_request(line);
    } catch (const ProtocolError& e) {
      stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      respond(*conn, error_response(e.id(), 400, e.what()));
      continue;
    }
    if (request.kind == RequestKind::Stats) {
      // Answered inline: stats must stay observable even when the queue is
      // jammed — that is exactly when an operator asks.
      respond(*conn, stats_response(request.id));
      continue;
    }
    admit(request, conn);
  }
}

void Server::admit(const ServeRequest& request,
                   const std::shared_ptr<Conn>& conn) {
  Job job;
  job.request = request;
  job.conn = conn;
  job.cancel = std::make_shared<core::CancelToken>();

  const std::uint64_t deadline_ms =
      request.deadline_ms != 0
          ? request.deadline_ms
          : static_cast<std::uint64_t>(options_.default_deadline.count());
  if (deadline_ms != 0)
    deadlines_.add(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(deadline_ms),
                   job.cancel);

  // The actor scope keys the mailbox's injected drop/delay/duplicate
  // decisions by request id: the fault schedule follows the request, not
  // the reader thread — same seed, same faults, any concurrency.
  const fault::ActorScope actor(request.id);
  try {
    const bool queued = mailbox_.send_for(job, options_.admission_wait);
    if (!queued) {
      stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      count_metric("serve.reject");
      respond(*conn, error_response(request.id, 503, "overloaded"));
      return;
    }
  } catch (const msg::BoundedMailboxClosed&) {
    stats_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
    count_metric("serve.reject");
    respond(*conn, error_response(request.id, 503, "draining"));
    return;
  }
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled())
    obs::MetricsRegistry::global()
        .gauge("serve.queue_depth")
        .set(static_cast<double>(mailbox_.size()));
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    try {
      job = mailbox_.receive();
    } catch (const msg::BoundedMailboxClosed&) {
      return;  // drained and closed: done
    }
    if (obs::metrics_enabled())
      obs::MetricsRegistry::global()
          .gauge("serve.queue_depth")
          .set(static_cast<double>(mailbox_.size()));
    execute(job);
  }
}

void Server::execute(Job& job) {
  const std::uint64_t id = job.request.id;
  std::string response;
  if (job.cancel->cancelled()) {
    // Expired while queued: don't burn a worker on a request nobody is
    // waiting for.
    stats_.deadline_hits.fetch_add(1, std::memory_order_relaxed);
    response = error_response(id, 504, "deadline exceeded");
  } else {
    fault::RetryState retry(options_.supervision, /*stream=*/id);
    for (;;) {
      try {
        maybe_crash(id);
        response = engine_.handle(job.request, job.cancel.get());
        break;
      } catch (const WorkerCrash&) {
        // Supervision: the attempt died, the worker survives, the job is
        // re-placed. Determinism holds because the engine is a pure
        // function of the request — a retried attempt produces the same
        // bytes the first attempt would have.
        stats_.worker_restarts.fetch_add(1, std::memory_order_relaxed);
        count_metric("serve.worker_restart");
        if (!retry.allow_retry()) {
          response = error_response(id, 500, "worker crashed");
          break;
        }
        retry.backoff();
      } catch (const std::exception& e) {
        // engine.handle maps its own failures; this is the last-resort net
        // that keeps a worker thread alive no matter what.
        response = error_response(id, 500, e.what());
        break;
      }
    }
    if (job.cancel->cancelled() &&
        response.find("\"status\":504") != std::string::npos)
      stats_.deadline_hits.fetch_add(1, std::memory_order_relaxed);
  }
  respond(*job.conn, response);
}

void Server::respond(Conn& conn, const std::string& line) {
  const std::scoped_lock lock(conn.write_mutex);
  if (conn.sock.write_all(line) && conn.sock.write_all("\n")) {
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    count_metric("serve.respond");
  } else {
    stats_.write_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string Server::stats_response(std::uint64_t id) {
  const ServerStats s = stats();
  sweep::CostCache& cache = engine_.cache();
  std::ostringstream os;
  report::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kSchema);
  w.kv("id", static_cast<long long>(id));
  w.kv("status", 200);
  w.kv("op", "stats");
  w.kv("queue_depth", static_cast<long long>(mailbox_.size()));
  w.kv("queue_capacity", static_cast<long long>(mailbox_.capacity()));
  w.kv("connections", static_cast<long long>(s.connections));
  w.kv("requests", static_cast<long long>(s.requests));
  w.kv("accepted", static_cast<long long>(s.accepted));
  w.kv("rejected_overload", static_cast<long long>(s.rejected_overload));
  w.kv("rejected_draining", static_cast<long long>(s.rejected_draining));
  w.kv("bad_requests", static_cast<long long>(s.bad_requests));
  w.kv("deadline_hits", static_cast<long long>(s.deadline_hits));
  w.kv("worker_restarts", static_cast<long long>(s.worker_restarts));
  w.kv("responses", static_cast<long long>(s.responses));
  w.kv("write_errors", static_cast<long long>(s.write_errors));
  w.key("cache").begin_object();
  w.kv("hits", static_cast<long long>(cache.hits()));
  w.kv("misses", static_cast<long long>(cache.misses()));
  w.kv("evictions", static_cast<long long>(cache.evictions()));
  w.kv("expirations", static_cast<long long>(cache.expirations()));
  w.kv("admission_rejections",
       static_cast<long long>(cache.admission_rejections()));
  w.kv("size", static_cast<long long>(cache.size()));
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace stamp::serve
