#pragma once
/// \file socket.hpp
/// \brief Minimal RAII TCP plumbing for the evaluation server — loopback
///        only, line-oriented, poll-based timeouts.
///
/// The serve protocol (protocol.hpp) is newline-delimited JSON, so the
/// socket layer exposes exactly two operations: read one '\n'-terminated
/// line (buffered, with a poll timeout so reader threads can notice a drain
/// request without being parked in `read(2)` forever) and write a whole
/// buffer (looped over partial writes and EINTR). Everything binds to
/// 127.0.0.1 — the server is an in-host evaluation sidecar, not an
/// internet-facing daemon — and `port 0` requests an ephemeral port the
/// caller reads back via `local_port()`, which is what lets tests and CI run
/// many servers concurrently without coordinating port numbers.
///
/// Timeouts use `poll(2)` rather than socket options so a single Socket can
/// mix waits of different lengths, and so EINTR (signals are part of the
/// drain path) never turns into a spurious EOF.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stamp::serve {

/// One connected TCP stream, owned. Move-only; the destructor closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Connect to 127.0.0.1:`port`. Returns an invalid Socket on failure.
  [[nodiscard]] static Socket connect_to(std::uint16_t port);

  /// One step of reading a line: what happened within the timeout.
  enum class ReadStatus {
    Line,     ///< `out` holds one complete line (without the '\n')
    Timeout,  ///< nothing arrived within the poll timeout; call again
    Eof,      ///< peer closed cleanly with no partial line pending
    Error,    ///< read error (or a partial line truncated by EOF)
  };

  /// Read the next newline-terminated line, waiting at most `timeout_ms`
  /// for *progress* (each poll wakeup restarts the wait — a deadline is the
  /// caller's loop, which is the point: the loop checks the drain flag).
  /// Lines longer than `max_line` bytes are an Error, not a hang: a
  /// misbehaving client cannot balloon server memory.
  [[nodiscard]] ReadStatus read_line(std::string& out, int timeout_ms,
                                     std::size_t max_line = 1 << 20);

  /// Write the whole buffer, looping over partial writes and EINTR.
  /// False on any write error (peer gone, EPIPE); the connection is then
  /// useless and the caller should drop it.
  [[nodiscard]] bool write_all(std::string_view data);

  /// `shutdown(2)` both directions: a reader blocked in poll on this socket
  /// wakes up with EOF. Used by drain to unstick connection readers.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received but not yet returned as lines
};

/// A listening TCP socket on 127.0.0.1. Move-only.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral). Throws
  /// std::runtime_error with the errno text on failure — a server that
  /// cannot bind must fail loudly at startup, not limp.
  [[nodiscard]] static Listener open(std::uint16_t port, int backlog = 64);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// The bound port (resolves an ephemeral request to the real number).
  [[nodiscard]] std::uint16_t local_port() const noexcept { return port_; }

  /// Wait up to `timeout_ms` for one connection. nullopt on timeout or on a
  /// transient accept error — the accept loop just polls again, which is
  /// how it periodically notices the drain flag.
  [[nodiscard]] std::optional<Socket> accept_for(int timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace stamp::serve
