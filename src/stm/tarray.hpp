#pragma once
/// \file tarray.hpp
/// \brief A transactional array: a fixed-size sequence of TVars with
///        whole-structure transactional operations.
///
/// Useful for STAMP algorithms whose shared state is a vector updated under
/// trans_exec (e.g. shared histograms, account tables). Element access
/// composes with any enclosing transaction; the convenience methods run
/// their own transaction through an StmRuntime.

#include "stm/stm_runtime.hpp"
#include "stm/tvar.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace stamp::stm {

template <typename T>
class TArray {
 public:
  TArray(std::size_t size, T initial = T{}) {
    if (size == 0) throw std::invalid_argument("TArray: empty");
    vars_.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
      vars_.push_back(std::make_unique<TVar<T>>(initial));
  }

  TArray(const TArray&) = delete;
  TArray& operator=(const TArray&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return vars_.size(); }

  /// Element TVar for composing into a larger transaction.
  [[nodiscard]] TVar<T>& var(std::size_t i) { return *vars_.at(i); }

  /// Transactional read of one element within an existing transaction.
  [[nodiscard]] T get(Transaction& tx, std::size_t i) {
    return tx.read(var(i));
  }

  /// Transactional write of one element within an existing transaction.
  void set(Transaction& tx, std::size_t i, T value) {
    tx.write(var(i), value);
  }

  /// Atomic snapshot of the whole array (one transaction).
  [[nodiscard]] std::vector<T> snapshot(runtime::Context& ctx, StmRuntime& rt) {
    return rt.atomically(ctx, [&](Transaction& tx) {
      std::vector<T> values;
      values.reserve(vars_.size());
      for (auto& v : vars_) values.push_back(tx.read(*v));
      return values;
    });
  }

  /// Atomically apply `f` to one element.
  template <typename F>
  void update(runtime::Context& ctx, StmRuntime& rt, std::size_t i, F&& f) {
    rt.atomically(ctx, [&](Transaction& tx) {
      T value = tx.read(var(i));
      f(value);
      tx.write(var(i), value);
      return true;
    });
  }

  /// Atomically move `amount` from element `from` to element `to` — the
  /// array-level version of the paper's transfer.
  void transfer(runtime::Context& ctx, StmRuntime& rt, std::size_t from,
                std::size_t to, T amount) {
    if (from == to) return;
    rt.atomically(ctx, [&](Transaction& tx) {
      tx.write(var(from), tx.read(var(from)) - amount);
      tx.write(var(to), tx.read(var(to)) + amount);
      return true;
    });
  }

  /// Atomic fold over the whole array.
  template <typename Acc, typename F>
  [[nodiscard]] Acc fold(runtime::Context& ctx, StmRuntime& rt, Acc init,
                         F&& f) {
    return rt.atomically(ctx, [&](Transaction& tx) {
      Acc acc = init;
      for (auto& v : vars_) acc = f(acc, tx.read(*v));
      return acc;
    });
  }

  /// Uninstrumented per-element peek (post-run verification only).
  [[nodiscard]] T peek(std::size_t i) const { return vars_.at(i)->peek(); }

 private:
  std::vector<std::unique_ptr<TVar<T>>> vars_;
};

}  // namespace stamp::stm
