#pragma once
/// \file transaction.hpp
/// \brief The transaction object: optimistic reads, buffered writes, and the
///        two-phase (lock, validate, write-back) commit of the TL2 protocol.

#include "stm/tvar.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace stamp::stm {

/// Internal control-flow exception: the attempt conflicted and must retry.
/// Never escapes `atomically`.
struct TxConflict {};

/// Control-flow exception thrown by Transaction::cancel(): the program chose
/// to abandon the transaction (business-level failure). `try_atomically`
/// turns it into an empty optional.
struct TxCancelled {};

/// Thrown on API misuse (e.g. operating on a finished transaction).
class TxUsageError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// One attempt of a memory transaction. Created and committed by
/// `atomically`; user code only calls read / write / cancel.
class Transaction {
 public:
  /// Largest TVar value type supported (inline write-buffer size).
  static constexpr std::size_t kMaxValueSize = 16;

  explicit Transaction(std::atomic<std::uint64_t>& clock)
      : clock_(&clock), rv_(clock.load(std::memory_order_acquire)) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Transactional read.
  template <typename T>
  [[nodiscard]] T read(TVar<T>& var) {
    static_assert(sizeof(T) <= kMaxValueSize, "value too large for TVar");
    // Read-own-write: the transaction sees its buffered value.
    if (const WriteEntry* e = find_write(&var)) {
      T value;
      std::memcpy(&value, e->buffer, sizeof(T));
      return value;
    }
    const std::uint64_t pre = var.lock().sample();
    if (VersionedLock::is_locked(pre)) throw TxConflict{};
    const T value = var.load_unvalidated();
    const std::uint64_t post = var.lock().sample();
    if (pre != post || VersionedLock::version_of(pre) > rv_) throw TxConflict{};
    read_set_.push_back(&var.lock());
    ++reads_;
    return value;
  }

  /// Transactional write (buffered until commit).
  template <typename T>
  void write(TVar<T>& var, T value) {
    static_assert(sizeof(T) <= kMaxValueSize, "value too large for TVar");
    if (WriteEntry* e = find_write(&var)) {
      std::memcpy(e->buffer, &value, sizeof(T));
      return;
    }
    WriteEntry e;
    e.var = &var;
    std::memcpy(e.buffer, &value, sizeof(T));
    e.apply = +[](TVarBase* v, const std::byte* buf) {
      T typed;
      std::memcpy(&typed, buf, sizeof(T));
      static_cast<TVar<T>*>(v)->store_committed(typed);
    };
    write_set_.push_back(e);
    ++writes_;
  }

  /// Read-modify-write convenience.
  template <typename T, typename F>
  void modify(TVar<T>& var, F&& f) {
    T value = read(var);
    f(value);
    write(var, value);
  }

  /// Abandon the transaction: releases nothing (no locks are held outside
  /// commit), buffers are discarded by the caller. Throws TxCancelled.
  [[noreturn]] void cancel() { throw TxCancelled{}; }

  /// Number of reads performed so far in this attempt.
  [[nodiscard]] std::size_t reads() const noexcept { return reads_; }
  /// Number of distinct variables written so far in this attempt.
  [[nodiscard]] std::size_t writes() const noexcept { return write_set_.size(); }
  [[nodiscard]] std::uint64_t read_version() const noexcept { return rv_; }

  /// Marker for closed nesting: snapshot the write-set size so a
  /// subtransaction can be rolled back without restarting the parent.
  [[nodiscard]] std::size_t mark() const noexcept { return write_set_.size(); }
  /// Roll the write set back to a mark (business-level sub-abort).
  void rollback_to(std::size_t m) {
    if (m > write_set_.size()) throw TxUsageError("rollback past write-set end");
    write_set_.resize(m);
  }

  /// Two-phase commit: lock the write set in address order, bump the clock,
  /// validate the read set, write back, release. Throws TxConflict on
  /// failure (caller retries). A read-only transaction commits trivially.
  void commit();

 private:
  struct WriteEntry {
    TVarBase* var = nullptr;
    std::byte buffer[kMaxValueSize] = {};
    void (*apply)(TVarBase*, const std::byte*) = nullptr;
  };

  [[nodiscard]] WriteEntry* find_write(TVarBase* var) noexcept {
    for (WriteEntry& e : write_set_)
      if (e.var == var) return &e;
    return nullptr;
  }
  [[nodiscard]] const WriteEntry* find_write(const TVarBase* var) const noexcept {
    for (const WriteEntry& e : write_set_)
      if (e.var == var) return &e;
    return nullptr;
  }

  std::atomic<std::uint64_t>* clock_;
  std::uint64_t rv_;
  std::vector<const VersionedLock*> read_set_;
  std::vector<WriteEntry> write_set_;
  std::size_t reads_ = 0;
  std::size_t writes_ = 0;
};

}  // namespace stamp::stm
