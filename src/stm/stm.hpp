#pragma once
/// \file stm.hpp
/// \brief Umbrella header for the software transactional memory substrate.

#include "stm/contention.hpp"
#include "stm/stm_runtime.hpp"
#include "stm/transaction.hpp"
#include "stm/tvar.hpp"
#include "stm/versioned_lock.hpp"
