#include "stm/transaction.hpp"

#include <algorithm>

namespace stamp::stm {

void Transaction::commit() {
  if (write_set_.empty()) return;  // read-only: incremental validation suffices

  // Phase 1: acquire write locks in address order (no deadlock possible).
  std::sort(write_set_.begin(), write_set_.end(),
            [](const WriteEntry& a, const WriteEntry& b) { return a.var < b.var; });

  std::size_t locked = 0;
  for (; locked < write_set_.size(); ++locked) {
    if (!write_set_[locked].var->lock().try_lock(rv_)) break;
  }
  if (locked != write_set_.size()) {
    for (std::size_t i = 0; i < locked; ++i)
      write_set_[i].var->lock().unlock_restore();
    throw TxConflict{};
  }

  // Phase 2: obtain the write version.
  const std::uint64_t wv = clock_->fetch_add(1, std::memory_order_acq_rel) + 1;

  // Phase 3: validate the read set (skippable when no other transaction
  // committed since we started — the TL2 rv+1 == wv shortcut).
  if (wv != rv_ + 1) {
    auto owned_by_me = [&](const VersionedLock* l) {
      return std::any_of(write_set_.begin(), write_set_.end(),
                         [&](const WriteEntry& e) { return &e.var->lock() == l; });
    };
    for (const VersionedLock* l : read_set_) {
      if (!l->valid_for_committer(rv_, owned_by_me(l))) {
        for (WriteEntry& e : write_set_) e.var->lock().unlock_restore();
        throw TxConflict{};
      }
    }
  }

  // Phase 4: write back and release, publishing wv.
  for (WriteEntry& e : write_set_) {
    e.apply(e.var, e.buffer);
    e.var->lock().unlock_to_version(wv);
  }
}

}  // namespace stamp::stm
