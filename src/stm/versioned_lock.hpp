#pragma once
/// \file versioned_lock.hpp
/// \brief Versioned write-locks — the metadata word of the TL2-style STM.
///
/// Each transactional variable carries one 64-bit word: bit 0 is the lock
/// bit, the upper 63 bits are the version (the global-clock value of the
/// transaction that last committed a write to the variable).

#include <atomic>
#include <cstdint>

namespace stamp::stm {

class VersionedLock {
 public:
  static constexpr std::uint64_t kLockBit = 1;

  VersionedLock() = default;
  VersionedLock(const VersionedLock&) = delete;
  VersionedLock& operator=(const VersionedLock&) = delete;

  /// Raw sampled word (for the read protocol's pre/post validation).
  [[nodiscard]] std::uint64_t sample() const noexcept {
    return word_.load(std::memory_order_acquire);
  }

  [[nodiscard]] static bool is_locked(std::uint64_t word) noexcept {
    return (word & kLockBit) != 0;
  }
  [[nodiscard]] static std::uint64_t version_of(std::uint64_t word) noexcept {
    return word >> 1;
  }

  [[nodiscard]] bool locked() const noexcept { return is_locked(sample()); }
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_of(sample());
  }

  /// Try to acquire the write lock; fails if locked or if the version moved
  /// past the caller's read version (in which case the caller must abort
  /// anyway). Returns true on success.
  [[nodiscard]] bool try_lock(std::uint64_t read_version) noexcept {
    std::uint64_t expected = word_.load(std::memory_order_relaxed);
    if (is_locked(expected) || version_of(expected) > read_version) return false;
    return word_.compare_exchange_strong(expected, expected | kLockBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Release after a successful commit, publishing the new version.
  void unlock_to_version(std::uint64_t new_version) noexcept {
    word_.store(new_version << 1, std::memory_order_release);
  }

  /// Release after an aborted commit attempt, restoring the pre-lock word.
  void unlock_restore() noexcept {
    word_.fetch_and(~kLockBit, std::memory_order_release);
  }

  /// Read-set validation: the word must be unlocked and its version must not
  /// exceed the transaction's read version.
  [[nodiscard]] bool valid_for(std::uint64_t read_version) const noexcept {
    const std::uint64_t w = sample();
    return !is_locked(w) && version_of(w) <= read_version;
  }

  /// Like valid_for, but a word locked by the validating transaction itself
  /// is acceptable (it is in that transaction's write set).
  [[nodiscard]] bool valid_for_committer(std::uint64_t read_version,
                                         bool owned_by_me) const noexcept {
    const std::uint64_t w = sample();
    if (is_locked(w) && !owned_by_me) return false;
    return version_of(w) <= read_version;
  }

 private:
  std::atomic<std::uint64_t> word_{0};
};

}  // namespace stamp::stm
