#pragma once
/// \file tvar.hpp
/// \brief Transactional variables.
///
/// A `TVar<T>` pairs a value with a versioned write-lock. T must be
/// trivially copyable: values are held in a std::atomic<T> so the optimistic
/// read protocol (read value between two samples of the lock word) is free of
/// undefined behaviour even when a concurrent commit is writing.

#include "stm/versioned_lock.hpp"

#include <atomic>
#include <type_traits>

namespace stamp::stm {

/// Non-template base so transactions can keep homogeneous read/write sets.
class TVarBase {
 public:
  TVarBase() = default;
  TVarBase(const TVarBase&) = delete;
  TVarBase& operator=(const TVarBase&) = delete;

  [[nodiscard]] VersionedLock& lock() noexcept { return lock_; }
  [[nodiscard]] const VersionedLock& lock() const noexcept { return lock_; }

 protected:
  ~TVarBase() = default;

 private:
  VersionedLock lock_;
};

template <typename T>
class TVar : public TVarBase {
  static_assert(std::is_trivially_copyable_v<T>,
                "TVar requires a trivially copyable value type");

 public:
  explicit TVar(T initial = T{}) { value_.store(initial, std::memory_order_relaxed); }

  /// Racy-but-defined load used by the transactional read protocol, which
  /// validates the surrounding lock word samples.
  [[nodiscard]] T load_unvalidated() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

  /// Store performed by a committing transaction that holds the write lock.
  void store_committed(T value) noexcept {
    value_.store(value, std::memory_order_release);
  }

  /// Non-transactional read for initialization / post-run verification only.
  [[nodiscard]] T peek() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

  /// Non-transactional write for initialization only (not linearized against
  /// running transactions).
  void poke(T value) noexcept { value_.store(value, std::memory_order_release); }

 private:
  std::atomic<T> value_;
};

}  // namespace stamp::stm
