#pragma once
/// \file contention.hpp
/// \brief Pluggable contention managers for the STM.
///
/// A contention manager decides what a transaction does after a conflict
/// abort, before it retries. The policies implemented here are the classical
/// ones from the software-TM literature the paper cites (Scherer & Scott;
/// Guerraoui et al.): Passive, Polite (bounded spinning), exponential
/// backoff, and Karma (priority = work invested).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace stamp::stm {

/// What the aborted transaction knows when consulting the manager.
struct ConflictInfo {
  int attempt = 1;           ///< 1-based attempt number that just failed
  std::size_t reads = 0;     ///< reads performed in the failed attempt
  std::size_t writes = 0;    ///< writes buffered in the failed attempt
};

/// Thread-safe, shareable across all transactions of one STM runtime.
class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  /// Called after an abort, before the retry. Implementations may spin,
  /// sleep, or return immediately.
  virtual void on_abort(const ConflictInfo& info) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Retry immediately. Highest throughput at low contention; livelock-prone
/// under heavy conflicts.
class PassiveManager final : public ContentionManager {
 public:
  void on_abort(const ConflictInfo&) const override {}
  [[nodiscard]] std::string name() const override { return "passive"; }
};

/// Spin a bounded number of iterations proportional to the attempt count,
/// then retry ("politely" give the adversary time to finish).
class PoliteManager final : public ContentionManager {
 public:
  explicit PoliteManager(int spin_base = 64) : spin_base_(spin_base) {}
  void on_abort(const ConflictInfo& info) const override;
  [[nodiscard]] std::string name() const override { return "polite"; }

 private:
  int spin_base_;
};

/// Randomized exponential backoff (sleep), capped.
class BackoffManager final : public ContentionManager {
 public:
  explicit BackoffManager(std::chrono::nanoseconds base = std::chrono::nanoseconds(200),
                          std::chrono::nanoseconds cap = std::chrono::microseconds(100))
      : base_(base), cap_(cap) {}
  void on_abort(const ConflictInfo& info) const override;
  [[nodiscard]] std::string name() const override { return "backoff"; }

 private:
  std::chrono::nanoseconds base_;
  std::chrono::nanoseconds cap_;
};

/// Karma-flavored: backoff shrinks with the work the transaction has already
/// invested (more karma = retry sooner), so long transactions eventually win
/// against short adversaries.
class KarmaManager final : public ContentionManager {
 public:
  explicit KarmaManager(std::chrono::nanoseconds base = std::chrono::microseconds(2))
      : base_(base) {}
  void on_abort(const ConflictInfo& info) const override;
  [[nodiscard]] std::string name() const override { return "karma"; }

 private:
  std::chrono::nanoseconds base_;
};

/// Factory by name ("passive", "polite", "backoff", "karma").
[[nodiscard]] std::unique_ptr<ContentionManager> make_manager(const std::string& name);

}  // namespace stamp::stm
