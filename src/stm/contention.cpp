#include "stm/contention.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

namespace stamp::stm {
namespace {

/// Per-thread xorshift for backoff jitter — no shared RNG state.
std::uint64_t next_random() noexcept {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

void PoliteManager::on_abort(const ConflictInfo& info) const {
  const long spins = static_cast<long>(spin_base_) *
                     (1L << std::min(info.attempt, 10));
  for (long i = 0; i < spins; ++i) {
    // A compiler-opaque no-op so the loop is a real pause, not optimized out.
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
}

void BackoffManager::on_abort(const ConflictInfo& info) const {
  const int exponent = std::min(info.attempt, 16);
  auto window = base_ * (1LL << exponent);
  if (window > cap_) window = cap_;
  if (window.count() <= 0) return;
  const auto jittered = std::chrono::nanoseconds(
      static_cast<long long>(next_random() % static_cast<std::uint64_t>(window.count())));
  std::this_thread::sleep_for(jittered);
}

void KarmaManager::on_abort(const ConflictInfo& info) const {
  // karma = invested work; higher karma, shorter wait.
  const double karma = 1.0 + static_cast<double>(info.reads + 2 * info.writes);
  const double scale = static_cast<double>(std::min(info.attempt, 16)) / karma;
  const auto window = std::chrono::nanoseconds(
      static_cast<long long>(static_cast<double>(base_.count()) * (1.0 + scale)));
  if (window.count() <= 0) return;
  const auto jittered = std::chrono::nanoseconds(
      static_cast<long long>(next_random() % static_cast<std::uint64_t>(window.count())));
  std::this_thread::sleep_for(jittered);
}

std::unique_ptr<ContentionManager> make_manager(const std::string& name) {
  if (name == "passive") return std::make_unique<PassiveManager>();
  if (name == "polite") return std::make_unique<PoliteManager>();
  if (name == "backoff") return std::make_unique<BackoffManager>();
  if (name == "karma") return std::make_unique<KarmaManager>();
  throw std::invalid_argument("unknown contention manager: " + name);
}

}  // namespace stamp::stm
