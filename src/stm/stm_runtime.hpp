#pragma once
/// \file stm_runtime.hpp
/// \brief The STM instance: global version clock, statistics, contention
///        management, and the `atomically` retry loop (the `trans_exec`
///        execution mode of STAMP).
///
/// Instrumentation: every attempt's transactional reads are charged to the
/// acting process as shared-memory reads; writes are charged once, at the
/// successful commit (aborted attempts never write back). The number of
/// rollbacks an `atomically` call suffered feeds kappa, matching the paper's
/// "in the worst case ... the number of possible rollbacks".

#include "fault/injector.hpp"
#include "fault/retry.hpp"
#include "runtime/executor.hpp"
#include "shm/shared_region.hpp"
#include "stm/contention.hpp"
#include "stm/transaction.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

namespace stamp::stm {

/// Aggregate statistics over all transactions of one runtime.
struct StmStats {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> aborts{0};      ///< conflict aborts (retried)
  std::atomic<std::uint64_t> cancels{0};     ///< business-level cancellations
  std::atomic<std::uint64_t> max_retries{0}; ///< worst rollback chain seen

  void note_commit(std::uint64_t retries) noexcept {
    commits.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t worst = max_retries.load(std::memory_order_relaxed);
    while (retries > worst && !max_retries.compare_exchange_weak(
                                  worst, retries, std::memory_order_relaxed)) {
    }
  }
  void note_abort() noexcept { aborts.fetch_add(1, std::memory_order_relaxed); }
  void note_cancel() noexcept { cancels.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] double abort_ratio() const noexcept {
    const double c = static_cast<double>(commits.load(std::memory_order_relaxed));
    const double a = static_cast<double>(aborts.load(std::memory_order_relaxed));
    return (c + a) > 0 ? a / (c + a) : 0.0;
  }
};

class StmRuntime {
 public:
  explicit StmRuntime(std::unique_ptr<ContentionManager> manager =
                          std::make_unique<PassiveManager>(),
                      shm::Scope scope = shm::Scope::Auto)
      : manager_(std::move(manager)), scope_(scope) {}

  [[nodiscard]] std::atomic<std::uint64_t>& clock() noexcept { return clock_; }
  [[nodiscard]] const StmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] StmStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ContentionManager& manager() const noexcept {
    return *manager_;
  }

  /// Budget for the `atomically` retry loop. The default is unbounded with
  /// no backoff and no deadline — the historical behaviour. A bounded policy
  /// makes `atomically` throw fault::RetryExhausted / fault::DeadlineExceeded
  /// once the budget runs out (after charging and counting the final abort).
  void set_retry_policy(const fault::RetryPolicy& policy) {
    policy.validate();
    retry_policy_ = policy;
  }
  [[nodiscard]] const fault::RetryPolicy& retry_policy() const noexcept {
    return retry_policy_;
  }

  /// Runs `body(Transaction&)` atomically, retrying on conflicts until it
  /// commits. Returns the body's value. A TxCancelled escape propagates
  /// (use try_atomically for the optional-returning form). With fault
  /// injection armed, the FaultSite::StmAbort stream (keyed by the process
  /// id) can force transient aborts between body success and commit; they
  /// count as ordinary conflicts, so they stress exactly the retry/kappa
  /// machinery the model prices.
  template <typename F>
  auto atomically(runtime::Context& ctx, F&& body)
      -> std::invoke_result_t<F&, Transaction&> {
    using R = std::invoke_result_t<F&, Transaction&>;
    const bool intra = shm::resolve_intra(scope_, ctx.placement());
    const auto stream = static_cast<std::uint64_t>(ctx.id());
    fault::RetryState retry_state(retry_policy_, stream);
    std::uint64_t retries = 0;
    for (int attempt = 1;; ++attempt) {
      Transaction tx(clock_);
      try {
        if constexpr (std::is_void_v<R>) {
          body(tx);
          maybe_inject_abort(stream);
          finish_commit(ctx, tx, intra, retries);
          return;
        } else {
          R result = body(tx);
          maybe_inject_abort(stream);
          finish_commit(ctx, tx, intra, retries);
          return result;
        }
      } catch (const TxConflict&) {
        ++retries;
        charge_aborted_attempt(ctx, tx, intra);
        stats_.note_abort();
        manager_->on_abort(ConflictInfo{attempt, tx.reads(), tx.writes()});
        if (!retry_state.allow_retry()) {
          ctx.recorder().observe_kappa(static_cast<double>(retries));
          if (retry_state.deadline_passed()) throw fault::DeadlineExceeded();
          throw fault::RetryExhausted(static_cast<int>(retries));
        }
        retry_state.backoff();
      } catch (const TxCancelled&) {
        charge_aborted_attempt(ctx, tx, intra);
        ctx.recorder().observe_kappa(static_cast<double>(retries));
        stats_.note_cancel();
        throw;
      }
    }
  }

  /// Like `atomically`, but a body that calls tx.cancel() yields an empty
  /// optional instead of an exception.
  template <typename F>
  auto try_atomically(runtime::Context& ctx, F&& body)
      -> std::optional<std::invoke_result_t<F&, Transaction&>> {
    using R = std::invoke_result_t<F&, Transaction&>;
    static_assert(!std::is_void_v<R>,
                  "try_atomically requires a value-returning body");
    try {
      return atomically(ctx, std::forward<F>(body));
    } catch (const TxCancelled&) {
      return std::nullopt;
    }
  }

 private:
  /// The StmAbort hook: one relaxed load when injection is off; when armed,
  /// a fired decision aborts the attempt just before its two-phase commit
  /// (reads happened and are charged; buffered writes never land).
  static void maybe_inject_abort(std::uint64_t stream) {
    if (!fault::injection_enabled()) return;
    if (fault::Injector::current().decide(fault::FaultSite::StmAbort, stream))
      throw TxConflict{};
  }

  void finish_commit(runtime::Context& ctx, Transaction& tx, bool intra,
                     std::uint64_t retries) {
    const auto reads = static_cast<double>(tx.reads());
    const auto writes = static_cast<double>(tx.writes());
    tx.commit();  // may throw TxConflict, handled by the caller loop
    if (reads > 0) ctx.recorder().shm_read(intra, reads);
    if (writes > 0) ctx.recorder().shm_write(intra, writes);
    ctx.recorder().observe_kappa(static_cast<double>(retries));
    stats_.note_commit(retries);
  }

  void charge_aborted_attempt(runtime::Context& ctx, const Transaction& tx,
                              bool intra) {
    // Reads really happened (and their energy was spent); buffered writes
    // never reached memory, so only reads are charged for a failed attempt.
    const auto reads = static_cast<double>(tx.reads());
    if (reads > 0) ctx.recorder().shm_read(intra, reads);
  }

  std::atomic<std::uint64_t> clock_{0};
  StmStats stats_;
  std::unique_ptr<ContentionManager> manager_;
  shm::Scope scope_;
  fault::RetryPolicy retry_policy_ = fault::RetryPolicy::unbounded();
};

/// Closed-nested subtransaction: runs `body` against the parent transaction;
/// if the body signals failure (returns false), its buffered writes are
/// rolled back to the entry mark and false is returned — the paper's
/// `cmit = sub() [trans_exec]` pattern where the parent decides what to do
/// with partially-committed subtransactions.
template <typename F>
[[nodiscard]] bool subtransaction(Transaction& tx, F&& body) {
  const std::size_t mark = tx.mark();
  const bool committed = body(tx);
  if (!committed) tx.rollback_to(mark);
  return committed;
}

}  // namespace stamp::stm
